//! The unified column: one column-global dictionary plus **one** segment
//! directory whose entries are individually bitmap or run-length encoded
//! ([`SegmentEnc`]). A clustered prefix of a column can sit in RLE segments
//! while its high-churn suffix stays bitmap — the per-*segment* layout
//! choice the per-column chooser of the previous design could not express.
//!
//! Every directory operation (filter, gather, concat, slice, cursor,
//! compaction) dispatches per segment on its encoding; evolution operators
//! fan out one task per (column × segment) and splice per-segment
//! [`EncodedChunk`]s back through an [`EncodedAssembler`], which seals each
//! output segment in the encoding its input pieces arrive in. Fresh chunks
//! emitted by the operators pick their encoding through the stats-driven
//! per-segment chooser ([`choose_encoding_from_stats`]): run-level output
//! lands as RLE, dense rewrites as bitmap — so SMOs produce mixed
//! directories for free.

use crate::cursor::RowIdCursor;
use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::rle_segment::RleSegment;
use crate::segment::{Segment, SegmentChunk, Zone};
use crate::store::SegSlot;
use crate::value::{Value, ValueType};
use cods_bitmap::{OneStreamBuilder, RleSeq, Wah};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// The physical encoding of one segment (or, historically, a whole column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// One WAH bitmap per value per segment (the paper's default layout).
    Bitmap,
    /// Run-length encoded value ids per segment (clustered row ranges).
    Rle,
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Encoding::Bitmap => write!(f, "bitmap"),
            Encoding::Rle => write!(f, "rle"),
        }
    }
}

/// The stats-driven encoding choice, shared by the per-segment chooser, the
/// operators' chunk emitters, and compaction's mixed-group transcoder.
///
/// RLE pays one fixed-size record per run; WAH bitmaps pay roughly two
/// words per run plus a per-(segment × present value) overhead. RLE
/// therefore wins when runs are long on average (`4·runs ≤ rows`, i.e. a
/// mean run of ≥ 4 rows — clustered or near-clustered data) or when the
/// range is essentially sorted (`runs ≤ 2·(distinct + segments)` with a
/// mean run of at least 2: about one run per distinct value per segment it
/// spans, and genuinely run-compressible — the mean-run guard matters at
/// segment granularity, where a scattered high-cardinality range has
/// `distinct ≈ runs ≈ rows` and would otherwise pass the per-distinct
/// test). Everything else — high-cardinality or uniform-random data, where
/// runs ≈ rows — stays bitmap, the paper's default layout and the
/// operators' native form.
pub fn choose_encoding_from_stats(runs: u64, rows: u64, distinct: u64, segments: u64) -> Encoding {
    if rows == 0 {
        return Encoding::Bitmap;
    }
    let runs = runs.max(1);
    if 4 * runs <= rows || (runs <= 2 * (distinct + segments) && 2 * runs <= rows) {
        Encoding::Rle
    } else {
        Encoding::Bitmap
    }
}

/// One entry of the unified segment directory: an `Arc`-shared row-range
/// segment in either encoding, with a common stats surface.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentEnc {
    /// Sparse per-value WAH bitmaps over the segment's rows.
    Bitmap(Arc<Segment>),
    /// The segment's run sequence over global value ids.
    Rle(Arc<RleSegment>),
}

impl SegmentEnc {
    /// This segment's physical encoding.
    pub fn encoding(&self) -> Encoding {
        match self {
            SegmentEnc::Bitmap(_) => Encoding::Bitmap,
            SegmentEnc::Rle(_) => Encoding::Rle,
        }
    }

    /// The bitmap form, when bitmap encoded.
    pub fn as_bitmap(&self) -> Option<&Arc<Segment>> {
        match self {
            SegmentEnc::Bitmap(s) => Some(s),
            SegmentEnc::Rle(_) => None,
        }
    }

    /// The RLE form, when run-length encoded.
    pub fn as_rle(&self) -> Option<&Arc<RleSegment>> {
        match self {
            SegmentEnc::Bitmap(_) => None,
            SegmentEnc::Rle(s) => Some(s),
        }
    }

    /// Number of rows covered.
    pub fn rows(&self) -> u64 {
        match self {
            SegmentEnc::Bitmap(s) => s.rows(),
            SegmentEnc::Rle(s) => s.rows(),
        }
    }

    /// The ascending value ids present in this segment.
    pub fn present_ids(&self) -> &[u32] {
        match self {
            SegmentEnc::Bitmap(s) => s.present_ids(),
            SegmentEnc::Rle(s) => s.present_ids(),
        }
    }

    /// Cached per-present-id row counts, parallel to
    /// [`SegmentEnc::present_ids`].
    pub fn ones(&self) -> &[u64] {
        match self {
            SegmentEnc::Bitmap(s) => s.ones(),
            SegmentEnc::Rle(s) => s.ones(),
        }
    }

    /// Number of distinct values present.
    pub fn distinct_count(&self) -> usize {
        match self {
            SegmentEnc::Bitmap(s) => s.distinct_count(),
            SegmentEnc::Rle(s) => s.distinct_count(),
        }
    }

    /// Returns `true` when `id` occurs in this segment (O(log present)).
    pub fn contains_id(&self, id: u32) -> bool {
        match self {
            SegmentEnc::Bitmap(s) => s.contains_id(id),
            SegmentEnc::Rle(s) => s.contains_id(id),
        }
    }

    /// Number of rows carrying `id` (0 when absent).
    pub fn count_for(&self, id: u32) -> u64 {
        match self {
            SegmentEnc::Bitmap(s) => s.count_for(id),
            SegmentEnc::Rle(s) => s.count_for(id),
        }
    }

    /// Compressed payload bytes (cached).
    pub fn compressed_bytes(&self) -> usize {
        match self {
            SegmentEnc::Bitmap(s) => s.compressed_bytes(),
            SegmentEnc::Rle(s) => s.compressed_bytes(),
        }
    }

    /// Total maximal constant-value runs in row order — exact for RLE
    /// (stored runs), computed from compressed WAH interval walks for
    /// bitmap segments. Never decompresses per row.
    pub fn run_count(&self) -> u64 {
        match self {
            SegmentEnc::Bitmap(s) => s.run_count(),
            SegmentEnc::Rle(s) => s.num_runs() as u64,
        }
    }

    /// What the stats-driven chooser would pick for this segment, from its
    /// own run/row/distinct statistics.
    pub fn choose_encoding(&self) -> Encoding {
        choose_encoding_from_stats(
            self.run_count(),
            self.rows(),
            self.distinct_count() as u64,
            1,
        )
    }

    /// Re-encodes this segment to `encoding` (shares the `Arc` when already
    /// there). O(runs) per present value toward bitmap, O(rows) toward RLE.
    pub fn recoded(&self, encoding: Encoding) -> SegmentEnc {
        match (self, encoding) {
            (SegmentEnc::Bitmap(s), Encoding::Rle) => {
                SegmentEnc::Rle(Arc::new(RleSegment::from_bitmap_segment(s)))
            }
            (SegmentEnc::Rle(s), Encoding::Bitmap) => {
                SegmentEnc::Bitmap(Arc::new(s.to_bitmap_segment()))
            }
            _ => self.clone(),
        }
    }

    /// Rewrites the segment under an id translation. O(payload).
    pub(crate) fn remap(&self, map: &[Option<u32>]) -> SegmentEnc {
        match self {
            SegmentEnc::Bitmap(s) => SegmentEnc::Bitmap(Arc::new(s.remap(map))),
            SegmentEnc::Rle(s) => SegmentEnc::Rle(Arc::new(s.remap(map))),
        }
    }

    /// Validates the per-segment invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            SegmentEnc::Bitmap(s) => s.check_invariants(),
            SegmentEnc::Rle(s) => s.check_invariants(),
        }
    }
}

/// The per-segment output of one operator task, in either encoding, not yet
/// aligned to segment boundaries.
#[derive(Debug)]
pub enum EncodedChunk {
    /// Sparse per-value bitmaps over a run of output rows.
    Bitmap(SegmentChunk),
    /// A run piece over global value ids.
    Rle(RleSeq),
}

/// Converts a run sequence into a bitmap chunk: O(runs) builder appends via
/// the same dense/sparse adaptive store as [`SegmentChunk::from_ids`], never
/// one push per row.
pub(crate) fn seq_to_bitmap_chunk(seq: &RleSeq, rows: u64, distinct_hint: usize) -> SegmentChunk {
    debug_assert_eq!(seq.len(), rows);
    let mut ids = Vec::new();
    let mut bitmaps = Vec::new();
    if (distinct_hint as u64) <= rows.max(4096) {
        let mut builders: Vec<OneStreamBuilder> = Vec::new();
        builders.resize_with(distinct_hint, OneStreamBuilder::new);
        let mut active: Vec<u32> = Vec::new();
        for (id, start, len) in seq.iter_runs() {
            let b = &mut builders[id as usize];
            if b.ones() == 0 {
                active.push(id);
            }
            b.push_run(start, len);
        }
        active.sort_unstable();
        for id in active {
            let b = std::mem::replace(&mut builders[id as usize], OneStreamBuilder::new());
            ids.push(id);
            bitmaps.push(b.finish(rows));
        }
    } else {
        let mut builders: HashMap<u32, OneStreamBuilder> = HashMap::new();
        for (id, start, len) in seq.iter_runs() {
            builders.entry(id).or_default().push_run(start, len);
        }
        let mut pairs: Vec<(u32, OneStreamBuilder)> = builders.into_iter().collect();
        pairs.sort_unstable_by_key(|(id, _)| *id);
        for (id, b) in pairs {
            ids.push(id);
            bitmaps.push(b.finish(rows));
        }
    }
    SegmentChunk { ids, bitmaps, rows }
}

impl EncodedChunk {
    /// Output rows covered by this chunk.
    pub fn rows(&self) -> u64 {
        match self {
            EncodedChunk::Bitmap(c) => c.rows,
            EncodedChunk::Rle(s) => s.len(),
        }
    }

    /// Builds a chunk from a stream of value ids, one per output row in
    /// order, in an explicitly requested encoding.
    pub fn from_ids<I: IntoIterator<Item = u32>>(
        encoding: Encoding,
        ids: I,
        rows: u64,
        distinct_hint: usize,
    ) -> EncodedChunk {
        match encoding {
            Encoding::Bitmap => {
                EncodedChunk::Bitmap(SegmentChunk::from_ids(ids, rows, distinct_hint))
            }
            Encoding::Rle => {
                let mut seq = RleSeq::new();
                for id in ids {
                    seq.push(id);
                }
                debug_assert_eq!(seq.len(), rows);
                EncodedChunk::Rle(seq)
            }
        }
    }

    /// Builds a chunk from a value-id stream, letting the per-segment
    /// chooser pick the encoding from the chunk's own run/row/distinct
    /// statistics (a pinned uniform source column forces its encoding).
    /// The ids are accumulated run-level first — run detection is O(1) per
    /// row — and only converted to bitmaps when the chooser says so.
    pub fn from_ids_for<I: IntoIterator<Item = u32>>(
        col: &EncodedColumn,
        ids: I,
        rows: u64,
    ) -> EncodedChunk {
        let mut seq = RleSeq::new();
        for id in ids {
            seq.push(id);
        }
        debug_assert_eq!(seq.len(), rows);
        Self::from_seq_for(col, seq)
    }

    /// Wraps an operator-emitted run sequence as a chunk in the encoding
    /// the per-segment chooser picks for it: run-level output lands as RLE,
    /// dense rewrites convert to a bitmap chunk (O(runs), not O(rows)).
    pub fn from_seq_for(col: &EncodedColumn, seq: RleSeq) -> EncodedChunk {
        let rows = seq.len();
        let mut distinct_ids: Vec<u32> = seq.runs().iter().map(|&(id, _)| id).collect();
        distinct_ids.sort_unstable();
        distinct_ids.dedup();
        match col.chunk_encoding(seq.num_runs() as u64, rows, distinct_ids.len() as u64) {
            Encoding::Rle => EncodedChunk::Rle(seq),
            Encoding::Bitmap => {
                EncodedChunk::Bitmap(seq_to_bitmap_chunk(&seq, rows, col.distinct_count()))
            }
        }
    }
}

// ---------------------------------------------------------------------
// The unified assembler
// ---------------------------------------------------------------------

/// One not-yet-sealed piece of the current output segment.
#[derive(Debug)]
enum Piece {
    Bitmap(SegmentChunk),
    Rle(RleSeq),
}

impl Piece {
    fn rows(&self) -> u64 {
        match self {
            Piece::Bitmap(c) => c.rows,
            Piece::Rle(s) => s.len(),
        }
    }

    /// Extracts the row range `[lo, hi)` of this piece.
    fn slice(&self, lo: u64, hi: u64) -> Piece {
        match self {
            Piece::Bitmap(c) => {
                let mut ids = Vec::new();
                let mut bitmaps = Vec::new();
                for (&id, bm) in c.ids.iter().zip(&c.bitmaps) {
                    let piece = bm.slice(lo, hi);
                    if piece.any() {
                        ids.push(id);
                        bitmaps.push(piece);
                    }
                }
                Piece::Bitmap(SegmentChunk {
                    ids,
                    bitmaps,
                    rows: hi - lo,
                })
            }
            Piece::Rle(s) => Piece::Rle(s.slice(lo, hi)),
        }
    }
}

/// Splices a stream of [`EncodedChunk`]s into a unified segment directory.
/// Chunks may arrive in either encoding; each sealed output segment keeps
/// the encoding of its pieces — all-RLE pieces seal as an RLE segment,
/// anything touched by a bitmap piece seals as a bitmap segment (RLE pieces
/// are transcoded in O(their runs)). Values absent from a piece are
/// zero-padded lazily, so cost is proportional to the values present.
pub struct EncodedAssembler {
    target: u64,
    /// Explicit piece-size schedule (compaction regrouping); when present,
    /// each sealed segment consumes the next entry.
    schedule: Option<std::collections::VecDeque<u64>>,
    cur: Vec<Piece>,
    cur_len: u64,
    segments: Vec<SegmentEnc>,
}

impl EncodedAssembler {
    /// An assembler producing segments of `target` rows (last may be short).
    pub fn new(target: u64) -> EncodedAssembler {
        assert!(target > 0, "segment size must be positive");
        EncodedAssembler {
            target,
            schedule: None,
            cur: Vec::new(),
            cur_len: 0,
            segments: Vec::new(),
        }
    }

    /// An assembler producing segments of the given explicit sizes, in
    /// order. The pushed chunks must cover exactly `pieces.iter().sum()`
    /// rows. Used by compaction to regroup a run of segments.
    pub fn with_piece_sizes(pieces: Vec<u64>) -> EncodedAssembler {
        assert!(
            pieces.iter().all(|&p| p > 0),
            "piece sizes must be positive"
        );
        let mut schedule: std::collections::VecDeque<u64> = pieces.into();
        let target = schedule.pop_front().unwrap_or(u64::MAX);
        EncodedAssembler {
            target,
            schedule: Some(schedule),
            cur: Vec::new(),
            cur_len: 0,
            segments: Vec::new(),
        }
    }

    fn advance_target(&mut self) {
        if let Some(schedule) = &mut self.schedule {
            self.target = schedule.pop_front().unwrap_or(u64::MAX);
        }
    }

    /// Appends a chunk, splitting it across segment boundaries as needed.
    pub fn push_chunk(&mut self, chunk: EncodedChunk) {
        let piece = match chunk {
            EncodedChunk::Bitmap(c) => Piece::Bitmap(c),
            EncodedChunk::Rle(s) => Piece::Rle(s),
        };
        let rows = piece.rows();
        if rows == 0 {
            return;
        }
        let mut offset = 0u64;
        let mut whole = Some(piece);
        while offset < rows {
            let room = self.target - self.cur_len;
            let take = room.min(rows - offset);
            let part = if offset == 0 && take == rows {
                whole.take().expect("whole piece consumed once")
            } else {
                whole
                    .as_ref()
                    .expect("sliced pieces keep the original")
                    .slice(offset, offset + take)
            };
            self.cur.push(part);
            self.cur_len += take;
            offset += take;
            if self.cur_len == self.target {
                self.seal();
            }
        }
    }

    fn seal(&mut self) {
        if self.cur_len == 0 {
            return;
        }
        let len = self.cur_len;
        let pieces = std::mem::take(&mut self.cur);
        let seg = if pieces.iter().all(|p| matches!(p, Piece::Rle(_))) {
            let mut seq = RleSeq::new();
            for p in pieces {
                match p {
                    Piece::Rle(s) => seq.append_seq(&s),
                    Piece::Bitmap(_) => unreachable!("checked all-RLE"),
                }
            }
            debug_assert_eq!(seq.len(), len);
            SegmentEnc::Rle(Arc::new(RleSegment::new(seq)))
        } else if pieces.len() == 1 {
            // Single bitmap piece exactly filling the segment: move it.
            match pieces.into_iter().next().expect("one piece") {
                Piece::Bitmap(c) => {
                    let pairs: Vec<(u32, Wah)> = c
                        .ids
                        .into_iter()
                        .zip(c.bitmaps)
                        .filter(|(_, bm)| bm.any())
                        .collect();
                    SegmentEnc::Bitmap(Arc::new(Segment::new(len, pairs)))
                }
                Piece::Rle(_) => unreachable!("single RLE piece took the all-RLE path"),
            }
        } else {
            // Mixed or multi-piece: accumulate per-id bitmaps with lazy
            // zero padding (the shared [`crate::segment::PaddedBitmaps`]
            // idiom); RLE pieces contribute their runs directly.
            let mut acc = crate::segment::PaddedBitmaps::new();
            let mut offset = 0u64;
            for p in &pieces {
                let piece_rows = p.rows();
                match p {
                    Piece::Bitmap(c) => {
                        for (&id, bm) in c.ids.iter().zip(&c.bitmaps) {
                            if bm.any() {
                                acc.append_bitmap(id, bm, offset);
                            }
                        }
                    }
                    Piece::Rle(s) => {
                        for (id, start, run_len) in s.iter_runs() {
                            acc.append_run(id, offset + start, run_len);
                        }
                    }
                }
                offset += piece_rows;
            }
            SegmentEnc::Bitmap(Arc::new(Segment::new(len, acc.finish(len))))
        };
        self.segments.push(seg);
        self.cur_len = 0;
        self.advance_target();
    }

    /// Seals the trailing partial segment and returns the directory.
    pub fn finish(mut self) -> Vec<SegmentEnc> {
        self.seal();
        self.segments
    }
}

// ---------------------------------------------------------------------
// The unified column
// ---------------------------------------------------------------------

fn starts_of(segments: &[SegSlot]) -> (Vec<u64>, u64) {
    let mut starts = Vec::with_capacity(segments.len());
    let mut total = 0u64;
    for s in segments {
        starts.push(total);
        total += s.rows();
    }
    (starts, total)
}

/// Derives every segment's zone from its present-id stats via the
/// dictionary's value order — the stats-level fallback for paths that
/// cannot splice zones from inputs. Never touches payload.
fn derive_zones(dict: &Dictionary, segments: &[SegmentEnc]) -> Vec<Zone> {
    if segments.is_empty() {
        return Vec::new();
    }
    let ranks = dict.value_order().ranks();
    segments
        .iter()
        .map(|s| Zone::of_ids(s.present_ids(), ranks))
        .collect()
}

/// An immutable segmented column: a column-global dictionary plus one
/// directory of `Arc`-shared row-range segments, each in its own encoding
/// ([`SegmentEnc`]), with per-segment zone maps and encoding pins.
#[derive(Clone, Debug, PartialEq)]
pub struct EncodedColumn {
    ty: ValueType,
    dict: Dictionary,
    segments: Vec<SegSlot>,
    /// Start row of each segment (parallel to `segments`).
    starts: Vec<u64>,
    /// Per-segment zone maps (parallel to `segments`).
    zones: Vec<Zone>,
    /// Per-segment encoding pins (parallel to `segments`): a segment pinned
    /// by an explicit segment-range recode is skipped by the chooser.
    /// Reset on structure-destroying rebuilds (filter/gather), which cannot
    /// map old boundaries onto new ones.
    seg_pins: Vec<bool>,
    /// Nominal rows per segment for newly produced data.
    segment_rows: u64,
    rows: u64,
    /// Column-level pin, set by an explicit whole-column recode: the
    /// adaptive chooser leaves every segment of a pinned column alone.
    pinned: bool,
}

impl EncodedColumn {
    // ---- constructors ----

    /// Builds a column from a value slice with the default segment size
    /// (bitmap segments — the paper's default layout).
    pub fn from_values(ty: ValueType, values: &[Value]) -> Result<EncodedColumn, StorageError> {
        Self::from_values_with(ty, values, crate::segment::DEFAULT_SEGMENT_ROWS)
    }

    /// Builds a column from a value slice with an explicit segment size.
    pub fn from_values_with(
        ty: ValueType,
        values: &[Value],
        segment_rows: u64,
    ) -> Result<EncodedColumn, StorageError> {
        let mut b = ColumnBuilder::with_segment_rows(ty, segment_rows);
        for v in values {
            b.push(v.clone())?;
        }
        Ok(b.finish())
    }

    /// Builds a column from a dictionary and a dense row → id array
    /// (bitmap segments).
    ///
    /// # Panics
    /// Panics if any id is out of range for the dictionary.
    pub fn from_ids(ty: ValueType, dict: Dictionary, ids: &[u32]) -> EncodedColumn {
        Self::from_ids_with(ty, dict, ids, crate::segment::DEFAULT_SEGMENT_ROWS)
    }

    /// [`EncodedColumn::from_ids`] with an explicit segment size.
    pub fn from_ids_with(
        ty: ValueType,
        dict: Dictionary,
        ids: &[u32],
        segment_rows: u64,
    ) -> EncodedColumn {
        assert!(segment_rows > 0, "segment size must be positive");
        if let Some(&bad) = ids.iter().find(|&&id| id as usize >= dict.len()) {
            panic!("id {bad} out of range for dictionary of {}", dict.len());
        }
        let mut asm = EncodedAssembler::new(segment_rows);
        for chunk in ids.chunks(segment_rows as usize) {
            asm.push_chunk(EncodedChunk::Bitmap(SegmentChunk::from_ids(
                chunk.iter().copied(),
                chunk.len() as u64,
                dict.len(),
            )));
        }
        Self::from_segments(ty, dict, asm.finish(), segment_rows)
    }

    /// Assembles a column from a dictionary and *full-length* per-value
    /// bitmaps (one per dictionary id), segmenting them. Validates the
    /// partition invariant in debug builds. This is the compatibility
    /// constructor for callers holding the monolithic representation (the
    /// version-1 on-disk format and O(1) default-fill columns).
    pub fn from_parts(
        ty: ValueType,
        dict: Dictionary,
        bitmaps: Vec<Wah>,
        rows: u64,
    ) -> Result<EncodedColumn, StorageError> {
        if dict.len() != bitmaps.len() {
            return Err(StorageError::Corrupt(format!(
                "dictionary has {} values but {} bitmaps supplied",
                dict.len(),
                bitmaps.len()
            )));
        }
        for (id, bm) in bitmaps.iter().enumerate() {
            if bm.len() != rows {
                return Err(StorageError::Corrupt(format!(
                    "bitmap {id} has length {} but column has {rows} rows",
                    bm.len()
                )));
            }
        }
        let segment_rows = crate::segment::DEFAULT_SEGMENT_ROWS;
        let seg_count = rows.div_ceil(segment_rows) as usize;
        let mut per_segment: Vec<Vec<(u32, Wah)>> = vec![Vec::new(); seg_count];
        for (id, bm) in bitmaps.iter().enumerate() {
            if !bm.any() {
                continue;
            }
            for (s, piece) in bm.split_into(segment_rows).into_iter().enumerate() {
                if piece.any() {
                    per_segment[s].push((id as u32, piece));
                }
            }
        }
        let segments: Vec<SegmentEnc> = per_segment
            .into_iter()
            .enumerate()
            .map(|(s, pairs)| {
                let seg_rows = segment_rows.min(rows - s as u64 * segment_rows);
                SegmentEnc::Bitmap(Arc::new(Segment::new(seg_rows, pairs)))
            })
            .collect();
        let col = Self::from_segments(ty, dict, segments, segment_rows);
        debug_assert_eq!(col.rows, rows);
        debug_assert!(
            col.check_invariants().is_ok(),
            "{:?}",
            col.check_invariants()
        );
        Ok(col)
    }

    /// Assembles a column from a dictionary and segments assumed
    /// consistent, without compaction. Callers that cannot assume
    /// consistency (e.g. decoding from disk) must run
    /// [`EncodedColumn::check_invariants`] afterwards.
    pub fn from_segments(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<SegmentEnc>,
        segment_rows: u64,
    ) -> EncodedColumn {
        let zones = derive_zones(&dict, &segments);
        Self::from_segments_zoned(ty, dict, segments, zones, segment_rows)
    }

    /// [`EncodedColumn::from_segments`] with caller-supplied zone maps
    /// (spliced from inputs, or read from disk). The zones must be parallel
    /// to `segments` and consistent with their present-id stats —
    /// [`EncodedColumn::check_invariants`] verifies both.
    pub fn from_segments_zoned(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<SegmentEnc>,
        zones: Vec<Zone>,
        segment_rows: u64,
    ) -> EncodedColumn {
        let slots = segments.into_iter().map(SegSlot::fresh).collect();
        Self::from_slots_zoned(ty, dict, slots, zones, segment_rows)
    }

    /// [`EncodedColumn::from_segments_zoned`] over already-built directory
    /// slots — the v6 lazy-open path, where segments arrive paged out.
    pub(crate) fn from_slots_zoned(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<SegSlot>,
        zones: Vec<Zone>,
        segment_rows: u64,
    ) -> EncodedColumn {
        debug_assert_eq!(segments.len(), zones.len());
        let (starts, rows) = starts_of(&segments);
        let seg_pins = vec![false; segments.len()];
        EncodedColumn {
            ty,
            dict,
            segments,
            starts,
            zones,
            seg_pins,
            segment_rows,
            rows,
            pinned: false,
        }
    }

    /// Assembles a column from a dictionary and already-built segments,
    /// compacting the dictionary to the values actually present — the
    /// constructor the segment-parallel operators funnel into.
    pub fn from_segments_compacting(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<SegmentEnc>,
        segment_rows: u64,
    ) -> EncodedColumn {
        let mut present = vec![false; dict.len()];
        for seg in &segments {
            for &id in seg.present_ids() {
                present[id as usize] = true;
            }
        }
        if present.iter().all(|&p| p) {
            return Self::from_segments(ty, dict, segments, segment_rows);
        }
        let (compact_dict, mapping) = dict.compact(|id| present[id as usize]);
        let segments: Vec<SegmentEnc> = segments.iter().map(|s| s.remap(&mapping)).collect();
        Self::from_segments(ty, compact_dict, segments, segment_rows)
    }

    /// Assembles a column from a dictionary and full-length per-value
    /// bitmaps, dropping values whose bitmap is empty (compacting the
    /// dictionary). Used by callers that build bitmaps for every dictionary
    /// value of an input but may leave some unused.
    pub fn from_dict_bitmaps_compacting(
        ty: ValueType,
        dict: Dictionary,
        bitmaps: Vec<Wah>,
        rows: u64,
    ) -> Result<EncodedColumn, StorageError> {
        if dict.len() != bitmaps.len() {
            return Err(StorageError::Corrupt(format!(
                "dictionary has {} values but {} bitmaps supplied",
                dict.len(),
                bitmaps.len()
            )));
        }
        let (compact_dict, mapping) = dict.compact(|id| bitmaps[id as usize].any());
        let mut kept = Vec::with_capacity(compact_dict.len());
        for (old_id, new_id) in mapping.iter().enumerate() {
            if new_id.is_some() {
                kept.push(bitmaps[old_id].clone());
            }
        }
        Self::from_parts(ty, compact_dict, kept, rows)
    }

    // ---- geometry and statistics ----

    /// Column type.
    pub fn ty(&self) -> ValueType {
        self.ty
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of distinct values (dictionary size).
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// The unified segment directory: demand-paged slots whose metadata is
    /// always resident but whose payloads may live on disk.
    pub fn segments(&self) -> &[SegSlot] {
        &self.segments
    }

    /// Number of row-range segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Start row of segment `idx`.
    pub fn segment_start(&self, idx: usize) -> u64 {
        self.starts[idx]
    }

    /// Row counts of every segment, in order.
    pub fn segment_sizes(&self) -> Vec<u64> {
        self.segments.iter().map(|s| s.rows()).collect()
    }

    /// The physical encoding of segment `idx`.
    pub fn segment_encoding(&self, idx: usize) -> Encoding {
        self.segments[idx].encoding()
    }

    /// `(bitmap segments, RLE segments)` — the directory's encoding
    /// histogram.
    pub fn encoding_counts(&self) -> (usize, usize) {
        let rle = self
            .segments
            .iter()
            .filter(|s| s.encoding() == Encoding::Rle)
            .count();
        (self.segments.len() - rle, rle)
    }

    /// The single encoding every segment shares, when the directory is
    /// homogeneous. An empty directory counts as uniformly bitmap (the
    /// default layout new data lands in).
    pub fn uniform_encoding(&self) -> Option<Encoding> {
        let mut it = self.segments.iter().map(|s| s.encoding());
        let first = match it.next() {
            None => return Some(Encoding::Bitmap),
            Some(e) => e,
        };
        it.all(|e| e == first).then_some(first)
    }

    /// Returns `true` when every segment is in `encoding` (vacuously true
    /// for an empty directory).
    pub fn is_uniform(&self, encoding: Encoding) -> bool {
        self.segments.is_empty() || self.uniform_encoding() == Some(encoding)
    }

    /// The nominal segment size new data is chunked at.
    pub fn nominal_segment_rows(&self) -> u64 {
        self.segment_rows
    }

    /// Index of the segment containing `row`.
    pub fn segment_of_row(&self, row: u64) -> usize {
        debug_assert!(row < self.rows);
        self.starts.partition_point(|&s| s <= row) - 1
    }

    /// Per-segment zone maps, parallel to [`EncodedColumn::segments`].
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone map of segment `idx`.
    pub fn zone(&self, idx: usize) -> Zone {
        self.zones[idx]
    }

    /// Distinct values present in the densest segment (≤ `distinct_count`).
    pub fn max_segment_distinct(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.distinct_count())
            .max()
            .unwrap_or(0)
    }

    /// Total maximal constant-value runs across the directory, summed from
    /// per-segment stats (exact RLE runs; compressed WAH interval walks).
    pub fn run_count(&self) -> u64 {
        self.segments.iter().map(|s| s.run_count()).sum()
    }

    // ---- pins and the chooser ----

    /// Returns `true` when the whole column's encoding was pinned by an
    /// explicit recode (the adaptive chooser leaves pinned columns alone).
    pub fn encoding_pinned(&self) -> bool {
        self.pinned
    }

    /// Sets the column-level encoding pin.
    pub fn set_encoding_pinned(&mut self, pinned: bool) {
        self.pinned = pinned;
    }

    /// Returns `true` when segment `idx` is pinned — by a segment-range
    /// recode or because the whole column is.
    pub fn segment_pinned(&self, idx: usize) -> bool {
        self.pinned || self.seg_pins[idx]
    }

    /// Copies chooser-relevant metadata (the column pin) from the source
    /// column a structurally rebuilt column was derived from. Per-segment
    /// pins cannot survive a rebuild (old boundaries are gone) and reset.
    fn with_meta_of(mut self, src: &EncodedColumn) -> EncodedColumn {
        self.pinned = src.pinned;
        self
    }

    /// The column-aggregate chooser pick: weighs total runs against rows,
    /// distinct count, and segment count. Kept for `stats` display; the
    /// chooser itself now decides segment by segment.
    pub fn choose_encoding(&self) -> Encoding {
        if self.rows == 0 {
            return Encoding::Bitmap;
        }
        choose_encoding_from_stats(
            self.run_count(),
            self.rows,
            self.distinct_count() as u64,
            self.segment_count() as u64,
        )
    }

    /// What the per-segment chooser would pick for segment `idx`, from that
    /// segment's own run/row/distinct statistics.
    pub fn choose_segment_encoding(&self, idx: usize) -> Encoding {
        self.segments[idx].choose_encoding()
    }

    /// The encoding an operator should emit a fresh output chunk in, given
    /// the chunk's own statistics: a pinned uniform column forces its
    /// encoding; otherwise the per-segment chooser decides.
    pub fn chunk_encoding(&self, runs: u64, rows: u64, distinct: u64) -> Encoding {
        if self.pinned {
            if let Some(e) = self.uniform_encoding() {
                return e;
            }
        }
        choose_encoding_from_stats(runs, rows, distinct, 1)
    }

    /// Returns `true` when [`EncodedColumn::auto_recoded`] would change
    /// some segment — used by table-level passes to share untouched columns
    /// by reference.
    pub fn needs_auto_recode(&self) -> bool {
        if self.pinned {
            return false;
        }
        self.segments
            .iter()
            .zip(&self.seg_pins)
            .any(|(s, &pin)| !pin && s.choose_encoding() != s.encoding())
    }

    /// Re-encodes every unpinned segment to the per-segment chooser's pick
    /// (its own run/row/distinct stats). Pinned segments — and every
    /// segment of a column-pinned column — are left alone. Invoked
    /// automatically after `cluster_by` and threshold-triggered after
    /// UNION's compaction.
    pub fn auto_recoded(&self) -> Result<EncodedColumn, StorageError> {
        if !self.needs_auto_recode() {
            return Ok(self.clone());
        }
        let mut out = self.clone();
        for (seg, &pin) in out.segments.iter_mut().zip(&self.seg_pins) {
            if !pin {
                *seg = seg.recoded(seg.choose_encoding());
            }
        }
        Ok(out)
    }

    /// Re-encodes every segment to `encoding` (a no-op clone when already
    /// uniform there). Values, dictionary, segment boundaries, zones, and
    /// pins are preserved.
    pub fn recode(&self, encoding: Encoding) -> Result<EncodedColumn, StorageError> {
        if self.is_uniform(encoding) {
            return Ok(self.clone());
        }
        let mut out = self.clone();
        for seg in out.segments.iter_mut() {
            *seg = seg.recoded(encoding);
        }
        Ok(out)
    }

    /// Re-encodes the segments with indices in `range` to `encoding` and
    /// *pins* each of them against the chooser — the segment-range form of
    /// an explicit recode. Boundaries, zones, and other segments are
    /// untouched.
    pub fn recode_segments(
        &self,
        range: Range<usize>,
        encoding: Encoding,
    ) -> Result<EncodedColumn, StorageError> {
        if range.start > range.end || range.end > self.segments.len() {
            return Err(StorageError::RowMismatch(format!(
                "segment range {}..{} out of bounds for {} segments",
                range.start,
                range.end,
                self.segments.len()
            )));
        }
        let mut out = self.clone();
        for idx in range {
            out.segments[idx] = out.segments[idx].recoded(encoding);
            out.seg_pins[idx] = true;
            // An explicitly recoded segment is also pinned in the buffer
            // cache: the user singled it out, so it stays resident.
            out.segments[idx].set_pinned(true);
        }
        Ok(out)
    }

    /// Clears the pins of the segments in `range` and re-encodes each to
    /// the per-segment chooser's pick — the segment-range form of
    /// `recode … auto`.
    pub fn auto_recode_segments(&self, range: Range<usize>) -> Result<EncodedColumn, StorageError> {
        if range.start > range.end || range.end > self.segments.len() {
            return Err(StorageError::RowMismatch(format!(
                "segment range {}..{} out of bounds for {} segments",
                range.start,
                range.end,
                self.segments.len()
            )));
        }
        let mut out = self.clone();
        for idx in range {
            out.seg_pins[idx] = false;
            out.segments[idx] = out.segments[idx].recoded(out.segments[idx].choose_encoding());
            out.segments[idx].set_pinned(false);
        }
        Ok(out)
    }

    // ---- data access ----

    /// The value stored at `row` (point probe; intended for display and
    /// debugging, not bulk scans — use [`EncodedColumn::value_ids`]).
    pub fn value_at(&self, row: u64) -> &Value {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let seg_idx = self.segment_of_row(row);
        let local = row - self.starts[seg_idx];
        let id = match self.segments[seg_idx].enc() {
            SegmentEnc::Bitmap(s) => s
                .id_at(local)
                .expect("partition invariant violated: row has no value"),
            SegmentEnc::Rle(s) => s.seq().get(local),
        };
        self.dict.value(id)
    }

    /// Materializes the dense row → value-id array in one pass over the
    /// compressed payloads (O(rows + compressed words)). The
    /// sequential-scan primitive of the CODS algorithms: it never touches
    /// dictionary values, only ids.
    pub fn value_ids(&self) -> Vec<u32> {
        let mut ids = vec![u32::MAX; self.rows as usize];
        for (seg, &start) in self.segments.iter().zip(&self.starts) {
            let out = &mut ids[start as usize..(start + seg.rows()) as usize];
            match seg.enc() {
                SegmentEnc::Bitmap(s) => s.fill_ids(out),
                SegmentEnc::Rle(s) => {
                    let mut pos = 0usize;
                    for &(id, n) in s.seq().runs() {
                        out[pos..pos + n as usize].fill(id);
                        pos += n as usize;
                    }
                }
            }
        }
        debug_assert!(ids.iter().all(|&i| i != u32::MAX), "uncovered row");
        ids
    }

    /// Materializes the row → value-id array of `range` only, decoding
    /// just the segments that overlap it — the batch-decode primitive of
    /// the streaming scan surface: a server streaming a table in
    /// segment-sized batches touches (and faults in) one batch worth of
    /// payload at a time, never the whole column.
    pub fn ids_range(&self, range: Range<u64>) -> Vec<u32> {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "range {range:?} out of bounds for {} rows",
            self.rows
        );
        let mut out = vec![u32::MAX; (range.end - range.start) as usize];
        for (seg, &start) in self.segments.iter().zip(&self.starts) {
            let seg_end = start + seg.rows();
            if seg_end <= range.start {
                continue;
            }
            if start >= range.end {
                break;
            }
            let lo = range.start.max(start);
            let hi = range.end.min(seg_end);
            let dst = &mut out[(lo - range.start) as usize..(hi - range.start) as usize];
            match seg.enc() {
                SegmentEnc::Bitmap(s) => {
                    if lo == start && hi == seg_end {
                        s.fill_ids(dst);
                    } else {
                        // Partial overlap: bitmap payloads decode whole
                        // segments; clip through a scratch buffer.
                        let mut scratch = vec![u32::MAX; seg.rows() as usize];
                        s.fill_ids(&mut scratch);
                        dst.copy_from_slice(&scratch[(lo - start) as usize..(hi - start) as usize]);
                    }
                }
                SegmentEnc::Rle(s) => {
                    let mut pos = start;
                    for &(id, n) in s.seq().runs() {
                        let run_end = pos + n;
                        if run_end > lo && pos < hi {
                            let a = lo.max(pos);
                            let b = hi.min(run_end);
                            dst[(a - lo) as usize..(b - lo) as usize].fill(id);
                        }
                        pos = run_end;
                        if pos >= hi {
                            break;
                        }
                    }
                }
            }
        }
        debug_assert!(out.iter().all(|&i| i != u32::MAX), "uncovered row");
        out
    }

    /// Decodes `range` as maximal `(value id, length)` runs, coalesced
    /// across segment boundaries. RLE segments contribute their runs in
    /// O(overlapping runs) without touching per-row data; bitmap segments
    /// decode and coalesce. This is the accessor the vectorized group-by
    /// kernel aggregates over: clustered columns cost O(runs), not O(rows).
    pub fn runs_range(&self, range: Range<u64>) -> Vec<(u32, u64)> {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "range {range:?} out of bounds for {} rows",
            self.rows
        );
        fn push(out: &mut Vec<(u32, u64)>, id: u32, n: u64) {
            if n == 0 {
                return;
            }
            match out.last_mut() {
                Some((last, len)) if *last == id => *len += n,
                _ => out.push((id, n)),
            }
        }
        let mut out: Vec<(u32, u64)> = Vec::new();
        for (seg, &start) in self.segments.iter().zip(&self.starts) {
            let seg_end = start + seg.rows();
            if seg_end <= range.start {
                continue;
            }
            if start >= range.end {
                break;
            }
            let lo = range.start.max(start);
            let hi = range.end.min(seg_end);
            match seg.enc() {
                SegmentEnc::Bitmap(s) => {
                    let mut scratch = vec![u32::MAX; seg.rows() as usize];
                    s.fill_ids(&mut scratch);
                    for &id in &scratch[(lo - start) as usize..(hi - start) as usize] {
                        push(&mut out, id, 1);
                    }
                }
                SegmentEnc::Rle(s) => {
                    let mut pos = start;
                    for &(id, n) in s.seq().runs() {
                        let run_end = pos + n;
                        if run_end > lo && pos < hi {
                            let a = lo.max(pos);
                            let b = hi.min(run_end);
                            push(&mut out, id, b - a);
                        }
                        pos = run_end;
                        if pos >= hi {
                            break;
                        }
                    }
                }
            }
        }
        debug_assert_eq!(
            out.iter().map(|&(_, n)| n).sum::<u64>(),
            range.end - range.start,
            "runs must cover the range"
        );
        out
    }

    /// Decodes all rows to values (display/test helper).
    pub fn values(&self) -> Vec<Value> {
        self.value_ids()
            .into_iter()
            .map(|id| self.dict.value(id).clone())
            .collect()
    }

    /// Streaming `(row, value id)` cursor in ascending row order, without
    /// materializing anything per row.
    pub fn id_cursor(&self) -> RowIdCursor<'_> {
        RowIdCursor::new(self)
    }

    /// Materializes the full-length bitmap of value id `id` by splicing the
    /// per-segment payloads (zero fills where the value is absent).
    pub fn value_bitmap(&self, id: u32) -> Wah {
        let mut out = Wah::new();
        for seg in &self.segments {
            // Present-id stats answer "absent here" without faulting the
            // payload — a value probe only pages in segments that carry it.
            if !seg.contains_id(id) {
                out.append_run(false, seg.rows());
                continue;
            }
            match seg.enc() {
                SegmentEnc::Bitmap(s) => match s.bitmap_for(id) {
                    Some(bm) => out.append_bitmap(bm),
                    None => out.append_run(false, s.rows()),
                },
                SegmentEnc::Rle(s) => s.append_value_bitmap(id, &mut out),
            }
        }
        out
    }

    /// Materialized bitmap of a value, if it occurs in the column.
    pub fn bitmap_of(&self, v: &Value) -> Option<Wah> {
        self.dict.id_of(v).map(|id| self.value_bitmap(id))
    }

    /// Number of rows carrying value id `id` (from segment stats; never
    /// touches payload).
    pub fn value_count(&self, id: u32) -> u64 {
        self.segments.iter().map(|s| s.count_for(id)).sum()
    }

    /// Splits a non-decreasing global position list into per-segment spans:
    /// `(segment index, range into positions)`. Shared by the serial filter
    /// path and the segment-parallel executors in `cods` core.
    pub fn position_spans(&self, positions: &[u64]) -> Vec<(usize, Range<usize>)> {
        crate::segment::position_spans(&self.segment_sizes(), positions)
    }

    /// Splits a whole-column selection mask along this column's segment
    /// boundaries (one pass over the mask's compressed runs).
    pub fn split_mask(&self, mask: &Wah) -> Vec<Wah> {
        assert_eq!(mask.len(), self.rows, "mask length mismatch");
        mask.split_sizes(&self.segment_sizes())
    }

    // ---- per-segment filtering ----

    /// The paper's *bitmap filtering* restricted to one segment: shrink
    /// segment `seg_idx` to the rows listed in `positions` (global,
    /// non-decreasing, all within the segment), producing an unaligned
    /// chunk in **that segment's** encoding — the per-(column × segment)
    /// task body of the parallel operators.
    pub fn filter_segment_chunk(&self, seg_idx: usize, positions: &[u64]) -> EncodedChunk {
        let start = self.starts[seg_idx];
        match self.segments[seg_idx].enc() {
            SegmentEnc::Bitmap(seg) => {
                if positions.is_empty() {
                    return EncodedChunk::Bitmap(SegmentChunk::empty());
                }
                let local: Vec<u64> = positions.iter().map(|&p| p - start).collect();
                let m = local.len() as u64;
                let v = seg.distinct_count() as u64;
                let mut ids = Vec::new();
                let mut bitmaps = Vec::new();
                if v * m <= 8 * seg.rows().max(1) {
                    // Few present values: filter each compressed bitmap.
                    for (&id, bm) in seg.present_ids().iter().zip(seg.bitmaps()) {
                        let f = bm.filter_positions(&local);
                        if f.any() {
                            ids.push(id);
                            bitmaps.push(f);
                        }
                    }
                } else {
                    // Many: one id-gather pass over the segment.
                    let mut local_ids = vec![u32::MAX; seg.rows() as usize];
                    seg.fill_local_slots(&mut local_ids);
                    let mut builders: Vec<OneStreamBuilder> =
                        vec![OneStreamBuilder::new(); seg.distinct_count()];
                    for (out_row, &p) in local.iter().enumerate() {
                        builders[local_ids[p as usize] as usize].push_one(out_row as u64);
                    }
                    for (&id, b) in seg.present_ids().iter().zip(builders) {
                        if b.ones() > 0 {
                            ids.push(id);
                            bitmaps.push(b.finish(m));
                        }
                    }
                }
                EncodedChunk::Bitmap(SegmentChunk {
                    ids,
                    bitmaps,
                    rows: m,
                })
            }
            SegmentEnc::Rle(seg) => {
                let local: Vec<u64> = positions.iter().map(|&p| p - start).collect();
                EncodedChunk::Rle(seg.seq().filter_positions(&local))
            }
        }
    }

    /// Mask-driven variant of [`EncodedColumn::filter_segment_chunk`]:
    /// shrink segment `seg_idx` to the set rows of `mask_seg`
    /// (segment-local), staying on the compressed form where the encoding
    /// allows.
    pub fn filter_segment_mask_chunk(&self, seg_idx: usize, mask_seg: &Wah) -> EncodedChunk {
        match self.segments[seg_idx].enc() {
            SegmentEnc::Bitmap(seg) => {
                assert_eq!(mask_seg.len(), seg.rows(), "segment mask length mismatch");
                let m = mask_seg.count_ones();
                if m == 0 {
                    return EncodedChunk::Bitmap(SegmentChunk::empty());
                }
                let v = seg.distinct_count() as u64;
                if v * m <= 8 * seg.rows().max(1) {
                    let mut ids = Vec::new();
                    let mut bitmaps = Vec::new();
                    for (&id, bm) in seg.present_ids().iter().zip(seg.bitmaps()) {
                        let f = bm.filter_bitmap(mask_seg);
                        if f.any() {
                            ids.push(id);
                            bitmaps.push(f);
                        }
                    }
                    EncodedChunk::Bitmap(SegmentChunk {
                        ids,
                        bitmaps,
                        rows: m,
                    })
                } else {
                    let start = self.starts[seg_idx];
                    let positions: Vec<u64> = mask_seg.iter_ones().map(|p| p + start).collect();
                    self.filter_segment_chunk(seg_idx, &positions)
                }
            }
            SegmentEnc::Rle(seg) => {
                assert_eq!(mask_seg.len(), seg.rows(), "segment mask length mismatch");
                // Run-level merge: each maximal selected interval of the
                // mask extracts the matching run slice — O(mask intervals +
                // selected runs), no per-row position materialization.
                let mut out = RleSeq::new();
                for (start, len) in mask_seg.iter_intervals() {
                    out.append_seq(&seg.seq().slice(start, start + len));
                }
                EncodedChunk::Rle(out)
            }
        }
    }

    /// An assembler for this column's chunks, targeting its nominal segment
    /// size.
    pub fn assembler(&self) -> EncodedAssembler {
        EncodedAssembler::new(self.nominal_segment_rows())
    }

    /// Finalizes an assembler's directory into a column sharing this
    /// column's type, dictionary (compacted to the surviving values),
    /// nominal segment size, and column-level pin.
    pub fn from_assembler_compacting(&self, asm: EncodedAssembler) -> EncodedColumn {
        Self::from_segments_compacting(self.ty, self.dict.clone(), asm.finish(), self.segment_rows)
            .with_meta_of(self)
    }

    /// The paper's *bitmap filtering*: shrink the column to the rows listed
    /// in `positions` (non-decreasing). Values that vanish are dropped and
    /// the dictionary compacted. Each segment's piece stays in that
    /// segment's encoding. Serial; the evolution operators in `cods` core
    /// run the same per-segment chunks in parallel.
    pub fn filter_positions(&self, positions: &[u64]) -> EncodedColumn {
        let mut asm = self.assembler();
        for (seg_idx, range) in self.position_spans(positions) {
            asm.push_chunk(self.filter_segment_chunk(seg_idx, &positions[range]));
        }
        self.from_assembler_compacting(asm)
    }

    /// Gather by an arbitrary (not necessarily sorted) row selection:
    /// output row `j` carries the value of input row `positions[j]`. Used
    /// by clustering/sorting. Chunks are emitted in the column's uniform
    /// encoding when it has one; a mixed column's chunks go through the
    /// per-segment chooser (structure is rebuilt anyway).
    pub fn gather(&self, positions: &[u64]) -> EncodedColumn {
        let ids = self.value_ids();
        let uniform = self.uniform_encoding();
        let mut asm = self.assembler();
        for chunk in positions.chunks(self.segment_rows.max(1) as usize) {
            let it = chunk.iter().map(|&p| ids[p as usize]);
            let rows = chunk.len() as u64;
            asm.push_chunk(match uniform {
                Some(enc) => EncodedChunk::from_ids(enc, it, rows, self.dict.len()),
                None => EncodedChunk::from_ids_for(self, it, rows),
            });
        }
        self.from_assembler_compacting(asm)
    }

    /// Bitmap filtering driven by a selection mask.
    pub fn filter_bitmap(&self, mask: &Wah) -> EncodedColumn {
        let masks = self.split_mask(mask);
        let mut asm = self.assembler();
        for (seg_idx, mask_seg) in masks.iter().enumerate() {
            if mask_seg.any() {
                asm.push_chunk(self.filter_segment_mask_chunk(seg_idx, mask_seg));
            }
        }
        self.from_assembler_compacting(asm)
    }

    // ---- concat / slice / compaction ----

    /// Concatenates two columns of the same type (UNION TABLES).
    /// Dictionaries are merged; both sides' segments are reused by
    /// reference when no id translation is needed — appending never
    /// rewrites payloads, whatever mix of encodings either side holds.
    pub fn concat(&self, other: &EncodedColumn) -> Result<EncodedColumn, StorageError> {
        if self.ty != other.ty {
            return Err(StorageError::RowMismatch(format!(
                "cannot union column of type {} with {}",
                self.ty, other.ty
            )));
        }
        let (dict, other_map) = self.dict.merge(other.dict());
        let identity = other_map.iter().enumerate().all(|(i, &m)| m as usize == i);
        let mut segments = self.segments.clone();
        // Zones splice: ids are stable under the dictionary merge (self's
        // ids keep their values; other's translate to same-value ids), so
        // both sides' zones carry over without touching any stats.
        let mut zones = self.zones.clone();
        let mut seg_pins = self.seg_pins.clone();
        if identity {
            segments.extend(other.segments.iter().cloned());
            zones.extend(other.zones.iter().copied());
        } else {
            let map: Vec<Option<u32>> = other_map.iter().map(|&m| Some(m)).collect();
            segments.extend(other.segments.iter().map(|s| s.remap(&map)));
            zones.extend(other.zones.iter().map(|z| z.remap(&map)));
        }
        seg_pins.extend(other.seg_pins.iter().copied());
        let (starts, rows) = starts_of(&segments);
        Ok(EncodedColumn {
            ty: self.ty,
            dict,
            segments,
            starts,
            zones,
            seg_pins,
            segment_rows: self.segment_rows,
            rows,
            // An explicit pin on either input survives the union — the
            // chooser must not undo a recode the user asked for just
            // because the pinned side was the right operand.
            pinned: self.pinned || other.pinned,
        })
    }

    /// Extracts the row range `[start, end)`. Fully covered segments are
    /// shared by reference (keeping their encoding, zone, and pin) when no
    /// dictionary compaction is needed; partial segments rebuild in their
    /// own encoding.
    pub fn slice(&self, start: u64, end: u64) -> EncodedColumn {
        assert!(start <= end && end <= self.rows, "slice out of range");
        let mut parts: Vec<SegSlot> = Vec::new();
        let mut zones: Vec<Zone> = Vec::new();
        let mut seg_pins: Vec<bool> = Vec::new();
        let mut present = vec![false; self.dict.len()];
        let ranks = self.dict.value_order().ranks();
        for (i, (seg, &seg_start)) in self.segments.iter().zip(&self.starts).enumerate() {
            let seg_end = seg_start + seg.rows();
            if seg_end <= start || seg_start >= end {
                continue;
            }
            let lo = start.max(seg_start) - seg_start;
            let hi = end.min(seg_end) - seg_start;
            if lo == hi {
                continue;
            }
            let part = if lo == 0 && hi == seg.rows() {
                // Fully covered: the slot (with its encoding, zone, pin, and
                // residency state) carries over untouched — no fault.
                zones.push(self.zones[i]);
                seg.clone()
            } else {
                let rebuilt = match seg.enc() {
                    SegmentEnc::Bitmap(s) => {
                        let mut pairs = Vec::new();
                        for (&id, bm) in s.present_ids().iter().zip(s.bitmaps()) {
                            let piece = bm.slice(lo, hi);
                            if piece.any() {
                                pairs.push((id, piece));
                            }
                        }
                        SegmentEnc::Bitmap(Arc::new(Segment::new(hi - lo, pairs)))
                    }
                    SegmentEnc::Rle(s) => {
                        SegmentEnc::Rle(Arc::new(RleSegment::new(s.seq().slice(lo, hi))))
                    }
                };
                // Partial coverage may narrow the value range: re-derive
                // from the surviving present-id stats.
                zones.push(Zone::of_ids(rebuilt.present_ids(), ranks));
                SegSlot::fresh(rebuilt)
            };
            for &id in part.present_ids() {
                present[id as usize] = true;
            }
            seg_pins.push(self.seg_pins[i]);
            parts.push(part);
        }
        let (segments, dict, zones) = if present.iter().all(|&p| p) {
            (parts, self.dict.clone(), zones)
        } else {
            let (dict, mapping) = self.dict.compact(|id| present[id as usize]);
            let segments = parts.iter().map(|s| s.remap(&mapping)).collect();
            let zones = zones.into_iter().map(|z| z.remap(&mapping)).collect();
            (segments, dict, zones)
        };
        let (starts, rows) = starts_of(&segments);
        EncodedColumn {
            ty: self.ty,
            dict,
            segments,
            starts,
            zones,
            seg_pins,
            segment_rows: self.segment_rows,
            rows,
            pinned: self.pinned,
        }
    }

    /// Returns `true` when the directory is fragmented enough to benefit
    /// from [`EncodedColumn::compacted`] (the shared
    /// [`needs_compaction`](crate::segment::needs_compaction) trigger).
    pub fn needs_compaction(&self) -> bool {
        crate::segment::needs_compaction(&self.segment_sizes(), self.segment_rows)
    }

    /// Re-chunks the segment directory toward the nominal segment size:
    /// adjacent undersized segments are merged and oversized ones split, so
    /// every output segment lands in `[½·nominal, 2·nominal]` (unless the
    /// whole column is smaller). Segments already within bounds are reused
    /// by reference with their encoding, zone, and pin.
    ///
    /// Merge groups splice payload and stats from the sources instead of
    /// recounting. A group whose segments share one encoding splices
    /// natively ([`Segment::splice`] / [`RleSegment::splice`]); a **mixed**
    /// group transcodes its minority parts to the encoding the chooser
    /// picks for the group's combined run/row/distinct stats, then splices.
    /// Only genuine splits re-derive stats through the assembler.
    pub fn compacted(&self) -> EncodedColumn {
        let sizes = self.segment_sizes();
        let Some(plan) = crate::segment::compaction_plan(&sizes, self.segment_rows) else {
            return self.clone();
        };
        let ranks = self.dict.value_order().ranks();
        let mut segments: Vec<SegSlot> = Vec::with_capacity(plan.len());
        let mut zones: Vec<Zone> = Vec::with_capacity(plan.len());
        let mut seg_pins: Vec<bool> = Vec::with_capacity(plan.len());
        for group in plan {
            if group.is_untouched(&sizes) {
                segments.push(self.segments[group.segs.start].clone());
                zones.push(self.zones[group.segs.start]);
                seg_pins.push(self.seg_pins[group.segs.start]);
                continue;
            }
            // A pin anywhere in the group pins its output: compaction must
            // not hand a user-pinned range back to the chooser. When the
            // group mixes encodings, the pinned encoding wins — the first
            // *pinned* part's, so an unpinned neighbor merged in cannot
            // flip data a user recoded explicitly.
            let group_pin = self.seg_pins[group.segs.clone()].iter().any(|&p| p);
            let pinned_target = self.segments[group.segs.clone()]
                .iter()
                .zip(&self.seg_pins[group.segs.clone()])
                .find(|(_, &pin)| pin)
                .map(|(seg, _)| seg.encoding())
                .or_else(|| {
                    self.pinned
                        .then(|| self.segments[group.segs.start].encoding())
                });
            if group.pieces.len() == 1 {
                let parts = &self.segments[group.segs.clone()];
                segments.push(splice_group(parts, pinned_target));
                zones.push(
                    self.zones[group.segs]
                        .iter()
                        .copied()
                        .reduce(|a, b| a.merge(b, ranks))
                        .expect("compaction group is non-empty"),
                );
                seg_pins.push(group_pin);
                continue;
            }
            let piece_count = group.pieces.len();
            let mut asm = EncodedAssembler::with_piece_sizes(group.pieces);
            for seg in &self.segments[group.segs] {
                asm.push_chunk(match seg.enc() {
                    SegmentEnc::Bitmap(s) => EncodedChunk::Bitmap(s.to_chunk()),
                    SegmentEnc::Rle(s) => EncodedChunk::Rle(s.seq().clone()),
                });
            }
            let pieces = asm.finish();
            debug_assert_eq!(pieces.len(), piece_count);
            zones.extend(pieces.iter().map(|s| Zone::of_ids(s.present_ids(), ranks)));
            seg_pins.extend(std::iter::repeat_n(group_pin, pieces.len()));
            segments.extend(pieces.into_iter().map(SegSlot::fresh));
        }
        let (starts, rows) = starts_of(&segments);
        EncodedColumn {
            ty: self.ty,
            dict: self.dict.clone(),
            segments,
            starts,
            zones,
            seg_pins,
            segment_rows: self.segment_rows,
            rows,
            pinned: self.pinned,
        }
    }

    /// [`EncodedColumn::compacted`] when fragmented, otherwise a cheap
    /// clone — the threshold-triggered form hooked in after UNION concat.
    pub fn maybe_compacted(&self) -> EncodedColumn {
        if self.needs_compaction() {
            self.compacted()
        } else {
            self.clone()
        }
    }

    // ---- sizes and invariants ----

    /// Compressed payload bytes (bitmaps and run sequences, excluding the
    /// dictionary), summed from segment stats.
    pub fn payload_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.compressed_bytes()).sum()
    }

    /// Approximate total heap size (payload + dictionary).
    pub fn size_bytes(&self) -> usize {
        self.payload_bytes() + self.dict.size_bytes()
    }

    /// Faults every paged-out segment into memory — the eager-open path
    /// used by the v1 downgrade writer and fully-resident benchmarks.
    pub fn fault_in_all(&self) {
        for seg in &self.segments {
            let _ = seg.enc();
        }
    }

    /// `(resident, on-disk)` segment counts — buffer-cache telemetry.
    pub fn residency_counts(&self) -> (usize, usize) {
        let resident = self.segments.iter().filter(|s| s.is_resident()).count();
        (resident, self.segments.len() - resident)
    }

    /// Verifies the per-segment invariants, the directory geometry,
    /// dictionary compaction (every value occurs somewhere), zone
    /// consistency, and pin-vector geometry. Faults every payload in;
    /// [`EncodedColumn::check_meta_invariants`] is the no-fault subset.
    pub fn check_invariants(&self) -> Result<(), StorageError> {
        self.check_meta_invariants()?;
        for (i, seg) in self.segments.iter().enumerate() {
            seg.check_invariants()
                .map_err(|e| StorageError::Corrupt(format!("segment {i}: {e}")))?;
        }
        Ok(())
    }

    /// The metadata tier of [`EncodedColumn::check_invariants`]: directory
    /// geometry, dictionary compaction, and zone consistency, all checked
    /// against the resident per-segment stats — never faults a payload in.
    /// This is what the v6 lazy-open path runs; payloads are then validated
    /// individually against these same stats as they fault in.
    pub fn check_meta_invariants(&self) -> Result<(), StorageError> {
        if self.segments.len() != self.starts.len() {
            return Err(StorageError::Corrupt("segment/start count mismatch".into()));
        }
        if self.segments.len() != self.seg_pins.len() {
            return Err(StorageError::Corrupt(format!(
                "{} pins for {} segments",
                self.seg_pins.len(),
                self.segments.len()
            )));
        }
        let mut present = vec![0u64; self.dict.len()];
        let mut expected_start = 0u64;
        for (i, (seg, &start)) in self.segments.iter().zip(&self.starts).enumerate() {
            if start != expected_start {
                return Err(StorageError::Corrupt(format!(
                    "segment {i} starts at {start}, expected {expected_start}"
                )));
            }
            if seg.rows() == 0 {
                return Err(StorageError::Corrupt(format!("segment {i} is empty")));
            }
            for (&id, &ones) in seg.present_ids().iter().zip(seg.ones()) {
                if id as usize >= self.dict.len() {
                    return Err(StorageError::Corrupt(format!(
                        "segment {i} references id {id} beyond dictionary"
                    )));
                }
                present[id as usize] += ones;
            }
            expected_start += seg.rows();
        }
        if expected_start != self.rows {
            return Err(StorageError::Corrupt(format!(
                "segments cover {expected_start} rows, column claims {}",
                self.rows
            )));
        }
        if self.rows > 0 {
            if let Some(id) = present.iter().position(|&n| n == 0) {
                return Err(StorageError::Corrupt(format!(
                    "value id {id} occurs in no segment (dictionary not compacted)"
                )));
            }
        }
        if self.zones.len() != self.segments.len() {
            return Err(StorageError::Corrupt(format!(
                "{} zones for {} segments",
                self.zones.len(),
                self.segments.len()
            )));
        }
        let ranks = self.dict.value_order().ranks();
        for (i, (seg, &zone)) in self.segments.iter().zip(&self.zones).enumerate() {
            if Zone::of_ids(seg.present_ids(), ranks) != zone {
                return Err(StorageError::Corrupt(format!(
                    "segment {i} zone (min id {}, max id {}) does not match its present ids",
                    zone.min_id, zone.max_id
                )));
            }
        }
        Ok(())
    }

    /// Decoding helper: installs per-segment pins read from disk (must be
    /// parallel to the directory).
    pub(crate) fn set_segment_pins(&mut self, pins: Vec<bool>) {
        debug_assert_eq!(pins.len(), self.segments.len());
        for (slot, &pin) in self.segments.iter().zip(&pins) {
            if pin {
                slot.set_pinned(true);
            }
        }
        self.seg_pins = pins;
    }

    /// The raw segment-range pin bit of segment `idx`, without the
    /// column-level pin folded in (the persist writer stores the two
    /// independently).
    pub(crate) fn segment_pin_raw(&self, idx: usize) -> bool {
        self.seg_pins[idx]
    }
}

/// Splices a compaction merge group into one segment. A uniform group
/// splices natively, combining cached stats; a mixed group transcodes each
/// part to the encoding the chooser picks for the combined statistics —
/// unless the range carries a pin, in which case `pinned_target` (the
/// first pinned part's encoding) wins: the chooser must not reshape data
/// a user recoded explicitly.
fn splice_group(parts: &[SegSlot], pinned_target: Option<Encoding>) -> SegSlot {
    debug_assert!(!parts.is_empty());
    let uniform = parts
        .iter()
        .all(|s| s.encoding() == parts[0].encoding())
        .then(|| parts[0].encoding());
    let target = match (uniform, pinned_target) {
        (Some(e), _) => e,
        (None, Some(e)) => e,
        (None, None) => {
            // The pick comes from resident metadata alone; only the splice
            // itself below faults the group's payloads in.
            let runs: u64 = parts.iter().map(|s| s.run_count()).sum();
            let rows: u64 = parts.iter().map(|s| s.rows()).sum();
            let mut distinct: Vec<u32> = parts
                .iter()
                .flat_map(|s| s.present_ids().iter().copied())
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            choose_encoding_from_stats(runs, rows, distinct.len() as u64, 1)
        }
    };
    let seg = match target {
        Encoding::Bitmap => {
            let converted: Vec<Arc<Segment>> = parts
                .iter()
                .map(|s| match s.enc() {
                    SegmentEnc::Bitmap(b) => b,
                    SegmentEnc::Rle(r) => Arc::new(r.to_bitmap_segment()),
                })
                .collect();
            let refs: Vec<&Segment> = converted.iter().map(|s| s.as_ref()).collect();
            SegmentEnc::Bitmap(Arc::new(Segment::splice(&refs)))
        }
        Encoding::Rle => {
            let converted: Vec<Arc<RleSegment>> = parts
                .iter()
                .map(|s| match s.enc() {
                    SegmentEnc::Rle(r) => r,
                    SegmentEnc::Bitmap(b) => Arc::new(RleSegment::from_bitmap_segment(&b)),
                })
                .collect();
            let refs: Vec<&RleSegment> = converted.iter().map(|s| s.as_ref()).collect();
            SegmentEnc::Rle(Arc::new(RleSegment::splice(&refs)))
        }
    };
    SegSlot::fresh(seg)
}

/// Incremental column builder: interns values and grows one
/// [`OneStreamBuilder`] per distinct value of the *current segment*,
/// sealing a bitmap segment every `segment_rows` rows (the ingest path;
/// the chooser re-encodes later where the stats say so).
#[derive(Debug)]
pub struct ColumnBuilder {
    ty: ValueType,
    dict: Dictionary,
    segment_rows: u64,
    /// Per-global-id builders for the current segment (sparse via `active`).
    builders: Vec<OneStreamBuilder>,
    /// Ids with at least one row in the current segment.
    active: Vec<u32>,
    cur_rows: u64,
    segments: Vec<SegmentEnc>,
    rows: u64,
}

impl ColumnBuilder {
    /// Creates a builder for a column of type `ty` with the default segment
    /// size.
    pub fn new(ty: ValueType) -> Self {
        Self::with_segment_rows(ty, crate::segment::DEFAULT_SEGMENT_ROWS)
    }

    /// Creates a builder sealing a segment every `segment_rows` rows.
    pub fn with_segment_rows(ty: ValueType, segment_rows: u64) -> Self {
        assert!(segment_rows > 0, "segment size must be positive");
        ColumnBuilder {
            ty,
            dict: Dictionary::new(),
            segment_rows,
            builders: Vec::new(),
            active: Vec::new(),
            cur_rows: 0,
            segments: Vec::new(),
            rows: 0,
        }
    }

    /// Appends one value as the next row.
    pub fn push(&mut self, v: Value) -> Result<(), StorageError> {
        if !v.conforms_to(self.ty) {
            return Err(StorageError::RowMismatch(format!(
                "value {v} does not conform to column type {}",
                self.ty
            )));
        }
        let id = self.dict.intern(v) as usize;
        if id >= self.builders.len() {
            self.builders.resize_with(id + 1, OneStreamBuilder::new);
        }
        if self.builders[id].ones() == 0 {
            self.active.push(id as u32);
        }
        self.builders[id].push_one(self.cur_rows);
        self.cur_rows += 1;
        self.rows += 1;
        if self.cur_rows == self.segment_rows {
            self.seal_segment();
        }
        Ok(())
    }

    fn seal_segment(&mut self) {
        if self.cur_rows == 0 {
            return;
        }
        let rows = self.cur_rows;
        let pairs: Vec<(u32, Wah)> = self
            .active
            .drain(..)
            .map(|id| {
                let b = std::mem::replace(&mut self.builders[id as usize], OneStreamBuilder::new());
                (id, b.finish(rows))
            })
            .collect();
        self.segments
            .push(SegmentEnc::Bitmap(Arc::new(Segment::new(rows, pairs))));
        self.cur_rows = 0;
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Finalizes the column. Zones are derived once here from the sealed
    /// segments' present-id stats (the dictionary's value order is built a
    /// single time, not per segment).
    pub fn finish(mut self) -> EncodedColumn {
        self.seal_segment();
        let col =
            EncodedColumn::from_segments(self.ty, self.dict, self.segments, self.segment_rows);
        debug_assert_eq!(col.rows, self.rows);
        col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: i64) -> Vec<Value> {
        (0..n).map(|i| Value::int(i % 5)).collect()
    }

    fn both(values: &[Value]) -> (EncodedColumn, EncodedColumn) {
        let bitmap = EncodedColumn::from_values_with(ValueType::Int, values, 64).unwrap();
        let rle = bitmap.recode(Encoding::Rle).unwrap();
        (bitmap, rle)
    }

    /// A genuinely mixed directory: even segments bitmap, odd segments RLE.
    fn mixed(values: &[Value], seg: u64) -> EncodedColumn {
        let base = EncodedColumn::from_values_with(ValueType::Int, values, seg).unwrap();
        let mut out = base;
        for i in (1..out.segment_count()).step_by(2) {
            out = out.recode_segments(i..i + 1, Encoding::Rle).unwrap();
        }
        out
    }

    #[test]
    fn ids_range_matches_value_ids_on_mixed_directories() {
        let values: Vec<Value> = (0..500).map(|i| Value::int(i / 7 % 11)).collect();
        let col = mixed(&values, 64);
        assert!(col.encoding_counts().0 > 0 && col.encoding_counts().1 > 0);
        let full = col.value_ids();
        // Aligned, partial, cross-segment, empty, and total ranges.
        for range in [
            0..64,
            64..128,
            10..20,
            60..70,
            100..317,
            0..0,
            499..500,
            0..500,
        ] {
            assert_eq!(
                col.ids_range(range.clone()),
                full[range.start as usize..range.end as usize],
                "{range:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn ids_range_rejects_out_of_bounds() {
        let (bitmap, _) = both(&vals(10));
        bitmap.ids_range(5..11);
    }

    #[test]
    fn runs_range_coalesces_and_matches_ids_range() {
        // Clustered values so runs span segment boundaries.
        let values: Vec<Value> = (0..500).map(|i| Value::int(i / 90)).collect();
        let col = mixed(&values, 64);
        assert!(col.encoding_counts().0 > 0 && col.encoding_counts().1 > 0);
        for range in [0..64, 64..128, 10..20, 60..70, 100..317, 0..0, 0..500] {
            let runs = col.runs_range(range.clone());
            // Maximal: no two adjacent runs share an id.
            for pair in runs.windows(2) {
                assert_ne!(pair[0].0, pair[1].0, "{range:?} not coalesced");
            }
            let expanded: Vec<u32> = runs
                .iter()
                .flat_map(|&(id, n)| std::iter::repeat_n(id, n as usize))
                .collect();
            assert_eq!(expanded, col.ids_range(range.clone()), "{range:?}");
        }
    }

    #[test]
    fn build_and_decode() {
        let skills: Vec<Value> = ["typing", "shorthand", "cleaning", "alchemy", "typing"]
            .iter()
            .map(Value::str)
            .collect();
        let c = EncodedColumn::from_values(ValueType::Str, &skills).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 5);
        assert_eq!(c.distinct_count(), 4);
        assert_eq!(c.values(), skills);
        assert_eq!(c.value_at(0), &Value::str("typing"));
        assert_eq!(c.uniform_encoding(), Some(Encoding::Bitmap));
    }

    #[test]
    fn builder_emits_multiple_segments() {
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 100);
        for i in 0..1_050 {
            b.push(Value::int(i % 7)).unwrap();
        }
        let c = b.finish();
        c.check_invariants().unwrap();
        assert_eq!(c.segment_count(), 11);
        assert_eq!(c.segments()[0].rows(), 100);
        assert_eq!(c.segments()[10].rows(), 50);
        assert_eq!(c.segment_start(10), 1_000);
        let expect: Vec<Value> = (0..1_050).map(|i| Value::int(i % 7)).collect();
        assert_eq!(c.values(), expect);
    }

    #[test]
    fn segments_are_sparse() {
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 100);
        for i in 0..200 {
            b.push(Value::int(i / 100)).unwrap();
        }
        let c = b.finish();
        c.check_invariants().unwrap();
        assert_eq!(c.segment_count(), 2);
        assert_eq!(c.segments()[0].present_ids(), &[0]);
        assert_eq!(c.segments()[1].present_ids(), &[1]);
        assert_eq!(c.value_count(0), 100);
        assert!(!c.segments()[1].contains_id(0));
    }

    #[test]
    fn value_bitmap_splices_across_segments() {
        let vals: Vec<Value> = (0..300).map(|i| Value::int(i % 3)).collect();
        for col in [
            EncodedColumn::from_values_with(ValueType::Int, &vals, 64).unwrap(),
            mixed(&vals, 64),
        ] {
            let bm = col.value_bitmap(0);
            assert_eq!(bm.len(), 300);
            assert_eq!(bm.to_positions(), (0..300).step_by(3).collect::<Vec<u64>>());
            assert_eq!(col.bitmap_of(&Value::int(0)).unwrap(), bm);
            assert!(col.bitmap_of(&Value::int(99)).is_none());
        }
    }

    #[test]
    fn nulls_and_type_mismatch() {
        let vals = vec![Value::int(1), Value::Null, Value::int(1), Value::Null];
        let c = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.values(), vals);
        let mut b = ColumnBuilder::new(ValueType::Int);
        assert!(b.push(Value::str("oops")).is_err());
        b.push(Value::Null).unwrap(); // NULL conforms to any type
        assert_eq!(b.finish().rows(), 1);
    }

    #[test]
    fn filter_positions_drops_vanished_values() {
        let vals: Vec<Value> = ["a", "b", "c", "d", "a"].iter().map(Value::str).collect();
        let c = EncodedColumn::from_values(ValueType::Str, &vals).unwrap();
        let f = c.filter_positions(&[0, 3, 4]);
        f.check_invariants().unwrap();
        assert_eq!(f.rows(), 3);
        assert_eq!(f.distinct_count(), 2);
        assert_eq!(
            f.values(),
            vec![Value::str("a"), Value::str("d"), Value::str("a")]
        );
    }

    #[test]
    fn empty_column() {
        let c = EncodedColumn::from_values(ValueType::Int, &[]).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 0);
        assert_eq!(c.segment_count(), 0);
        assert_eq!(c.uniform_encoding(), Some(Encoding::Bitmap));
        assert!(c.values().is_empty());
        assert_eq!(c.id_cursor().count(), 0);
    }

    #[test]
    fn from_ids_and_from_parts() {
        let vals = vals(40);
        let by_values = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let ids = by_values.value_ids();
        let by_ids = EncodedColumn::from_ids(ValueType::Int, by_values.dict().clone(), &ids);
        assert_eq!(by_ids, by_values);
        let dict = Dictionary::from_values(vec![Value::int(1)]).unwrap();
        assert!(EncodedColumn::from_parts(ValueType::Int, dict, vec![], 0).is_err());
    }

    #[test]
    fn concat_shares_segments_of_both_sides() {
        let vals: Vec<Value> = (0..500).map(|i| Value::int(i % 5)).collect();
        let a = EncodedColumn::from_values_with(ValueType::Int, &vals, 100).unwrap();
        let b = a.recode(Encoding::Rle).unwrap();
        let c = a.concat(&b).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 1_000);
        assert_eq!(c.segment_count(), 10);
        // Left side stays bitmap, right side stays RLE — a mixed directory
        // out of a mixed-encoding union, both reused by reference (the
        // shared slots mean a cached segment serves both table versions).
        assert!(c.segments()[0].ptr_eq(&a.segments()[0]));
        assert_eq!(c.segments()[0].encoding(), Encoding::Bitmap);
        assert!(c.segments()[5].ptr_eq(&b.segments()[0]));
        assert_eq!(c.segments()[5].encoding(), Encoding::Rle);
        assert_eq!(c.encoding_counts(), (5, 5));
        assert_eq!(c.uniform_encoding(), None);
        let mut expect = vals.clone();
        expect.extend(vals);
        assert_eq!(c.values(), expect);
    }

    #[test]
    fn slice_shares_interior_segments() {
        let vals: Vec<Value> = (0..1_000).map(|i| Value::int(i % 4)).collect();
        let c = mixed(&vals, 100);
        let s = c.slice(50, 950);
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 900);
        // Interior segments carry over untouched, keeping their encoding
        // (output segment 1 is input segment 1, which `mixed` made RLE).
        assert_eq!(s.segments()[1].encoding(), c.segments()[1].encoding());
        assert_eq!(s.segments()[1].encoding(), Encoding::Rle);
        let expect: Vec<Value> = (50..950).map(|i| Value::int(i % 4)).collect();
        assert_eq!(s.values(), expect);
    }

    #[test]
    fn encodings_agree_on_primitives() {
        let values = vals(500);
        let (b, r) = both(&values);
        let m = mixed(&values, 64);
        for col in [&r, &m] {
            assert_eq!(b.values(), col.values());
            assert_eq!(b.value_ids(), col.value_ids());
            assert_eq!(b.segment_count(), col.segment_count());
            let positions: Vec<u64> = (0..500).step_by(3).collect();
            assert_eq!(
                b.filter_positions(&positions).values(),
                col.filter_positions(&positions).values()
            );
            assert_eq!(b.slice(100, 300).values(), col.slice(100, 300).values());
            for id in 0..b.distinct_count() as u32 {
                assert_eq!(b.value_bitmap(id), col.value_bitmap(id));
            }
            let cur_b: Vec<(u64, u32)> = b.id_cursor().collect();
            let cur_c: Vec<(u64, u32)> = col.id_cursor().collect();
            assert_eq!(cur_b, cur_c);
        }
    }

    #[test]
    fn recode_round_trips() {
        let values = vals(300);
        let (b, r) = both(&values);
        assert_eq!(b.recode(Encoding::Rle).unwrap(), r);
        assert_eq!(r.recode(Encoding::Bitmap).unwrap(), b);
        assert_eq!(b.recode(Encoding::Bitmap).unwrap(), b);
        // A mixed directory recodes to either uniform form losslessly.
        let m = mixed(&values, 64);
        assert_eq!(m.recode(Encoding::Bitmap).unwrap().values(), b.values());
        let uniform_rle = m.recode(Encoding::Rle).unwrap();
        assert!(uniform_rle.is_uniform(Encoding::Rle));
        assert_eq!(uniform_rle.values(), b.values());
    }

    #[test]
    fn chooser_picks_rle_on_clustered_and_bitmap_on_uniform() {
        // Clustered: 20k rows, 200 distinct values in sorted order — mean
        // run length 100. Every segment's own stats say RLE.
        let clustered: Vec<Value> = (0..20_000).map(|i| Value::int(i / 100)).collect();
        let c = EncodedColumn::from_values_with(ValueType::Int, &clustered, 4096).unwrap();
        assert_eq!(c.run_count(), 200 + 4); // one run per value, +1 per interior boundary
        assert_eq!(c.choose_encoding(), Encoding::Rle);
        for i in 0..c.segment_count() {
            assert_eq!(c.choose_segment_encoding(i), Encoding::Rle);
        }
        assert!(c.auto_recoded().unwrap().is_uniform(Encoding::Rle));

        // High-cardinality uniform: runs ≈ rows. Stays bitmap everywhere.
        let uniform: Vec<Value> = (0..20_000)
            .map(|i| Value::int((i * 2_654_435_761u64 as i64) % 5_000))
            .collect();
        let u = EncodedColumn::from_values_with(ValueType::Int, &uniform, 4096).unwrap();
        assert_eq!(u.choose_encoding(), Encoding::Bitmap);
        assert!(!u.needs_auto_recode());
        assert!(u
            .recode(Encoding::Rle)
            .unwrap()
            .auto_recoded()
            .unwrap()
            .is_uniform(Encoding::Bitmap));
    }

    #[test]
    fn per_segment_chooser_produces_mixed_directories() {
        // Half-clustered, half-uniform: the per-segment chooser must flip
        // only the clustered prefix to RLE — a genuinely mixed directory.
        let n = 8_192i64;
        let values: Vec<Value> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    Value::int(i / 512)
                } else {
                    Value::int((i * 2_654_435_761u64 as i64) % 1_000)
                }
            })
            .collect();
        let c = EncodedColumn::from_values_with(ValueType::Int, &values, 1024).unwrap();
        let auto = c.auto_recoded().unwrap();
        auto.check_invariants().unwrap();
        let (bitmap_segs, rle_segs) = auto.encoding_counts();
        assert!(rle_segs >= 3, "clustered prefix should flip to RLE");
        assert!(bitmap_segs >= 3, "uniform suffix should stay bitmap");
        assert_eq!(auto.uniform_encoding(), None);
        assert_eq!(auto.values(), c.values());
    }

    #[test]
    fn auto_recode_respects_pin() {
        let clustered: Vec<Value> = (0..4_000).map(|i| Value::int(i / 100)).collect();
        let c = EncodedColumn::from_values_with(ValueType::Int, &clustered, 1024).unwrap();
        // Unpinned: the chooser flips the clustered column to RLE.
        assert!(c.auto_recoded().unwrap().is_uniform(Encoding::Rle));
        // Pinned: an explicit recode overrides the chooser.
        let mut pinned = c.clone();
        pinned.set_encoding_pinned(true);
        assert!(pinned.auto_recoded().unwrap().is_uniform(Encoding::Bitmap));
        // The pin survives recode, filter, concat, slice, and compaction.
        let r = pinned.recode(Encoding::Rle).unwrap();
        assert!(r.encoding_pinned());
        assert!(r.filter_positions(&[0, 5, 9]).encoding_pinned());
        assert!(r.concat(&r).unwrap().encoding_pinned());
        assert!(r.slice(10, 900).encoding_pinned());
        assert!(r.maybe_compacted().encoding_pinned());
        assert!(!c.encoding_pinned());
    }

    #[test]
    fn segment_range_recode_pins_those_segments() {
        let clustered: Vec<Value> = (0..4_000).map(|i| Value::int(i / 100)).collect();
        let c = EncodedColumn::from_values_with(ValueType::Int, &clustered, 500).unwrap();
        assert_eq!(c.segment_count(), 8);
        // Pin segments 2..5 to bitmap; the chooser may flip the rest.
        let ranged = c.recode_segments(2..5, Encoding::Bitmap).unwrap();
        assert!(!ranged.encoding_pinned(), "column-level pin untouched");
        for i in 0..8 {
            assert_eq!(ranged.segment_pinned(i), (2..5).contains(&i));
        }
        let auto = ranged.auto_recoded().unwrap();
        auto.check_invariants().unwrap();
        for i in 0..8 {
            let expect = if (2..5).contains(&i) {
                Encoding::Bitmap
            } else {
                Encoding::Rle
            };
            assert_eq!(auto.segment_encoding(i), expect, "segment {i}");
        }
        // Range pins survive concat and slice of covered segments.
        let cat = ranged.concat(&ranged).unwrap();
        assert!(cat.segment_pinned(2) && cat.segment_pinned(10));
        assert!(!cat.segment_pinned(0) && !cat.segment_pinned(8));
        // `auto` over the range clears the pins and re-applies the chooser.
        let cleared = auto.auto_recode_segments(2..5).unwrap();
        for i in 0..8 {
            assert!(!cleared.segment_pinned(i));
            assert_eq!(cleared.segment_encoding(i), Encoding::Rle);
        }
        // Out-of-bounds ranges are rejected.
        assert!(c.recode_segments(7..9, Encoding::Rle).is_err());
        assert!(c.auto_recode_segments(9..9).is_err());
    }

    #[test]
    fn concat_keeps_pin_from_either_side() {
        let values = vals(200);
        let (b, r) = both(&values);
        let mut pinned = b.clone();
        pinned.set_encoding_pinned(true);
        assert!(b.concat(&pinned).unwrap().encoding_pinned());
        assert!(pinned.concat(&b).unwrap().encoding_pinned());
        assert!(r.concat(&pinned).unwrap().encoding_pinned());
        let mut pinned_rle = r.clone();
        pinned_rle.set_encoding_pinned(true);
        assert!(b.concat(&pinned_rle).unwrap().encoding_pinned());
        assert!(!b.concat(&r).unwrap().encoding_pinned());
        assert!(pinned.recode(Encoding::Rle).unwrap().encoding_pinned());
    }

    #[test]
    fn zones_track_value_order_extremes() {
        // Two segments: rows 0..4 hold {30, 10}, rows 4..8 hold {20, 40}.
        let vals: Vec<Value> = [30, 10, 30, 10, 20, 40, 20, 40]
            .iter()
            .map(|&i| Value::int(i))
            .collect();
        let (b, r) = {
            let bitmap = EncodedColumn::from_values_with(ValueType::Int, &vals, 4).unwrap();
            let rle = bitmap.recode(Encoding::Rle).unwrap();
            (bitmap, rle)
        };
        for col in [&b, &r] {
            assert_eq!(col.zones().len(), 2);
            let dict = col.dict();
            let z0 = col.zone(0);
            assert_eq!(dict.value(z0.min_id), &Value::int(10));
            assert_eq!(dict.value(z0.max_id), &Value::int(30));
            let z1 = col.zone(1);
            assert_eq!(dict.value(z1.min_id), &Value::int(20));
            assert_eq!(dict.value(z1.max_id), &Value::int(40));
        }
        // Concat splices zones without recomputation — across encodings.
        let cat = b.concat(&r).unwrap();
        assert_eq!(cat.zones().len(), 4);
        assert_eq!(cat.zone(2), b.zone(0));
        let s = b.slice(4, 6); // rows {20, 40} → one partial segment
        assert_eq!(s.zones().len(), 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn mixed_compaction_transcodes_merge_groups() {
        // Fragment a mixed directory into tiny alternating-encoding
        // slices; compaction must merge them into healthy segments with
        // identical data, transcoding inside mixed groups.
        let values: Vec<Value> = (0..4_000).map(|i| Value::int(i % 6)).collect();
        let base = mixed(&values, 256);
        let mut acc = base.slice(0, 10);
        for i in 1..100 {
            acc = acc.concat(&base.slice(i * 10, i * 10 + 10)).unwrap();
        }
        assert_eq!(acc.rows(), 1_000);
        assert!(acc.needs_compaction());
        let compacted = acc.compacted();
        compacted.check_invariants().unwrap();
        assert_eq!(compacted.values(), acc.values());
        assert_eq!(compacted.dict(), acc.dict());
        let nominal = compacted.nominal_segment_rows();
        for size in compacted.segment_sizes() {
            assert!(size >= nominal / 2 && size <= 2 * nominal);
        }
        assert!(!compacted.needs_compaction());
    }

    #[test]
    fn compaction_keeps_a_pinned_segments_encoding_in_mixed_groups() {
        // A pinned RLE fragment merged with unpinned bitmap neighbors must
        // come out RLE (and pinned) even though the neighbors come first
        // in the group — compaction must not reshape an explicit recode.
        let values: Vec<Value> = (0..1_200)
            .map(|i| Value::int((i * 2_654_435_761u64 as i64) % 400))
            .collect();
        let base = EncodedColumn::from_values_with(ValueType::Int, &values, 400).unwrap();
        assert_eq!(base.segment_count(), 3);
        // Pin the middle segment RLE; scattered data means the chooser
        // would pick bitmap for the merged group if the pin were ignored.
        let pinned = base.recode_segments(1..2, Encoding::Rle).unwrap();
        // Fragment into tiny slices so compaction merges across the pinned
        // range, then compact.
        let mut acc = pinned.slice(0, 30);
        for i in 1..40 {
            acc = acc.concat(&pinned.slice(i * 30, (i + 1) * 30)).unwrap();
        }
        assert!(acc.needs_compaction());
        let compacted = acc.compacted();
        compacted.check_invariants().unwrap();
        assert_eq!(compacted.values(), acc.values());
        // Every output segment containing pinned rows stays RLE + pinned.
        let pinned_segments: Vec<usize> = (0..compacted.segment_count())
            .filter(|&i| compacted.segment_pinned(i))
            .collect();
        assert!(!pinned_segments.is_empty(), "pin must survive compaction");
        for i in pinned_segments {
            assert_eq!(
                compacted.segment_encoding(i),
                Encoding::Rle,
                "pinned segment {i} flipped encoding during compaction"
            );
        }
    }

    #[test]
    fn assembler_seals_pieces_in_their_encoding() {
        // All-RLE pieces seal as RLE; a bitmap piece anywhere seals the
        // segment as bitmap (RLE pieces transcoded).
        let mut seq1 = RleSeq::new();
        seq1.append_run(3, 4);
        let mut seq2 = RleSeq::new();
        seq2.append_run(1, 4);
        let mut asm = EncodedAssembler::new(4);
        asm.push_chunk(EncodedChunk::Rle(seq1));
        asm.push_chunk(EncodedChunk::Bitmap(SegmentChunk::from_ids(
            [0u32, 0, 1, 1],
            4,
            2,
        )));
        asm.push_chunk(EncodedChunk::Rle(seq2));
        let segs = asm.finish();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].encoding(), Encoding::Rle);
        assert_eq!(segs[1].encoding(), Encoding::Bitmap);
        assert_eq!(segs[2].encoding(), Encoding::Rle);
        for s in &segs {
            s.check_invariants().unwrap();
            assert_eq!(s.rows(), 4);
        }
    }

    #[test]
    fn assembler_splits_and_pads_across_boundaries() {
        // A 6-row bitmap chunk and a 3-row RLE chunk over a 4-row target:
        // the middle segment mixes pieces and must seal as bitmap with
        // correct padding.
        let mut asm = EncodedAssembler::new(4);
        asm.push_chunk(EncodedChunk::Bitmap(SegmentChunk::from_ids(
            [0u32, 0, 1, 1, 0, 1],
            6,
            3,
        )));
        let mut seq = RleSeq::new();
        seq.append_run(2, 3);
        asm.push_chunk(EncodedChunk::Rle(seq));
        let segs = asm.finish();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].rows(), 4);
        assert_eq!(segs[1].rows(), 4);
        assert_eq!(segs[2].rows(), 1);
        for s in &segs {
            s.check_invariants().unwrap();
        }
        assert_eq!(segs[0].present_ids(), &[0, 1]);
        // Second segment: rows 4..8 = [0, 1, 2, 2] — mixed pieces → bitmap.
        assert_eq!(segs[1].encoding(), Encoding::Bitmap);
        assert_eq!(segs[1].present_ids(), &[0, 1, 2]);
        assert_eq!(segs[1].count_for(2), 2);
        assert_eq!(segs[2].present_ids(), &[2]);
        assert_eq!(segs[2].encoding(), Encoding::Rle);
    }

    #[test]
    fn chunk_from_seq_follows_the_chooser() {
        let col = EncodedColumn::from_values_with(ValueType::Int, &vals(100), 64).unwrap();
        // Long runs → RLE chunk.
        let mut runs = RleSeq::new();
        runs.append_run(0, 50);
        runs.append_run(1, 50);
        assert!(matches!(
            EncodedChunk::from_seq_for(&col, runs),
            EncodedChunk::Rle(_)
        ));
        // Alternating ids (runs ≈ rows, distinct small but runs > 2·(d+1))
        // → bitmap chunk.
        let mut alt = RleSeq::new();
        for i in 0..100u32 {
            alt.push(i % 4);
        }
        assert!(matches!(
            EncodedChunk::from_seq_for(&col, alt),
            EncodedChunk::Bitmap(_)
        ));
        // A pinned uniform column forces its encoding on fresh chunks.
        let mut pinned = col.recode(Encoding::Rle).unwrap();
        pinned.set_encoding_pinned(true);
        let mut alt = RleSeq::new();
        for i in 0..100u32 {
            alt.push(i % 4);
        }
        assert!(matches!(
            EncodedChunk::from_seq_for(&pinned, alt),
            EncodedChunk::Rle(_)
        ));
    }

    #[test]
    fn gather_unsorted_on_mixed() {
        let values = vals(300);
        let b = EncodedColumn::from_values_with(ValueType::Int, &values, 64).unwrap();
        let m = mixed(&values, 64);
        let positions: Vec<u64> = (0..300).rev().step_by(7).collect();
        assert_eq!(b.gather(&positions).values(), m.gather(&positions).values());
    }
}
