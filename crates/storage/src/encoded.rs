//! The encoding-polymorphic column: every table column is either bitmap
//! encoded ([`Column`]) or run-length encoded ([`RleColumn`]), and both
//! share the same shape — a column-global dictionary plus a directory of
//! `Arc`-shared row-range segments with per-segment statistics. This module
//! is the seam that lets tables, evolution operators, and scans treat the
//! two uniformly: operators fan out one task per (column × segment) and
//! splice per-segment results back through an [`EncodedAssembler`], and
//! every data-level primitive (filter, gather, concat, slice, compaction)
//! preserves the input's encoding.

use crate::column::Column;
use crate::cursor::RowIdCursor;
use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::rle_column::{RleAssembler, RleColumn};
use crate::segment::{SegmentAssembler, SegmentChunk, Zone};
use crate::value::{Value, ValueType};
use cods_bitmap::{RleSeq, Wah};
use std::ops::Range;

/// The physical encoding of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// One WAH bitmap per value per segment (the paper's default layout).
    Bitmap,
    /// Run-length encoded value ids per segment (clustered columns).
    Rle,
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Encoding::Bitmap => write!(f, "bitmap"),
            Encoding::Rle => write!(f, "rle"),
        }
    }
}

/// A column in either encoding, exposing the encoding-agnostic API the rest
/// of the system works against.
#[derive(Clone, Debug, PartialEq)]
pub enum EncodedColumn {
    /// Bitmap-encoded.
    Bitmap(Column),
    /// Run-length encoded.
    Rle(RleColumn),
}

impl From<Column> for EncodedColumn {
    fn from(c: Column) -> EncodedColumn {
        EncodedColumn::Bitmap(c)
    }
}

impl From<RleColumn> for EncodedColumn {
    fn from(c: RleColumn) -> EncodedColumn {
        EncodedColumn::Rle(c)
    }
}

/// The per-segment output of one operator task, in the owning column's
/// encoding, not yet aligned to segment boundaries.
#[derive(Debug)]
pub enum EncodedChunk {
    /// Sparse per-value bitmaps over a run of output rows.
    Bitmap(SegmentChunk),
    /// A run piece over global value ids.
    Rle(RleSeq),
}

impl EncodedChunk {
    /// Builds a chunk from a stream of value ids, one per output row in
    /// order, in the given encoding.
    pub fn from_ids<I: IntoIterator<Item = u32>>(
        encoding: Encoding,
        ids: I,
        rows: u64,
        distinct_hint: usize,
    ) -> EncodedChunk {
        match encoding {
            Encoding::Bitmap => {
                EncodedChunk::Bitmap(SegmentChunk::from_ids(ids, rows, distinct_hint))
            }
            Encoding::Rle => {
                let mut seq = RleSeq::new();
                for id in ids {
                    seq.push(id);
                }
                debug_assert_eq!(seq.len(), rows);
                EncodedChunk::Rle(seq)
            }
        }
    }
}

/// Splices [`EncodedChunk`]s into a segment directory of the matching
/// encoding.
pub enum EncodedAssembler {
    /// Assembling bitmap segments.
    Bitmap(SegmentAssembler),
    /// Assembling RLE segments.
    Rle(RleAssembler),
}

impl EncodedAssembler {
    /// Appends a chunk (must match the assembler's encoding).
    pub fn push_chunk(&mut self, chunk: EncodedChunk) {
        match (self, chunk) {
            (EncodedAssembler::Bitmap(asm), EncodedChunk::Bitmap(c)) => asm.push_chunk(c),
            (EncodedAssembler::Rle(asm), EncodedChunk::Rle(seq)) => asm.push_seq(&seq),
            _ => panic!("chunk encoding does not match assembler encoding"),
        }
    }
}

impl EncodedColumn {
    /// The physical encoding.
    pub fn encoding(&self) -> Encoding {
        match self {
            EncodedColumn::Bitmap(_) => Encoding::Bitmap,
            EncodedColumn::Rle(_) => Encoding::Rle,
        }
    }

    /// The bitmap form, when bitmap encoded.
    pub fn as_bitmap(&self) -> Option<&Column> {
        match self {
            EncodedColumn::Bitmap(c) => Some(c),
            EncodedColumn::Rle(_) => None,
        }
    }

    /// The RLE form, when run-length encoded.
    pub fn as_rle(&self) -> Option<&RleColumn> {
        match self {
            EncodedColumn::Bitmap(_) => None,
            EncodedColumn::Rle(c) => Some(c),
        }
    }

    /// Re-encodes to `encoding` (a no-op clone when already there). Values,
    /// dictionary, segment boundaries, zones, and the encoding pin are
    /// preserved.
    pub fn recode(&self, encoding: Encoding) -> Result<EncodedColumn, StorageError> {
        let mut out = match (self, encoding) {
            (EncodedColumn::Bitmap(c), Encoding::Rle) => {
                EncodedColumn::Rle(RleColumn::from_column(c))
            }
            (EncodedColumn::Rle(c), Encoding::Bitmap) => EncodedColumn::Bitmap(c.to_column()?),
            _ => return Ok(self.clone()),
        };
        out.set_encoding_pinned(self.encoding_pinned());
        Ok(out)
    }

    /// Per-segment zone maps (min/max present value in value order),
    /// parallel to the segment directory.
    pub fn zones(&self) -> &[Zone] {
        match self {
            EncodedColumn::Bitmap(c) => c.zones(),
            EncodedColumn::Rle(c) => c.zones(),
        }
    }

    /// The zone map of segment `idx`.
    pub fn zone(&self, idx: usize) -> Zone {
        match self {
            EncodedColumn::Bitmap(c) => c.zone(idx),
            EncodedColumn::Rle(c) => c.zone(idx),
        }
    }

    /// Returns `true` when the encoding was pinned by an explicit recode
    /// (the adaptive chooser leaves pinned columns alone).
    pub fn encoding_pinned(&self) -> bool {
        match self {
            EncodedColumn::Bitmap(c) => c.encoding_pinned(),
            EncodedColumn::Rle(c) => c.encoding_pinned(),
        }
    }

    /// Sets the encoding pin.
    pub fn set_encoding_pinned(&mut self, pinned: bool) {
        match self {
            EncodedColumn::Bitmap(c) => c.set_encoding_pinned(pinned),
            EncodedColumn::Rle(c) => c.set_encoding_pinned(pinned),
        }
    }

    /// Total maximal constant-value runs across the directory — exact for
    /// RLE columns (their stored runs), and computed from compressed WAH
    /// interval walks for bitmap columns (each present value's maximal
    /// set-bit intervals are its value runs). Never decompresses per row.
    pub fn run_count(&self) -> u64 {
        match self {
            EncodedColumn::Bitmap(c) => c.run_count(),
            EncodedColumn::Rle(c) => c.num_runs() as u64,
        }
    }

    /// The stats-driven encoding choice: weighs the column's run count
    /// against its row and distinct counts.
    ///
    /// RLE pays one fixed-size record per run; WAH bitmaps pay roughly two
    /// words per run plus a per-(segment × present value) overhead. RLE
    /// therefore wins when runs are long on average (`4·runs ≤ rows`, i.e.
    /// a mean run of ≥ 4 rows — clustered or near-clustered data) or when
    /// the column is essentially sorted (`runs ≤ 2·(distinct + segments)`:
    /// a perfectly clustered column has about one run per distinct value
    /// per segment it spans). Everything else — high-cardinality or
    /// uniform-random data, where runs ≈ rows — stays bitmap, the paper's
    /// default layout and the operators' native form.
    pub fn choose_encoding(&self) -> Encoding {
        let rows = self.rows();
        if rows == 0 {
            return self.encoding();
        }
        let runs = self.run_count().max(1);
        let distinct = self.distinct_count() as u64;
        let segments = self.segment_count() as u64;
        if 4 * runs <= rows || runs <= 2 * (distinct + segments) {
            Encoding::Rle
        } else {
            Encoding::Bitmap
        }
    }

    /// Re-encodes to the chooser's pick, unless the encoding is pinned (an
    /// explicit `recode` overrides the chooser until re-set to auto).
    /// Invoked automatically after `cluster_by` and threshold-triggered
    /// after UNION's compaction pass.
    pub fn auto_recoded(&self) -> Result<EncodedColumn, StorageError> {
        if self.encoding_pinned() {
            return Ok(self.clone());
        }
        self.recode(self.choose_encoding())
    }

    /// Column type.
    pub fn ty(&self) -> ValueType {
        match self {
            EncodedColumn::Bitmap(c) => c.ty(),
            EncodedColumn::Rle(c) => c.ty(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        match self {
            EncodedColumn::Bitmap(c) => c.rows(),
            EncodedColumn::Rle(c) => c.rows(),
        }
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        match self {
            EncodedColumn::Bitmap(c) => c.dict(),
            EncodedColumn::Rle(c) => c.dict(),
        }
    }

    /// Number of distinct values (dictionary size).
    pub fn distinct_count(&self) -> usize {
        self.dict().len()
    }

    /// Number of row-range segments.
    pub fn segment_count(&self) -> usize {
        match self {
            EncodedColumn::Bitmap(c) => c.segment_count(),
            EncodedColumn::Rle(c) => c.segment_count(),
        }
    }

    /// Start row of segment `idx`.
    pub fn segment_start(&self, idx: usize) -> u64 {
        match self {
            EncodedColumn::Bitmap(c) => c.segment_start(idx),
            EncodedColumn::Rle(c) => c.segment_start(idx),
        }
    }

    /// Row counts of every segment, in order.
    pub fn segment_sizes(&self) -> Vec<u64> {
        match self {
            EncodedColumn::Bitmap(c) => c.segments().iter().map(|s| s.rows()).collect(),
            EncodedColumn::Rle(c) => c.segments().iter().map(|s| s.rows()).collect(),
        }
    }

    /// Distinct values present in the densest segment (≤ `distinct_count`).
    pub fn max_segment_distinct(&self) -> usize {
        match self {
            EncodedColumn::Bitmap(c) => c
                .segments()
                .iter()
                .map(|s| s.distinct_count())
                .max()
                .unwrap_or(0),
            EncodedColumn::Rle(c) => c
                .segments()
                .iter()
                .map(|s| s.distinct_count())
                .max()
                .unwrap_or(0),
        }
    }

    /// The nominal segment size new data is chunked at.
    pub fn nominal_segment_rows(&self) -> u64 {
        match self {
            EncodedColumn::Bitmap(c) => c.nominal_segment_rows(),
            EncodedColumn::Rle(c) => c.nominal_segment_rows(),
        }
    }

    /// The value stored at `row`.
    pub fn value_at(&self, row: u64) -> &Value {
        match self {
            EncodedColumn::Bitmap(c) => c.value_at(row),
            EncodedColumn::Rle(c) => c.value_at(row),
        }
    }

    /// Materializes the dense row → value-id array (O(rows)).
    pub fn value_ids(&self) -> Vec<u32> {
        match self {
            EncodedColumn::Bitmap(c) => c.value_ids(),
            EncodedColumn::Rle(c) => c.value_ids(),
        }
    }

    /// Decodes all rows to values (display/test helper).
    pub fn values(&self) -> Vec<Value> {
        match self {
            EncodedColumn::Bitmap(c) => c.values(),
            EncodedColumn::Rle(c) => c.values(),
        }
    }

    /// Streaming `(row, value id)` cursor in ascending row order, without
    /// materializing anything per row.
    pub fn id_cursor(&self) -> Box<dyn Iterator<Item = (u64, u32)> + '_> {
        match self {
            EncodedColumn::Bitmap(c) => Box::new(RowIdCursor::new(c)),
            EncodedColumn::Rle(c) => Box::new(c.id_cursor()),
        }
    }

    /// Materializes the full-length bitmap of value id `id`.
    pub fn value_bitmap(&self, id: u32) -> Wah {
        match self {
            EncodedColumn::Bitmap(c) => c.value_bitmap(id),
            EncodedColumn::Rle(c) => c.value_bitmap(id),
        }
    }

    /// Materialized bitmap of a value, if it occurs in the column.
    pub fn bitmap_of(&self, v: &Value) -> Option<Wah> {
        self.dict().id_of(v).map(|id| self.value_bitmap(id))
    }

    /// Number of rows carrying value id `id` (from segment stats).
    pub fn value_count(&self, id: u32) -> u64 {
        match self {
            EncodedColumn::Bitmap(c) => c.value_count(id),
            EncodedColumn::Rle(c) => c.value_count(id),
        }
    }

    /// Splits a non-decreasing global position list into per-segment spans.
    pub fn position_spans(&self, positions: &[u64]) -> Vec<(usize, Range<usize>)> {
        match self {
            EncodedColumn::Bitmap(c) => c.position_spans(positions),
            EncodedColumn::Rle(c) => c.position_spans(positions),
        }
    }

    /// Splits a whole-column selection mask along this column's segment
    /// boundaries.
    pub fn split_mask(&self, mask: &Wah) -> Vec<Wah> {
        match self {
            EncodedColumn::Bitmap(c) => c.split_mask(mask),
            EncodedColumn::Rle(c) => c.split_mask(mask),
        }
    }

    /// Bitmap filtering restricted to one segment: shrink segment `seg_idx`
    /// to the rows listed in `positions` (global, non-decreasing, within
    /// the segment), producing an unaligned chunk in this encoding — the
    /// per-(column × segment) task body of the parallel operators.
    pub fn filter_segment_chunk(&self, seg_idx: usize, positions: &[u64]) -> EncodedChunk {
        match self {
            EncodedColumn::Bitmap(c) => {
                EncodedChunk::Bitmap(c.filter_segment_chunk(seg_idx, positions))
            }
            EncodedColumn::Rle(c) => EncodedChunk::Rle(c.filter_segment_seq(seg_idx, positions)),
        }
    }

    /// Mask-driven variant of [`EncodedColumn::filter_segment_chunk`].
    pub fn filter_segment_mask_chunk(&self, seg_idx: usize, mask_seg: &Wah) -> EncodedChunk {
        match self {
            EncodedColumn::Bitmap(c) => {
                EncodedChunk::Bitmap(c.filter_segment_mask_chunk(seg_idx, mask_seg))
            }
            EncodedColumn::Rle(c) => {
                EncodedChunk::Rle(c.filter_segment_mask_seq(seg_idx, mask_seg))
            }
        }
    }

    /// An assembler for chunks of this column's encoding, targeting its
    /// nominal segment size.
    pub fn assembler(&self) -> EncodedAssembler {
        match self {
            EncodedColumn::Bitmap(_) => {
                EncodedAssembler::Bitmap(SegmentAssembler::new(self.nominal_segment_rows()))
            }
            EncodedColumn::Rle(_) => {
                EncodedAssembler::Rle(RleAssembler::new(self.nominal_segment_rows()))
            }
        }
    }

    /// Finalizes an assembler's directory into a column sharing this
    /// column's type, dictionary (compacted to the surviving values), and
    /// nominal segment size.
    pub fn from_assembler_compacting(&self, asm: EncodedAssembler) -> EncodedColumn {
        let mut out = match asm {
            EncodedAssembler::Bitmap(asm) => {
                EncodedColumn::Bitmap(Column::from_segments_compacting(
                    self.ty(),
                    self.dict().clone(),
                    asm.finish(),
                    self.nominal_segment_rows(),
                ))
            }
            EncodedAssembler::Rle(asm) => EncodedColumn::Rle(RleColumn::from_segments_compacting(
                self.ty(),
                self.dict().clone(),
                asm.finish(),
                self.nominal_segment_rows(),
            )),
        };
        out.set_encoding_pinned(self.encoding_pinned());
        out
    }

    /// The paper's *bitmap filtering*: shrink the column to the rows listed
    /// in `positions` (non-decreasing), preserving the encoding.
    pub fn filter_positions(&self, positions: &[u64]) -> EncodedColumn {
        match self {
            EncodedColumn::Bitmap(c) => EncodedColumn::Bitmap(c.filter_positions(positions)),
            EncodedColumn::Rle(c) => EncodedColumn::Rle(c.filter_positions(positions)),
        }
    }

    /// Gather by an arbitrary (not necessarily sorted) row selection.
    pub fn gather(&self, positions: &[u64]) -> EncodedColumn {
        match self {
            EncodedColumn::Bitmap(c) => EncodedColumn::Bitmap(c.gather(positions)),
            EncodedColumn::Rle(c) => EncodedColumn::Rle(c.gather(positions)),
        }
    }

    /// Bitmap filtering driven by a selection mask.
    pub fn filter_bitmap(&self, mask: &Wah) -> EncodedColumn {
        match self {
            EncodedColumn::Bitmap(c) => EncodedColumn::Bitmap(c.filter_bitmap(mask)),
            EncodedColumn::Rle(c) => EncodedColumn::Rle(c.filter_bitmap(mask)),
        }
    }

    /// Concatenates two columns of the same type (UNION TABLES). The output
    /// keeps `self`'s encoding; a mixed-encoding right side is re-encoded
    /// first (O(its runs/segments), never O(rows) of `self`).
    pub fn concat(&self, other: &EncodedColumn) -> Result<EncodedColumn, StorageError> {
        Ok(match (self, other) {
            (EncodedColumn::Bitmap(a), EncodedColumn::Bitmap(b)) => {
                EncodedColumn::Bitmap(a.concat(b)?)
            }
            (EncodedColumn::Rle(a), EncodedColumn::Rle(b)) => EncodedColumn::Rle(a.concat(b)?),
            (EncodedColumn::Bitmap(a), EncodedColumn::Rle(b)) => {
                EncodedColumn::Bitmap(a.concat(&b.to_column()?)?)
            }
            (EncodedColumn::Rle(a), EncodedColumn::Bitmap(b)) => {
                EncodedColumn::Rle(a.concat(&RleColumn::from_column(b))?)
            }
        })
    }

    /// Extracts the row range `[start, end)`, preserving the encoding.
    pub fn slice(&self, start: u64, end: u64) -> EncodedColumn {
        match self {
            EncodedColumn::Bitmap(c) => EncodedColumn::Bitmap(c.slice(start, end)),
            EncodedColumn::Rle(c) => EncodedColumn::Rle(c.slice(start, end)),
        }
    }

    /// Returns `true` when the directory is fragmented enough to benefit
    /// from [`EncodedColumn::compacted`].
    pub fn needs_compaction(&self) -> bool {
        match self {
            EncodedColumn::Bitmap(c) => c.needs_compaction(),
            EncodedColumn::Rle(c) => c.needs_compaction(),
        }
    }

    /// Re-chunks the segment directory toward the nominal segment size,
    /// reusing untouched segments by reference.
    pub fn compacted(&self) -> EncodedColumn {
        match self {
            EncodedColumn::Bitmap(c) => EncodedColumn::Bitmap(c.compacted()),
            EncodedColumn::Rle(c) => EncodedColumn::Rle(c.compacted()),
        }
    }

    /// [`EncodedColumn::compacted`] when fragmented, otherwise a cheap
    /// clone — the threshold-triggered form hooked in after UNION concat.
    pub fn maybe_compacted(&self) -> EncodedColumn {
        match self {
            EncodedColumn::Bitmap(c) => EncodedColumn::Bitmap(c.maybe_compacted()),
            EncodedColumn::Rle(c) => EncodedColumn::Rle(c.maybe_compacted()),
        }
    }

    /// Compressed payload bytes (bitmaps or run sequences, excluding the
    /// dictionary), summed from segment stats.
    pub fn payload_bytes(&self) -> usize {
        match self {
            EncodedColumn::Bitmap(c) => c.bitmap_bytes(),
            EncodedColumn::Rle(c) => c.seq_bytes(),
        }
    }

    /// Approximate total heap size (payload + dictionary).
    pub fn size_bytes(&self) -> usize {
        match self {
            EncodedColumn::Bitmap(c) => c.size_bytes(),
            EncodedColumn::Rle(c) => c.size_bytes(),
        }
    }

    /// Verifies the per-segment invariants and directory geometry.
    pub fn check_invariants(&self) -> Result<(), StorageError> {
        match self {
            EncodedColumn::Bitmap(c) => c.check_invariants(),
            EncodedColumn::Rle(c) => c.check_invariants(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: i64) -> Vec<Value> {
        (0..n).map(|i| Value::int(i % 5)).collect()
    }

    fn both(values: &[Value]) -> (EncodedColumn, EncodedColumn) {
        let bitmap = Column::from_values_with(ValueType::Int, values, 64).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        (EncodedColumn::Bitmap(bitmap), EncodedColumn::Rle(rle))
    }

    #[test]
    fn encodings_agree_on_primitives() {
        let values = vals(500);
        let (b, r) = both(&values);
        assert_eq!(b.values(), r.values());
        assert_eq!(b.value_ids(), r.value_ids());
        assert_eq!(b.segment_count(), r.segment_count());
        let positions: Vec<u64> = (0..500).step_by(3).collect();
        assert_eq!(
            b.filter_positions(&positions).values(),
            r.filter_positions(&positions).values()
        );
        assert_eq!(b.slice(100, 300).values(), r.slice(100, 300).values());
        for id in 0..b.distinct_count() as u32 {
            assert_eq!(b.value_bitmap(id), r.value_bitmap(id));
        }
        let cur_b: Vec<(u64, u32)> = b.id_cursor().collect();
        let cur_r: Vec<(u64, u32)> = r.id_cursor().collect();
        assert_eq!(cur_b, cur_r);
    }

    #[test]
    fn recode_round_trips() {
        let values = vals(300);
        let (b, r) = both(&values);
        assert_eq!(b.recode(Encoding::Rle).unwrap(), r);
        assert_eq!(r.recode(Encoding::Bitmap).unwrap(), b);
        assert_eq!(b.recode(Encoding::Bitmap).unwrap(), b);
    }

    #[test]
    fn chooser_picks_rle_on_clustered_and_bitmap_on_uniform() {
        // Clustered: 20k rows, 200 distinct values in sorted order — mean
        // run length 100. The chooser must pick RLE.
        let clustered: Vec<Value> = (0..20_000).map(|i| Value::int(i / 100)).collect();
        let c = EncodedColumn::Bitmap(
            Column::from_values_with(ValueType::Int, &clustered, 4096).unwrap(),
        );
        assert_eq!(c.run_count(), 200 + 4); // one run per value, +1 per interior boundary
        assert_eq!(c.choose_encoding(), Encoding::Rle);
        // The choice is encoding-independent: the RLE form agrees.
        assert_eq!(
            c.recode(Encoding::Rle).unwrap().choose_encoding(),
            Encoding::Rle
        );

        // High-cardinality uniform: 20k rows over 5k values in scattered
        // order — runs ≈ rows. The chooser must stay bitmap.
        let uniform: Vec<Value> = (0..20_000)
            .map(|i| Value::int((i * 2_654_435_761u64 as i64) % 5_000))
            .collect();
        let u = EncodedColumn::Bitmap(
            Column::from_values_with(ValueType::Int, &uniform, 4096).unwrap(),
        );
        assert_eq!(u.choose_encoding(), Encoding::Bitmap);
        assert_eq!(
            u.recode(Encoding::Rle).unwrap().choose_encoding(),
            Encoding::Bitmap
        );
    }

    #[test]
    fn auto_recode_respects_pin() {
        let clustered: Vec<Value> = (0..4_000).map(|i| Value::int(i / 100)).collect();
        let c = EncodedColumn::Bitmap(
            Column::from_values_with(ValueType::Int, &clustered, 1024).unwrap(),
        );
        // Unpinned: the chooser flips the clustered column to RLE.
        assert_eq!(c.auto_recoded().unwrap().encoding(), Encoding::Rle);
        // Pinned: an explicit recode overrides the chooser.
        let mut pinned = c.clone();
        pinned.set_encoding_pinned(true);
        assert_eq!(pinned.auto_recoded().unwrap().encoding(), Encoding::Bitmap);
        // The pin survives recode, filter, concat, slice, and compaction.
        let r = pinned.recode(Encoding::Rle).unwrap();
        assert!(r.encoding_pinned());
        assert!(r.filter_positions(&[0, 5, 9]).encoding_pinned());
        assert!(r.concat(&r).unwrap().encoding_pinned());
        assert!(r.slice(10, 900).encoding_pinned());
        assert!(r.maybe_compacted().encoding_pinned());
        assert!(!c.encoding_pinned());
    }

    #[test]
    fn concat_keeps_pin_from_either_side() {
        let values = vals(200);
        let (b, r) = both(&values);
        let mut pinned = b.clone();
        pinned.set_encoding_pinned(true);
        // Right-side pin survives, same and mixed encodings.
        assert!(b.concat(&pinned).unwrap().encoding_pinned());
        assert!(pinned.concat(&b).unwrap().encoding_pinned());
        assert!(r.concat(&pinned).unwrap().encoding_pinned());
        let mut pinned_rle = r.clone();
        pinned_rle.set_encoding_pinned(true);
        assert!(b.concat(&pinned_rle).unwrap().encoding_pinned());
        // No pin on either side → none on the output.
        assert!(!b.concat(&r).unwrap().encoding_pinned());
        // Cross-encoding conversion itself preserves the pin.
        assert!(pinned.recode(Encoding::Rle).unwrap().encoding_pinned());
        assert!(pinned_rle
            .recode(Encoding::Bitmap)
            .unwrap()
            .encoding_pinned());
    }

    #[test]
    fn zones_track_value_order_extremes() {
        // Two segments: rows 0..4 hold {30, 10}, rows 4..8 hold {20, 40}.
        let vals: Vec<Value> = [30, 10, 30, 10, 20, 40, 20, 40]
            .iter()
            .map(|&i| Value::int(i))
            .collect();
        let (b, r) = {
            let bitmap = Column::from_values_with(ValueType::Int, &vals, 4).unwrap();
            let rle = RleColumn::from_column(&bitmap);
            (EncodedColumn::Bitmap(bitmap), EncodedColumn::Rle(rle))
        };
        for col in [&b, &r] {
            assert_eq!(col.zones().len(), 2);
            let dict = col.dict();
            let z0 = col.zone(0);
            assert_eq!(dict.value(z0.min_id), &Value::int(10));
            assert_eq!(dict.value(z0.max_id), &Value::int(30));
            let z1 = col.zone(1);
            assert_eq!(dict.value(z1.min_id), &Value::int(20));
            assert_eq!(dict.value(z1.max_id), &Value::int(40));
        }
        // Concat splices zones without recomputation; slice narrows them.
        let cat = b.concat(&r).unwrap();
        assert_eq!(cat.zones().len(), 4);
        assert_eq!(cat.zone(2), b.zone(0));
        let s = b.slice(4, 6); // rows {20, 40} → one partial segment
        assert_eq!(s.zones().len(), 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn mixed_concat_keeps_left_encoding() {
        let values = vals(200);
        let (b, r) = both(&values);
        let br = b.concat(&r).unwrap();
        assert_eq!(br.encoding(), Encoding::Bitmap);
        let rb = r.concat(&b).unwrap();
        assert_eq!(rb.encoding(), Encoding::Rle);
        assert_eq!(br.values(), rb.values());
        assert_eq!(br.rows(), 400);
    }
}
