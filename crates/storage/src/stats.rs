//! Storage statistics: compression ratios and size accounting, feeding the
//! ablation benchmarks and the CLI's `stats` command.

use crate::encoded::{EncodedColumn, Encoding};
use crate::table::Table;
use crate::value::Value;

/// Per-column storage statistics. Since the unified directory a column's
/// segments may mix encodings, so the physical layout is reported as a
/// histogram plus the uniform encoding when there is one.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Rows in the column.
    pub rows: u64,
    /// The single encoding every segment shares, when homogeneous.
    pub encoding: Option<Encoding>,
    /// Bitmap-encoded segments in the directory.
    pub bitmap_segments: usize,
    /// RLE-encoded segments in the directory.
    pub rle_segments: usize,
    /// `true` when the whole column was pinned by an explicit recode.
    pub encoding_pinned: bool,
    /// Segments pinned individually by a segment-range recode (or by the
    /// column pin).
    pub pinned_segments: usize,
    /// Segments whose payload is currently decoded in memory.
    pub resident_segments: usize,
    /// Segments currently paged out to their backing file (metadata only).
    pub on_disk_segments: usize,
    /// Resident segments the buffer cache may not evict (pinned, or not
    /// yet saved anywhere).
    pub unevictable_segments: usize,
    /// Distinct values (dictionary size).
    pub distinct: usize,
    /// Number of row-range segments.
    pub segments: usize,
    /// Segments carrying a zone map (all of them since format v4; reported
    /// so `stats` can show coverage explicitly).
    pub zoned_segments: usize,
    /// Column-wide value range from the zone maps (min, max), `None` when
    /// empty.
    pub value_range: Option<(Value, Value)>,
    /// Distinct values present in the densest segment (the per-segment
    /// sparsity win: ≤ `distinct`).
    pub max_segment_distinct: usize,
    /// Total maximal constant-value runs (the chooser's key statistic).
    pub runs: u64,
    /// Mean run length (`rows / runs`; 0 when empty).
    pub avg_run_len: f64,
    /// What the column-aggregate chooser would pick right now.
    pub chooser_pick: Encoding,
    /// Segments the per-segment chooser would put in bitmap form.
    pub chooser_bitmap_segments: usize,
    /// Segments the per-segment chooser would put in RLE form.
    pub chooser_rle_segments: usize,
    /// Unpinned segments whose current encoding differs from the
    /// per-segment chooser's pick (what `auto` would re-encode).
    pub chooser_disagreements: usize,
    /// Compressed payload bytes — bitmap words or RLE runs, summed from
    /// segment stats.
    pub payload_bytes: usize,
    /// Dictionary bytes (approximate).
    pub dict_bytes: usize,
    /// Bytes an uncompressed `v × r` bit matrix would use.
    pub plain_matrix_bytes: usize,
    /// `plain_matrix_bytes / payload_bytes` (0 when empty).
    pub compression_ratio: f64,
}

impl ColumnStats {
    /// Computes statistics for a column in either encoding.
    pub fn of(c: &EncodedColumn) -> ColumnStats {
        let payload_bytes = c.payload_bytes();
        let plain = (c.rows().div_ceil(8) as usize) * c.distinct_count();
        let runs = c.run_count();
        let zones = c.zones();
        let value_range = if zones.is_empty() {
            None
        } else {
            let ranks = c.dict().value_order().ranks();
            let whole = zones
                .iter()
                .copied()
                .reduce(|a, b| a.merge(b, ranks))
                .expect("non-empty zones");
            Some((
                c.dict().value(whole.min_id).clone(),
                c.dict().value(whole.max_id).clone(),
            ))
        };
        let (bitmap_segments, rle_segments) = c.encoding_counts();
        let mut chooser_bitmap_segments = 0;
        let mut chooser_rle_segments = 0;
        let mut chooser_disagreements = 0;
        let mut pinned_segments = 0;
        let mut unevictable_segments = 0;
        for (i, seg) in c.segments().iter().enumerate() {
            let pick = c.choose_segment_encoding(i);
            match pick {
                Encoding::Bitmap => chooser_bitmap_segments += 1,
                Encoding::Rle => chooser_rle_segments += 1,
            }
            if c.segment_pinned(i) {
                pinned_segments += 1;
            } else if pick != seg.encoding() {
                chooser_disagreements += 1;
            }
            if seg.is_resident() && (seg.pinned() || seg.disk_loc().is_none()) {
                unevictable_segments += 1;
            }
        }
        let (resident_segments, on_disk_segments) = c.residency_counts();
        ColumnStats {
            rows: c.rows(),
            encoding: c.uniform_encoding(),
            bitmap_segments,
            rle_segments,
            encoding_pinned: c.encoding_pinned(),
            pinned_segments,
            resident_segments,
            on_disk_segments,
            unevictable_segments,
            distinct: c.distinct_count(),
            segments: c.segment_count(),
            zoned_segments: zones.len(),
            value_range,
            max_segment_distinct: c.max_segment_distinct(),
            runs,
            avg_run_len: if runs == 0 {
                0.0
            } else {
                c.rows() as f64 / runs as f64
            },
            chooser_pick: c.choose_encoding(),
            chooser_bitmap_segments,
            chooser_rle_segments,
            chooser_disagreements,
            payload_bytes,
            dict_bytes: c.dict().size_bytes(),
            plain_matrix_bytes: plain,
            compression_ratio: if payload_bytes == 0 {
                0.0
            } else {
                plain as f64 / payload_bytes as f64
            },
        }
    }
}

/// Per-table storage statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Rows in the table.
    pub rows: u64,
    /// Number of columns.
    pub arity: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Total compressed bytes (bitmaps + dictionaries).
    pub total_bytes: usize,
    /// Segments whose payload is currently decoded in memory, across all
    /// columns.
    pub resident_segments: usize,
    /// Segments currently paged out to their backing file.
    pub on_disk_segments: usize,
}

impl TableStats {
    /// Computes statistics for a table.
    pub fn of(t: &Table) -> TableStats {
        let columns: Vec<ColumnStats> = t.columns().iter().map(|c| ColumnStats::of(c)).collect();
        let total_bytes = columns.iter().map(|c| c.payload_bytes + c.dict_bytes).sum();
        TableStats {
            rows: t.rows(),
            arity: t.arity(),
            resident_segments: columns.iter().map(|c| c.resident_segments).sum(),
            on_disk_segments: columns.iter().map(|c| c.on_disk_segments).sum(),
            columns,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    #[test]
    fn low_cardinality_ratio_is_high() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..100_000).map(|i| vec![Value::int(i / 50_000)]).collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let stats = TableStats::of(&t);
        assert_eq!(stats.rows, 100_000);
        assert_eq!(stats.columns[0].distinct, 2);
        assert!(
            stats.columns[0].compression_ratio > 50.0,
            "ratio {}",
            stats.columns[0].compression_ratio
        );
    }

    #[test]
    fn clustered_low_cardinality_uses_fewer_bytes() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        // Clustered: long runs per value — near-pure fills.
        let lo: Vec<Vec<Value>> = (0..4096).map(|i| vec![Value::int(i / 2048)]).collect();
        // All-distinct: one bitmap per row, each with a single one.
        let hi: Vec<Vec<Value>> = (0..4096).map(|i| vec![Value::int(i)]).collect();
        let t_lo = TableStats::of(&Table::from_rows("lo", schema.clone(), &lo).unwrap());
        let t_hi = TableStats::of(&Table::from_rows("hi", schema, &hi).unwrap());
        assert!(t_lo.columns[0].payload_bytes < t_hi.columns[0].payload_bytes);
        // Relative to the v × r matrix, the many tiny bitmaps of the
        // high-cardinality column still compress enormously.
        assert!(t_hi.columns[0].compression_ratio > 10.0);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows("t", schema, &[]).unwrap();
        let stats = TableStats::of(&t);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.columns[0].distinct, 0);
    }

    #[test]
    fn stats_report_zones_runs_and_chooser_pick() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..2_000).map(|i| vec![Value::int(i / 100)]).collect();
        let t = Table::from_rows_with_segment_rows("t", schema, &rows, 500).unwrap();
        let s = &TableStats::of(&t).columns[0];
        assert_eq!(s.segments, 4);
        assert_eq!(s.zoned_segments, 4, "every segment carries a zone");
        assert_eq!(
            s.value_range,
            Some((Value::int(0), Value::int(19))),
            "column range folds from per-segment zones"
        );
        assert_eq!(s.runs, 20, "clustered: one run per value");
        assert!((s.avg_run_len - 100.0).abs() < 1e-9);
        assert_eq!(s.chooser_pick, Encoding::Rle, "clustered column → RLE");
        assert_eq!(s.chooser_rle_segments, 4, "every segment's own pick is RLE");
        assert_eq!(s.chooser_disagreements, 4, "all four would re-encode");
        assert!(!s.encoding_pinned);
        assert_eq!(s.pinned_segments, 0);
    }

    #[test]
    fn rle_columns_report_segments() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000).map(|i| vec![Value::int(i / 250)]).collect();
        let t = Table::from_rows_with_segment_rows("t", schema, &rows, 128)
            .unwrap()
            .recoded(Encoding::Rle)
            .unwrap();
        let stats = TableStats::of(&t);
        assert_eq!(stats.columns[0].encoding, Some(Encoding::Rle));
        assert_eq!(stats.columns[0].rle_segments, 8);
        assert_eq!(stats.columns[0].bitmap_segments, 0);
        assert_eq!(stats.columns[0].segments, 8);
        assert!(stats.columns[0].max_segment_distinct <= stats.columns[0].distinct);
        assert!(stats.columns[0].payload_bytes > 0);
    }
    #[test]
    fn stats_report_residency_without_faulting() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000).map(|i| vec![Value::int(i / 100)]).collect();
        let t = Table::from_rows_with_segment_rows("t", schema, &rows, 125).unwrap();
        // Fresh (never saved) segments are resident and unevictable.
        let s = TableStats::of(&t);
        assert_eq!((s.resident_segments, s.on_disk_segments), (8, 0));
        assert_eq!(s.columns[0].unevictable_segments, 8);
        // A lazy reopen is metadata-only, and computing stats must keep it
        // that way — nothing here touches a payload.
        let path =
            std::env::temp_dir().join(format!("cods_stats_residency_{}.tbl", std::process::id()));
        crate::persist::save_table(&t, &path).unwrap();
        let back = crate::persist::read_table(&path).unwrap();
        let s = TableStats::of(&back);
        assert_eq!((s.resident_segments, s.on_disk_segments), (0, 8));
        assert_eq!(s.columns[0].unevictable_segments, 0);
        assert_eq!(
            s.columns[0].payload_bytes,
            TableStats::of(&t).columns[0].payload_bytes
        );
        assert_eq!(
            back.column(0).residency_counts(),
            (0, 8),
            "stats computation faulted a payload in"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mixed_directories_report_a_histogram() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000).map(|i| vec![Value::int(i / 100)]).collect();
        let t = Table::from_rows_with_segment_rows("t", schema, &rows, 125).unwrap();
        let mixed = t
            .with_column_segment_range_encoding("c", Encoding::Rle, 0..3)
            .unwrap();
        let s = &TableStats::of(&mixed).columns[0];
        assert_eq!(s.encoding, None, "mixed directory has no uniform encoding");
        assert_eq!((s.bitmap_segments, s.rle_segments), (5, 3));
        assert_eq!(s.pinned_segments, 3);
        assert_eq!(s.chooser_rle_segments, 8, "clustered: every pick is RLE");
        assert_eq!(
            s.chooser_disagreements, 5,
            "the five unpinned bitmap segments"
        );
    }
}
