//! Storage statistics: compression ratios and size accounting, feeding the
//! ablation benchmarks and the CLI's `stats` command.

use crate::encoded::{EncodedColumn, Encoding};
use crate::table::Table;

/// Per-column storage statistics (both encodings share the segment
/// directory, so segment counts and per-segment sparsity are reported
/// uniformly).
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Rows in the column.
    pub rows: u64,
    /// The column's physical encoding.
    pub encoding: Encoding,
    /// Distinct values (dictionary size).
    pub distinct: usize,
    /// Number of row-range segments.
    pub segments: usize,
    /// Distinct values present in the densest segment (the per-segment
    /// sparsity win: ≤ `distinct`).
    pub max_segment_distinct: usize,
    /// Compressed payload bytes — bitmap words or RLE runs, summed from
    /// segment stats.
    pub payload_bytes: usize,
    /// Dictionary bytes (approximate).
    pub dict_bytes: usize,
    /// Bytes an uncompressed `v × r` bit matrix would use.
    pub plain_matrix_bytes: usize,
    /// `plain_matrix_bytes / payload_bytes` (0 when empty).
    pub compression_ratio: f64,
}

impl ColumnStats {
    /// Computes statistics for a column in either encoding.
    pub fn of(c: &EncodedColumn) -> ColumnStats {
        let payload_bytes = c.payload_bytes();
        let plain = (c.rows().div_ceil(8) as usize) * c.distinct_count();
        ColumnStats {
            rows: c.rows(),
            encoding: c.encoding(),
            distinct: c.distinct_count(),
            segments: c.segment_count(),
            max_segment_distinct: c.max_segment_distinct(),
            payload_bytes,
            dict_bytes: c.dict().size_bytes(),
            plain_matrix_bytes: plain,
            compression_ratio: if payload_bytes == 0 {
                0.0
            } else {
                plain as f64 / payload_bytes as f64
            },
        }
    }
}

/// Per-table storage statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Rows in the table.
    pub rows: u64,
    /// Number of columns.
    pub arity: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Total compressed bytes (bitmaps + dictionaries).
    pub total_bytes: usize,
}

impl TableStats {
    /// Computes statistics for a table.
    pub fn of(t: &Table) -> TableStats {
        let columns: Vec<ColumnStats> = t.columns().iter().map(|c| ColumnStats::of(c)).collect();
        let total_bytes = columns.iter().map(|c| c.payload_bytes + c.dict_bytes).sum();
        TableStats {
            rows: t.rows(),
            arity: t.arity(),
            columns,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    #[test]
    fn low_cardinality_ratio_is_high() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..100_000).map(|i| vec![Value::int(i / 50_000)]).collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let stats = TableStats::of(&t);
        assert_eq!(stats.rows, 100_000);
        assert_eq!(stats.columns[0].distinct, 2);
        assert!(
            stats.columns[0].compression_ratio > 50.0,
            "ratio {}",
            stats.columns[0].compression_ratio
        );
    }

    #[test]
    fn clustered_low_cardinality_uses_fewer_bytes() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        // Clustered: long runs per value — near-pure fills.
        let lo: Vec<Vec<Value>> = (0..4096).map(|i| vec![Value::int(i / 2048)]).collect();
        // All-distinct: one bitmap per row, each with a single one.
        let hi: Vec<Vec<Value>> = (0..4096).map(|i| vec![Value::int(i)]).collect();
        let t_lo = TableStats::of(&Table::from_rows("lo", schema.clone(), &lo).unwrap());
        let t_hi = TableStats::of(&Table::from_rows("hi", schema, &hi).unwrap());
        assert!(t_lo.columns[0].payload_bytes < t_hi.columns[0].payload_bytes);
        // Relative to the v × r matrix, the many tiny bitmaps of the
        // high-cardinality column still compress enormously.
        assert!(t_hi.columns[0].compression_ratio > 10.0);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows("t", schema, &[]).unwrap();
        let stats = TableStats::of(&t);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.columns[0].distinct, 0);
    }

    #[test]
    fn rle_columns_report_segments() {
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000).map(|i| vec![Value::int(i / 250)]).collect();
        let t = Table::from_rows_with_segment_rows("t", schema, &rows, 128)
            .unwrap()
            .recoded(Encoding::Rle)
            .unwrap();
        let stats = TableStats::of(&t);
        assert_eq!(stats.columns[0].encoding, Encoding::Rle);
        assert_eq!(stats.columns[0].segments, 8);
        assert!(stats.columns[0].max_segment_distinct <= stats.columns[0].distinct);
        assert!(stats.columns[0].payload_bytes > 0);
    }
}
