//! Background heap compaction (vacuum).
//!
//! Append-saves never reclaim superseded payloads: every evolved segment
//! appends its new payload and the old extent just stops being referenced,
//! so a long-lived file accretes dead heap space without bound. A vacuum
//! rewrites the *live* payloads into a fresh heap (via the same
//! temp-file + atomic-rename commit as a full-rewrite save), then rebinds
//! every in-memory slot to its new location — Arc-sharing across table
//! versions is preserved because the slots themselves are shared, and the
//! rebound slots re-adopt through the buffer cache exactly like a first
//! save.
//!
//! Two entry points:
//! * explicit — [`vacuum_table`] / [`vacuum_catalog`] / [`vacuum_file`]
//!   (the CLI's `vacuum <file>`), which compact immediately and report
//!   reclaimed bytes;
//! * automatic — every append-save reports its dead/total heap bytes, and
//!   when the configured [`AutoVacuum`] threshold is crossed a background
//!   thread compacts the file off the save path. The thread re-checks the
//!   file's footer under the save lock and skips itself if another save
//!   landed in between (that save re-evaluates the trigger), so a stale
//!   snapshot can never clobber a newer one.
//!
//! Readers concurrent with a vacuum are safe on unix: they hold an open
//! handle to the old inode, which the rename unlinks but does not destroy.
//! Their slots' stale offsets are harmless too — the file-identity check
//! in the append path refuses to reuse extents of a replaced inode.
//!
//! The commit log ([`crate::commitlog`]) is likewise immune to vacuums by
//! construction: its records carry *self-contained* table images whose
//! payloads live in the record (or its spill file), never offsets into the
//! catalog heap — so a vacuum that rewrites and rebinds the whole heap can
//! neither strand nor reorder a pending, un-checkpointed record. The
//! vacuum touches only `<file>` (and its `.wal`); `<file>.clog` and
//! `<file>.clog.d/` pass through untouched.

use crate::catalog::Catalog;
use crate::error::StorageError;
use crate::persist::{self, Content, OwnedContent};
use crate::table::Table;
use crate::wal;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// What a vacuum did to one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VacuumReport {
    /// The compacted file.
    pub path: PathBuf,
    /// File size before compaction.
    pub before_bytes: u64,
    /// File size after compaction.
    pub after_bytes: u64,
    /// Live payload bytes in the new heap.
    pub live_payload_bytes: u64,
    /// Distinct live segments placed.
    pub segments: usize,
}

impl VacuumReport {
    /// Bytes the compaction reclaimed (0 when the file grew — possible
    /// only when it was already compact and metadata dominates).
    pub fn reclaimed_bytes(&self) -> u64 {
        self.before_bytes.saturating_sub(self.after_bytes)
    }
}

/// Heap occupancy of one v6 file: how much of its payload heap is still
/// referenced by its own metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Total file size.
    pub file_bytes: u64,
    /// Payload-heap bytes (between preamble and metadata region).
    pub heap_bytes: u64,
    /// Metadata-region + footer bytes.
    pub meta_bytes: u64,
    /// Heap bytes referenced by the file's metadata.
    pub live_bytes: u64,
    /// Heap bytes no metadata references — what a vacuum reclaims.
    pub dead_bytes: u64,
    /// Distinct live payload extents.
    pub live_segments: usize,
}

/// The auto-vacuum trigger policy, evaluated after every append-save.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoVacuum {
    /// Compact when `dead / heap` exceeds this ratio…
    pub dead_ratio: f64,
    /// …and at least this many bytes are dead (keeps small files, where a
    /// rewrite is cheap anyway and ratios are noisy, off the treadmill).
    pub min_dead_bytes: u64,
}

impl Default for AutoVacuum {
    fn default() -> AutoVacuum {
        AutoVacuum {
            dead_ratio: 0.5,
            min_dead_bytes: 256 * 1024,
        }
    }
}

fn config() -> &'static Mutex<Option<AutoVacuum>> {
    static CONFIG: OnceLock<Mutex<Option<AutoVacuum>>> = OnceLock::new();
    CONFIG.get_or_init(|| Mutex::new(Some(AutoVacuum::default())))
}

/// Sets the auto-vacuum policy (`None` disables the background trigger;
/// explicit vacuums are unaffected). Process-wide.
pub fn set_auto_vacuum(policy: Option<AutoVacuum>) {
    *config().lock().unwrap_or_else(|e| e.into_inner()) = policy;
}

/// The current auto-vacuum policy, if enabled.
pub fn auto_vacuum() -> Option<AutoVacuum> {
    *config().lock().unwrap_or_else(|e| e.into_inner())
}

fn inflight() -> &'static Mutex<HashSet<usize>> {
    static INFLIGHT: OnceLock<Mutex<HashSet<usize>>> = OnceLock::new();
    INFLIGHT.get_or_init(|| Mutex::new(HashSet::new()))
}

fn tasks() -> &'static Mutex<Vec<JoinHandle<()>>> {
    static TASKS: OnceLock<Mutex<Vec<JoinHandle<()>>>> = OnceLock::new();
    TASKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Blocks until every background vacuum spawned so far has finished —
/// deterministic teardown for tests and benchmarks.
pub fn wait_for_auto_vacuum() {
    loop {
        let drained: Vec<JoinHandle<()>> = {
            let mut guard = tasks().lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        if drained.is_empty() {
            return;
        }
        for handle in drained {
            let _ = handle.join();
        }
    }
}

/// Evaluated by `save_content` after every append-save: spawn a background
/// compaction when the dead-heap threshold is crossed. `expect` is the
/// `(file_len, meta_off)` the triggering save left behind — the vacuum
/// thread re-reads the footer under the save lock and backs off if
/// another save has landed since (its own trigger re-fires as needed).
pub(crate) fn consider_auto(
    what: &Content<'_>,
    path: &Path,
    dead_bytes: u64,
    heap_bytes: u64,
    expect: (u64, u64),
) {
    let Some(policy) = auto_vacuum() else { return };
    if dead_bytes < policy.min_dead_bytes.max(1) {
        return;
    }
    if (dead_bytes as f64) < policy.dead_ratio * (heap_bytes.max(1) as f64) {
        return;
    }
    let lock = wal::path_lock(path);
    let key = Arc::as_ptr(&lock) as usize;
    {
        let mut set = inflight().lock().unwrap_or_else(|e| e.into_inner());
        if !set.insert(key) {
            return; // a vacuum of this file is already queued
        }
    }
    let owned = what.to_owned_content();
    let path = path.to_path_buf();
    let handle = std::thread::spawn(move || {
        {
            let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
            let current = persist::v6_footer(&path).ok();
            if current == Some(expect) {
                // Best-effort: a failure leaves the (committed) file as it
                // was, and the next save's trigger tries again.
                let _ = persist::rewrite_compacted(&owned.as_content(), &path);
            }
        }
        inflight()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
    });
    tasks()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

fn compact(what: &Content<'_>, path: &Path) -> Result<VacuumReport, StorageError> {
    let (before_bytes, after_bytes, live_payload_bytes, segments) =
        persist::rewrite_compacted(what, path)?;
    Ok(VacuumReport {
        path: path.to_path_buf(),
        before_bytes,
        after_bytes,
        live_payload_bytes,
        segments,
    })
}

/// Compacts the file backing `t` at `path`, keeping only the payloads the
/// table still references. `t`'s slots are rebound to the new heap, so
/// subsequent append-saves keep working at full reuse.
pub fn vacuum_table(t: &Table, path: impl AsRef<Path>) -> Result<VacuumReport, StorageError> {
    let path = path.as_ref();
    let lock = wal::path_lock(path);
    let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    compact(&Content::Table(t), path)
}

/// Compacts the file backing `cat` at `path` (see [`vacuum_table`]).
pub fn vacuum_catalog(cat: &Catalog, path: impl AsRef<Path>) -> Result<VacuumReport, StorageError> {
    let path = path.as_ref();
    let lock = wal::path_lock(path);
    let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    compact(&Content::Catalog(cat.snapshot()), path)
}

/// Offline vacuum: opens `path` (as a catalog, falling back to a single
/// table), recovers any interrupted save, and compacts in place — the
/// CLI's `vacuum <file>`.
pub fn vacuum_file(path: impl AsRef<Path>) -> Result<VacuumReport, StorageError> {
    let path = path.as_ref();
    let lock = wal::path_lock(path);
    let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    wal::recover(path)?;
    let owned = match persist::read_catalog_raw(path) {
        Ok(cat) => OwnedContent::Catalog(cat.snapshot()),
        Err(catalog_err) => match persist::read_table_raw(path) {
            Ok(t) => OwnedContent::Table(t),
            Err(_) => return Err(catalog_err),
        },
    };
    compact(&owned.as_content(), path)
}

/// Measures the heap occupancy of a v6 file: opens its metadata (lazily —
/// no payload is read) and sums the distinct extents it references.
pub fn heap_stats(path: impl AsRef<Path>) -> Result<HeapStats, StorageError> {
    let path = path.as_ref();
    let tables: Vec<Arc<Table>> = match persist::read_catalog(path) {
        Ok(cat) => cat.snapshot(),
        Err(catalog_err) => match persist::read_table(path) {
            Ok(t) => vec![Arc::new(t)],
            Err(_) => return Err(catalog_err),
        },
    };
    let (file_bytes, meta_off) = persist::v6_footer(path)?;
    let canon = std::fs::canonicalize(path)?;
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut live_bytes = 0u64;
    for t in &tables {
        for c in t.columns() {
            for s in c.segments() {
                if let Some(loc) = s.disk_loc() {
                    if loc.source.path() == Some(canon.as_path())
                        && seen.insert((loc.offset, loc.len))
                    {
                        live_bytes += loc.len;
                    }
                }
            }
        }
    }
    let heap_bytes = meta_off - persist::PREAMBLE_LEN as u64;
    Ok(HeapStats {
        file_bytes,
        heap_bytes,
        meta_bytes: file_bytes - meta_off,
        live_bytes,
        dead_bytes: heap_bytes.saturating_sub(live_bytes),
        live_segments: seen.len(),
    })
}
