//! The database catalog: a thread-safe name → table map with the
//! schema-level operations (create/drop/rename/copy) that SMOs delegate to.

use crate::error::StorageError;
use crate::retry::{RetryPolicy, Retryable};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consistent, immutable view of the whole catalog, pinned at one
/// version. Cloning the name → table map is O(tables) pointer copies —
/// every table (and, transitively, every column segment) is `Arc`-shared
/// with the live catalog, so a snapshot is copy-on-write for free:
/// evolution plans committing concurrently replace entries in the live
/// map without disturbing any reader holding a snapshot.
///
/// This is the isolation unit of the serving layer: each connection's
/// session pins one `CatalogSnapshot`, so a long streaming scan sees the
/// same catalog version from its first batch to its last no matter how
/// many plans commit in between.
#[derive(Clone, Debug)]
pub struct CatalogSnapshot {
    version: u64,
    tables: BTreeMap<String, Arc<Table>>,
}

impl CatalogSnapshot {
    /// The catalog version this snapshot was pinned at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Fetches a table from the pinned view.
    ///
    /// # Errors
    /// [`StorageError::UnknownTable`] if the table did not exist at the
    /// pinned version (it may well exist in the live catalog by now).
    pub fn get(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Returns `true` if the table existed at the pinned version.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Sorted table names at the pinned version.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of tables at the pinned version.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Returns `true` when the snapshot holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates `(name, table)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Table>)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }
}

/// Where acknowledged evolution commits go to become durable — implemented
/// by the catalog commit log ([`crate::commitlog::CommitLog`]).
///
/// The two-phase shape exists for ordering: [`stage`](DurabilitySink::stage)
/// runs *under the catalog write lock*, so records are sequenced in exactly
/// the order their commits were applied (it must only enqueue — no I/O);
/// [`wait`](DurabilitySink::wait) runs after the lock is released and blocks
/// until the staged record is on disk (typically riding a group `fsync`
/// shared with concurrent committers).
pub trait DurabilitySink: Send + Sync + std::fmt::Debug {
    /// Sequences the commit diff for appending. `version` is the catalog
    /// version the commit produced. Returns an opaque ticket for
    /// [`wait`](DurabilitySink::wait).
    fn stage(
        &self,
        version: u64,
        drops: &[String],
        puts: &[Arc<Table>],
    ) -> Result<u64, StorageError>;

    /// Blocks until the staged record is durable (or the log has failed).
    fn wait(&self, ticket: u64) -> Result<(), StorageError>;
}

/// What [`Catalog::commit_evolution`] hands back for a successful commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The catalog version the commit produced.
    pub version: u64,
    /// `true` when a [`DurabilitySink`] acknowledged the commit on disk —
    /// the commit survives a crash. `false` means memory-only.
    pub durable: bool,
}

/// A named collection of tables. All methods are thread-safe; tables are
/// immutable snapshots, so readers never block behind evolution.
///
/// Every mutation bumps a version counter, which powers the optimistic
/// staged-commit protocol used by planned evolution:
/// [`begin_evolution`](Catalog::begin_evolution) snapshots the whole
/// namespace plus its version, work proceeds against the snapshot, and
/// [`commit_evolution`](Catalog::commit_evolution) applies every staged
/// mutation in one write-locked step — all-or-nothing — iff the catalog is
/// still at the snapshot version.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    /// Bumped on every successful mutation, always under the write lock.
    version: AtomicU64,
    /// Optional durability hook: when set, every successful
    /// [`commit_evolution`](Catalog::commit_evolution) is staged with the
    /// sink before the write lock is released and acknowledged only after
    /// the sink reports it durable.
    sink: RwLock<Option<Arc<dyn DurabilitySink>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current mutation count. Two equal observations bracket a span in
    /// which no table was created, replaced, dropped, or renamed.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn bump(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Registers `table` under its own name.
    ///
    /// # Errors
    /// [`StorageError::TableExists`] if the name is taken.
    pub fn create(&self, table: Table) -> Result<(), StorageError> {
        let mut map = self.tables.write();
        if map.contains_key(table.name()) {
            return Err(StorageError::TableExists(table.name().to_string()));
        }
        map.insert(table.name().to_string(), Arc::new(table));
        self.bump();
        Ok(())
    }

    /// Registers or replaces `table` under its own name (evolution results).
    pub fn put(&self, table: Table) {
        let mut map = self.tables.write();
        map.insert(table.name().to_string(), Arc::new(table));
        self.bump();
    }

    /// Removes a table.
    ///
    /// # Errors
    /// [`StorageError::UnknownTable`] if absent.
    pub fn drop_table(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        let mut map = self.tables.write();
        let t = map
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        self.bump();
        Ok(t)
    }

    /// Pins a copy-on-write snapshot of the whole namespace at the current
    /// version — the read-isolation primitive of the serving layer (see
    /// [`CatalogSnapshot`]). O(tables) `Arc` clones; no data is copied.
    pub fn snapshot_view(&self) -> CatalogSnapshot {
        let map = self.tables.read();
        CatalogSnapshot {
            version: self.version.load(Ordering::Acquire),
            tables: map.clone(),
        }
    }

    /// Runs an optimistic snapshot-work-commit closure with bounded,
    /// jittered retry on [`StorageError::Conflict`] (see [`RetryPolicy`]).
    /// The closure must re-read the catalog on every call — typically
    /// [`begin_evolution`](Catalog::begin_evolution) …
    /// [`commit_evolution`](Catalog::commit_evolution) — because a retry
    /// only succeeds against the freshly committed state. Non-conflict
    /// errors surface immediately; a conflict on the final attempt
    /// surfaces as-is.
    pub fn commit_with_retry<T, E: Retryable>(
        &self,
        policy: &RetryPolicy,
        attempt: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        policy.run(attempt)
    }

    /// Starts an optimistic evolution transaction: one consistent snapshot
    /// of the whole namespace plus the version it was taken at. Hand the
    /// version back to [`commit_evolution`](Catalog::commit_evolution).
    pub fn begin_evolution(&self) -> (u64, BTreeMap<String, Arc<Table>>) {
        let map = self.tables.read();
        (self.version.load(Ordering::Acquire), map.clone())
    }

    /// Atomically applies a staged evolution: every drop and put lands in
    /// one write-locked step, or none do. When a [`DurabilitySink`] is
    /// attached (see [`set_durability`](Catalog::set_durability)) the commit
    /// is staged under the write lock — sequencing it after every earlier
    /// commit — and this call returns only once the sink has made it
    /// durable, so a successful return *is* the acknowledgment.
    ///
    /// # Errors
    /// [`StorageError::Conflict`] if the catalog has been mutated since
    /// `base_version` was observed; the staged state is then discarded and
    /// the catalog is untouched. [`StorageError::Durability`] if the sink
    /// failed: the commit is applied in memory but **not** durable — a
    /// caller that required durability must treat it as failed.
    pub fn commit_evolution(
        &self,
        base_version: u64,
        drops: &[String],
        puts: Vec<Arc<Table>>,
    ) -> Result<CommitReceipt, StorageError> {
        let staged = {
            let mut map = self.tables.write();
            let now = self.version.load(Ordering::Acquire);
            if now != base_version {
                return Err(StorageError::Conflict(format!(
                    "catalog at version {now}, snapshot taken at {base_version}"
                )));
            }
            // Stage before mutating: a sink that refuses (e.g. a failed
            // log) vetoes the commit while the catalog is still untouched.
            let staged = match &*self.sink.read() {
                Some(sink) => Some((Arc::clone(sink), sink.stage(now + 1, drops, &puts)?)),
                None => None,
            };
            for name in drops {
                map.remove(name);
            }
            for t in puts {
                map.insert(t.name().to_string(), t);
            }
            self.bump();
            staged
        };
        let durable = staged.is_some();
        let version = base_version + 1;
        if let Some((sink, ticket)) = staged {
            sink.wait(ticket)?;
        }
        Ok(CommitReceipt { version, durable })
    }

    /// Attaches (or detaches) the durability sink consulted by
    /// [`commit_evolution`](Catalog::commit_evolution).
    pub fn set_durability(&self, sink: Option<Arc<dyn DurabilitySink>>) {
        *self.sink.write() = sink;
    }

    /// `true` when a durability sink is attached.
    pub fn is_durable(&self) -> bool {
        self.sink.read().is_some()
    }

    /// Re-applies a recovered commit record during replay: the same
    /// write-locked drop/put step as a commit, but with no conflict check
    /// and no staging (the record *came from* the log). Returns the catalog
    /// version the replayed commit produced in this process.
    pub(crate) fn apply_replay(&self, drops: &[String], puts: Vec<Arc<Table>>) -> u64 {
        let mut map = self.tables.write();
        for name in drops {
            map.remove(name);
        }
        for t in puts {
            map.insert(t.name().to_string(), t);
        }
        self.bump();
        self.version.load(Ordering::Acquire)
    }

    /// Fetches a table snapshot.
    pub fn get(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Returns `true` if the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Renames a table. Pure metadata: all column data is shared.
    pub fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        let mut map = self.tables.write();
        if map.contains_key(to) {
            return Err(StorageError::TableExists(to.to_string()));
        }
        let t = map
            .remove(from)
            .ok_or_else(|| StorageError::UnknownTable(from.to_string()))?;
        map.insert(to.to_string(), Arc::new(t.renamed(to)));
        self.bump();
        Ok(())
    }

    /// Copies a table under a new name. Column data is shared (`Arc`), so
    /// this is O(arity), not O(data) — COPY TABLE "requires data movement,
    /// but no data change", and a column store can defer even the movement.
    pub fn copy(&self, from: &str, to: &str) -> Result<(), StorageError> {
        let src = self.get(from)?;
        let mut map = self.tables.write();
        if map.contains_key(to) {
            return Err(StorageError::TableExists(to.to_string()));
        }
        map.insert(to.to_string(), Arc::new(src.renamed(to)));
        self.bump();
        Ok(())
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// Returns `true` when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }

    /// Snapshot of all tables (name order).
    pub fn snapshot(&self) -> Vec<Arc<Table>> {
        self.tables.read().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn tiny(name: &str) -> Table {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        Table::from_rows(name, schema, &[vec![Value::int(1)]]).unwrap()
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create(tiny("t")).unwrap();
        assert!(cat.contains("t"));
        assert_eq!(cat.get("t").unwrap().rows(), 1);
        assert!(matches!(
            cat.create(tiny("t")),
            Err(StorageError::TableExists(_))
        ));
        cat.drop_table("t").unwrap();
        assert!(!cat.contains("t"));
        assert!(matches!(
            cat.drop_table("t"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn rename_moves_and_shares() {
        let cat = Catalog::new();
        cat.create(tiny("old")).unwrap();
        let before = cat.get("old").unwrap();
        cat.rename("old", "new").unwrap();
        assert!(!cat.contains("old"));
        let after = cat.get("new").unwrap();
        assert_eq!(after.name(), "new");
        assert!(Arc::ptr_eq(before.column(0), after.column(0)));
        // Renaming onto an existing name fails.
        cat.create(tiny("other")).unwrap();
        assert!(cat.rename("new", "other").is_err());
    }

    #[test]
    fn copy_shares_columns() {
        let cat = Catalog::new();
        cat.create(tiny("src")).unwrap();
        cat.copy("src", "dst").unwrap();
        let s = cat.get("src").unwrap();
        let d = cat.get("dst").unwrap();
        assert!(Arc::ptr_eq(s.column(0), d.column(0)));
        assert!(cat.copy("src", "dst").is_err());
        assert!(cat.copy("missing", "x").is_err());
    }

    #[test]
    fn listing_is_sorted() {
        let cat = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            cat.create(tiny(n)).unwrap();
        }
        assert_eq!(cat.table_names(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
    }

    #[test]
    fn version_counts_mutations() {
        let cat = Catalog::new();
        let v0 = cat.version();
        cat.create(tiny("a")).unwrap();
        assert_eq!(cat.version(), v0 + 1);
        // Failed mutations do not bump.
        assert!(cat.create(tiny("a")).is_err());
        assert!(cat.drop_table("missing").is_err());
        assert_eq!(cat.version(), v0 + 1);
        cat.rename("a", "b").unwrap();
        cat.copy("b", "c").unwrap();
        cat.put(tiny("c"));
        cat.drop_table("b").unwrap();
        assert_eq!(cat.version(), v0 + 5);
    }

    #[test]
    fn commit_evolution_is_atomic_and_optimistic() {
        let cat = Catalog::new();
        cat.create(tiny("keep")).unwrap();
        cat.create(tiny("gone")).unwrap();
        let (base, snap) = cat.begin_evolution();
        assert_eq!(snap.len(), 2);
        // Staged work lands in one step.
        cat.commit_evolution(base, &["gone".to_string()], vec![Arc::new(tiny("fresh"))])
            .unwrap();
        assert_eq!(cat.table_names(), vec!["fresh", "keep"]);

        // A snapshot invalidated by a concurrent mutation must not commit.
        let (stale, _) = cat.begin_evolution();
        cat.create(tiny("racer")).unwrap();
        let err = cat.commit_evolution(stale, &[], vec![Arc::new(tiny("loser"))]);
        assert!(matches!(err, Err(StorageError::Conflict(_))));
        assert!(!cat.contains("loser"));
        assert!(cat.contains("racer"));
    }

    #[test]
    fn snapshot_view_is_isolated_and_shares_data() {
        let cat = Catalog::new();
        cat.create(tiny("t")).unwrap();
        let snap = cat.snapshot_view();
        let live = cat.get("t").unwrap();
        assert_eq!(snap.version(), cat.version());
        assert!(Arc::ptr_eq(&snap.get("t").unwrap(), &live), "COW sharing");
        assert_eq!(snap.table_names(), vec!["t"]);
        assert_eq!(snap.len(), 1);
        assert!(!snap.is_empty());

        // Mutations after the pin are invisible to the snapshot…
        cat.create(tiny("later")).unwrap();
        cat.drop_table("t").unwrap();
        cat.put(tiny("t"));
        assert!(!snap.contains("later"));
        assert!(Arc::ptr_eq(&snap.get("t").unwrap(), &live), "old version");
        assert_ne!(snap.version(), cat.version());
        // …and iteration walks the pinned view.
        assert_eq!(snap.iter().count(), 1);
        // A fresh snapshot sees the new state.
        let snap2 = cat.snapshot_view();
        assert!(snap2.contains("later"));
        assert!(!Arc::ptr_eq(&snap2.get("t").unwrap(), &live));
    }

    #[test]
    fn commit_with_retry_resolves_contention() {
        use crate::retry::RetryPolicy;
        let cat = Catalog::new();
        cat.create(tiny("seed")).unwrap();
        // First attempt races and conflicts (another writer mutates between
        // snapshot and commit); the retry re-snapshots and lands.
        let mut raced = false;
        let policy = RetryPolicy::no_backoff(4);
        cat.commit_with_retry(&policy, |_| {
            let (base, _snap) = cat.begin_evolution();
            if !raced {
                raced = true;
                cat.create(tiny("racer")).unwrap(); // invalidates `base`
            }
            cat.commit_evolution(base, &[], vec![Arc::new(tiny("winner"))])
        })
        .unwrap();
        assert!(cat.contains("winner"));
        assert!(cat.contains("racer"));

        // A policy of one attempt surfaces the conflict unchanged.
        let policy = RetryPolicy::no_backoff(1);
        let err = cat.commit_with_retry(&policy, |_| {
            let (base, _snap) = cat.begin_evolution();
            cat.create(tiny(&format!("noise{}", cat.version())))
                .unwrap();
            cat.commit_evolution(base, &[], vec![])
        });
        assert!(matches!(err, Err(StorageError::Conflict(_))));
    }

    #[test]
    fn put_replaces() {
        let cat = Catalog::new();
        cat.create(tiny("t")).unwrap();
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let bigger =
            Table::from_rows("t", schema, &[vec![Value::int(1)], vec![Value::int(2)]]).unwrap();
        cat.put(bigger);
        assert_eq!(cat.get("t").unwrap().rows(), 2);
    }
}
