//! The catalog commit log: SMO-commit-granularity durability.
//!
//! PR 7's rollback journal ([`crate::wal`]) makes *saves* crash-safe; this
//! module makes *commits* crash-safe. Every successful
//! [`Catalog::commit_evolution`] appends one checksummed commit record to a
//! sidecar log (`<file>.clog`) describing the catalog diff — the tables the
//! commit dropped and the full images of the tables it put — and the commit
//! is acknowledged only once the record is on disk. On the next open,
//! [`open_durable`] loads the checkpoint (the catalog file itself) and
//! replays every sealed record past it, so an acknowledged commit survives
//! any crash.
//!
//! ## Record format
//!
//! The log reuses the WAL's frame format (`tag len payload fnv`, FNV-1a-64
//! checksums — see [`crate::wal`]) behind a distinct magic:
//!
//! ```text
//! log     := magic:u32 version:u16 frame*
//! frame   := COMMIT_TAG:u32 len:u64 record fnv:u64
//! record  := version:u64 drops:u32 str* puts:u32 put*
//! put     := str(name) mode:u8 body
//! body    := 0 img_len:u64 image                      (inline)
//!          | 1 str(file) img_len:u64 img_fnv:u64      (spilled)
//! str     := len:u32 bytes
//! ```
//!
//! A put's `image` is a self-contained v6 table image
//! ([`crate::persist::encode_table`]): payloads travel in the image's own
//! payload heap, so records never reference offsets inside the catalog
//! file — a checkpoint or a vacuum can rewrite and rebind the catalog heap
//! freely without stranding a pending record. Images at or below the spill
//! threshold ride inline in the record; larger ones are spilled to
//! `<file>.clog.d/sN.spill` (written and fsynced *before* the record that
//! references them, and verified by length + checksum at replay).
//!
//! ## Group commit
//!
//! Concurrent committers stage records under the catalog write lock (which
//! sequences them in commit order) and then park in [`CommitLog::wait`].
//! The first waiter becomes the leader: it drains the whole queue, writes
//! every staged record in one buffer, and issues **one** fsync for the
//! batch — N commits, one `fsync(2)`. Followers wake when the leader
//! advances the durable ticket.
//!
//! ## Recovery state machine
//!
//! ```text
//! append → seal (checksummed frame + group fsync) → ack
//!        → checkpoint (full save = the new recovery base)
//!        → truncate (drop records the checkpoint covers)
//! ```
//!
//! Replay applies sealed records in log order; the first torn or
//! mis-checksummed frame ends the valid prefix and everything past it is
//! discarded and physically truncated — **acknowledged-prefix semantics**:
//! every acknowledged commit is in the valid prefix (its fsync covered it),
//! and no torn record can ever apply (its checksum cannot seal). A crash
//! between checkpoint and truncate merely leaves records the checkpoint
//! already covers; re-applying them is idempotent because records carry
//! full table images, not deltas.

use crate::catalog::{Catalog, DurabilitySink};
use crate::error::StorageError;
use crate::fault;
use crate::persist;
use crate::table::Table;
use crate::wal;
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Instant;

/// Commit-log file magic ("CODS CLOG").
const CLOG_MAGIC: u32 = 0xC0D5_C106;
/// Commit-log format version.
const CLOG_VERSION: u16 = 1;
/// Frame tag of a commit record.
const COMMIT_TAG: u32 = 2;
/// Bytes of the log file header (magic + version).
const CLOG_HEADER_BYTES: u64 = 6;
/// Default inline-vs-spill threshold for put images.
pub const DEFAULT_SPILL_THRESHOLD: usize = 64 * 1024;

/// The sidecar commit-log path for a catalog file: `<file>.clog`.
pub fn clog_path(target: &Path) -> PathBuf {
    let mut name = target.file_name().unwrap_or_default().to_os_string();
    name.push(".clog");
    target.with_file_name(name)
}

/// The spill directory for a catalog file: `<file>.clog.d`.
pub fn spill_dir(target: &Path) -> PathBuf {
    let mut name = target.file_name().unwrap_or_default().to_os_string();
    name.push(".clog.d");
    target.with_file_name(name)
}

/// Counters of a live [`CommitLog`], all monotonic except the gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitLogStats {
    /// Commit records made durable (acknowledged commits).
    pub commits: u64,
    /// Group fsyncs issued — `commits / fsyncs` is the batching factor.
    pub fsyncs: u64,
    /// Largest number of commits covered by one fsync.
    pub max_batch: u64,
    /// Cumulative wall time spent inside the group fsyncs, microseconds.
    pub fsync_micros: u64,
    /// Records currently in the log, i.e. not yet checkpointed (gauge).
    pub pending_records: u64,
    /// Bytes of the log file (gauge).
    pub log_bytes: u64,
}

/// What [`open_durable`] found and did during recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Sealed commit records replayed onto the checkpoint.
    pub replayed: u64,
    /// `true` when a torn tail (a record whose append was cut by the
    /// crash) was discarded and truncated away.
    pub discarded_torn: bool,
    /// Orphan spill files (spilled images whose record never sealed)
    /// removed.
    pub orphan_spills: u64,
}

/// Read-only inspection of a catalog file's commit log — the data behind
/// the CLI's `wal` status command. Produced by [`log_status`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStatus {
    /// `true` when `<file>.clog` exists.
    pub exists: bool,
    /// Sealed commit records in the valid prefix.
    pub records: u64,
    /// Bytes of the valid prefix (header included).
    pub valid_bytes: u64,
    /// Bytes past the valid prefix — non-zero means a torn tail that the
    /// next open will discard.
    pub torn_bytes: u64,
    /// Spill files currently on disk.
    pub spill_files: u64,
    /// Total bytes of those spill files.
    pub spill_bytes: u64,
}

/// One record staged by a committer, waiting for the group fsync.
#[derive(Debug)]
struct Pending {
    ticket: u64,
    version: u64,
    drops: Vec<String>,
    puts: Vec<Arc<Table>>,
}

/// Scheduler state: the staging queue and the group-commit protocol.
#[derive(Debug, Default)]
struct Sched {
    queue: Vec<Pending>,
    next_ticket: u64,
    /// Highest ticket whose record is durable.
    durable: u64,
    /// A leader is writing a batch right now.
    writing: bool,
    /// Set on the first append/checkpoint failure: the modeled process can
    /// no longer guarantee durability, so every later stage/wait fails.
    poisoned: Option<String>,
}

/// Index entry for one durable record in the log file.
#[derive(Debug)]
struct Entry {
    /// Catalog version the commit produced *in this process* — compared
    /// against the checkpoint's snapshot version to decide truncation.
    version: u64,
    offset: u64,
    len: u64,
    spills: Vec<PathBuf>,
}

/// File-side state, guarded separately from the scheduler so a leader
/// writes without blocking stagers.
#[derive(Debug)]
struct LogIo {
    file: File,
    len: u64,
    entries: Vec<Entry>,
}

#[derive(Debug)]
struct Inner {
    target: PathBuf,
    log_path: PathBuf,
    spill_dir: PathBuf,
    spill_threshold: usize,
    sched: Mutex<Sched>,
    done: Condvar,
    io: Mutex<LogIo>,
    spill_seq: AtomicU64,
    commits: AtomicU64,
    fsyncs: AtomicU64,
    max_batch: AtomicU64,
    fsync_micros: AtomicU64,
}

/// A live commit log attached to one catalog file. Cheap to clone (shared
/// handle); implements [`DurabilitySink`] so it plugs straight into
/// [`Catalog::set_durability`] — [`open_durable`] does that wiring.
#[derive(Debug, Clone)]
pub struct CommitLog {
    inner: Arc<Inner>,
}

/// Opens `target` durably: recovers any interrupted save, loads the
/// checkpoint, replays the commit log's sealed records onto it (discarding
/// and truncating a torn tail), removes orphan spills, and attaches the
/// log to the catalog as its [`DurabilitySink`]. Returns the recovered
/// catalog, the live log, and what replay found.
pub fn open_durable(target: &Path) -> Result<(Catalog, CommitLog, ReplayReport), StorageError> {
    open_durable_with(target, DEFAULT_SPILL_THRESHOLD)
}

/// [`open_durable`] with an explicit inline-vs-spill threshold (bytes).
pub fn open_durable_with(
    target: &Path,
    spill_threshold: usize,
) -> Result<(Catalog, CommitLog, ReplayReport), StorageError> {
    let lock = wal::path_lock(target);
    let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());

    // Checkpoint: the catalog file itself, save-recovered first.
    wal::recover(target)?;
    let catalog = if target.exists() {
        persist::read_catalog_raw(target)?
    } else {
        Catalog::new()
    };

    let log_path = clog_path(target);
    let spills = spill_dir(target);
    let mut report = ReplayReport::default();
    let mut entries: Vec<Entry> = Vec::new();
    let len;
    if log_path.exists() {
        let bytes = std::fs::read(&log_path)?;
        if bytes.len() < CLOG_HEADER_BYTES as usize {
            // The initial header write itself was torn: an empty log.
            recreate_header(&log_path)?;
            report.discarded_torn = !bytes.is_empty();
            len = CLOG_HEADER_BYTES;
        } else if u32::from_le_bytes(bytes[..4].try_into().unwrap()) != CLOG_MAGIC
            || u16::from_le_bytes(bytes[4..6].try_into().unwrap()) != CLOG_VERSION
        {
            return Err(StorageError::Corrupt(format!(
                "{} is not a commit log (bad magic/version)",
                log_path.display()
            )));
        } else {
            let (frames, used) = wal::scan_frame_prefix(&bytes[CLOG_HEADER_BYTES as usize..]);
            let valid_len = CLOG_HEADER_BYTES + used as u64;
            report.discarded_torn = valid_len < bytes.len() as u64;
            let mut offset = CLOG_HEADER_BYTES;
            for (tag, payload) in frames {
                let frame_len = wal::FRAME_OVERHEAD_BYTES + payload.len() as u64;
                if tag != COMMIT_TAG {
                    return Err(StorageError::Corrupt(format!(
                        "unexpected frame tag {tag} in {}",
                        log_path.display()
                    )));
                }
                let record = decode_record(&payload)?;
                let mut puts = Vec::with_capacity(record.puts.len());
                let mut rec_spills = Vec::new();
                for put in record.puts {
                    let image = match put.body {
                        PutBody::Inline(img) => img,
                        PutBody::Spill { file, len, fnv } => {
                            let path = spills.join(&file);
                            let img = std::fs::read(&path).map_err(|e| {
                                StorageError::Corrupt(format!(
                                    "sealed record references missing spill {}: {e}",
                                    path.display()
                                ))
                            })?;
                            if img.len() as u64 != len || wal::fnv1a64(&[&img]) != fnv {
                                return Err(StorageError::Corrupt(format!(
                                    "spill {} does not match its sealed record",
                                    path.display()
                                )));
                            }
                            rec_spills.push(path);
                            Bytes::from(img)
                        }
                    };
                    // Decode from owned bytes: the replayed table is backed
                    // by memory, never by the (deletable) spill file.
                    puts.push(Arc::new(persist::decode_table(image)?));
                }
                let version = catalog.apply_replay(&record.drops, puts);
                entries.push(Entry {
                    version,
                    offset,
                    len: frame_len,
                    spills: rec_spills,
                });
                offset += frame_len;
                report.replayed += 1;
            }
            if report.discarded_torn {
                let f = fault::open_rw(&log_path)?;
                fault::set_len(&f, valid_len)?;
                fault::sync(&f)?;
            }
            len = valid_len;
        }
    } else {
        recreate_header(&log_path)?;
        len = CLOG_HEADER_BYTES;
    }

    // Spilled images whose record never sealed (or whose record was
    // checkpointed away before a crash could delete them) are orphans.
    let mut max_seq = 0u64;
    for e in &entries {
        for s in &e.spills {
            if let Some(seq) = parse_spill_seq(s) {
                max_seq = max_seq.max(seq);
            }
        }
    }
    if spills.is_dir() {
        let referenced: std::collections::HashSet<PathBuf> =
            entries.iter().flat_map(|e| e.spills.clone()).collect();
        for dirent in std::fs::read_dir(&spills)?.flatten() {
            let path = dirent.path();
            if !referenced.contains(&path) {
                fault::remove_file(&path)?;
                report.orphan_spills += 1;
            }
        }
    }

    let file = fault::open_rw(&log_path)?;
    let log = CommitLog {
        inner: Arc::new(Inner {
            target: target.to_path_buf(),
            log_path,
            spill_dir: spills,
            spill_threshold,
            sched: Mutex::new(Sched::default()),
            done: Condvar::new(),
            io: Mutex::new(LogIo { file, len, entries }),
            spill_seq: AtomicU64::new(max_seq + 1),
            commits: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            fsync_micros: AtomicU64::new(0),
        }),
    };
    catalog.set_durability(Some(Arc::new(log.clone())));
    Ok((catalog, log, report))
}

/// (Re)creates the log file as a bare header, durably.
fn recreate_header(log_path: &Path) -> Result<(), StorageError> {
    let mut f = fault::create(log_path)?;
    let mut header = [0u8; CLOG_HEADER_BYTES as usize];
    header[..4].copy_from_slice(&CLOG_MAGIC.to_le_bytes());
    header[4..6].copy_from_slice(&CLOG_VERSION.to_le_bytes());
    fault::write_all(&mut f, &header)?;
    fault::sync(&f)?;
    Ok(())
}

/// Inspects the commit log of `target` without opening or mutating it.
pub fn log_status(target: &Path) -> Result<LogStatus, StorageError> {
    let log_path = clog_path(target);
    let mut status = LogStatus::default();
    if let Ok(bytes) = std::fs::read(&log_path) {
        status.exists = true;
        if bytes.len() >= CLOG_HEADER_BYTES as usize
            && u32::from_le_bytes(bytes[..4].try_into().unwrap()) == CLOG_MAGIC
            && u16::from_le_bytes(bytes[4..6].try_into().unwrap()) == CLOG_VERSION
        {
            let (frames, used) = wal::scan_frame_prefix(&bytes[CLOG_HEADER_BYTES as usize..]);
            status.records = frames.len() as u64;
            status.valid_bytes = CLOG_HEADER_BYTES + used as u64;
            status.torn_bytes = bytes.len() as u64 - status.valid_bytes;
        } else {
            status.torn_bytes = bytes.len() as u64;
        }
    }
    if let Ok(dir) = std::fs::read_dir(spill_dir(target)) {
        for dirent in dir.flatten() {
            status.spill_files += 1;
            status.spill_bytes += dirent.metadata().map(|m| m.len()).unwrap_or(0);
        }
    }
    Ok(status)
}

impl CommitLog {
    /// The catalog file this log protects.
    pub fn target(&self) -> &Path {
        &self.inner.target
    }

    /// Snapshot of the log's counters.
    pub fn stats(&self) -> CommitLogStats {
        let inner = &self.inner;
        let (pending_records, log_bytes) = {
            let io = inner.io.lock();
            (io.entries.len() as u64, io.len)
        };
        CommitLogStats {
            commits: inner.commits.load(Ordering::Relaxed),
            fsyncs: inner.fsyncs.load(Ordering::Relaxed),
            max_batch: inner.max_batch.load(Ordering::Relaxed),
            fsync_micros: inner.fsync_micros.load(Ordering::Relaxed),
            pending_records,
            log_bytes,
        }
    }

    /// Checkpoints the catalog: a full durable save of `catalog` to the
    /// target file, then truncation of every log record the save covers.
    /// Returns the number of records truncated.
    ///
    /// The snapshot version is read *before* the save, so a commit racing
    /// the checkpoint can only leave its record in the log (to be replayed
    /// idempotently or truncated next time) — never be truncated without
    /// being in the save.
    pub fn checkpoint(&self, catalog: &Catalog) -> Result<u64, StorageError> {
        let inner = &self.inner;
        if let Some(msg) = &inner.sched.lock().poisoned {
            return Err(StorageError::Durability(msg.clone()));
        }
        let snap_version = catalog.version();
        persist::save_catalog(catalog, &inner.target)?;
        let res = self.truncate_covered(snap_version);
        if let Err(e) = &res {
            let mut sched = inner.sched.lock();
            sched.poisoned = Some(e.to_string());
            inner.done.notify_all();
        }
        res
    }

    /// Drops every entry with `version <= snap_version` from the log file.
    fn truncate_covered(&self, snap_version: u64) -> Result<u64, StorageError> {
        let inner = &self.inner;
        let mut io = inner.io.lock();
        let (keep, drop): (Vec<Entry>, Vec<Entry>) = std::mem::take(&mut io.entries)
            .into_iter()
            .partition(|e| e.version > snap_version);
        let truncated = drop.len() as u64;
        if truncated == 0 {
            io.entries = keep;
            return Ok(0);
        }
        if keep.is_empty() {
            // Nothing survives: truncate in place to a bare header.
            fault::set_len(&io.file, CLOG_HEADER_BYTES)?;
            fault::sync(&io.file)?;
            io.len = CLOG_HEADER_BYTES;
        } else {
            // Some records postdate the snapshot: rebuild the log as
            // header + retained records in a temp file and rename it over
            // the old one — atomic, like a rewrite save.
            use std::io::Read;
            let mut old = File::open(&inner.log_path)?;
            let mut retained = Vec::new();
            let mut new_entries = Vec::with_capacity(keep.len());
            let mut offset = CLOG_HEADER_BYTES;
            for mut e in keep {
                let mut buf = vec![0u8; e.len as usize];
                old.seek(SeekFrom::Start(e.offset))?;
                old.read_exact(&mut buf)?;
                retained.extend_from_slice(&buf);
                e.offset = offset;
                offset += e.len;
                new_entries.push(e);
            }
            let tmp = inner.log_path.with_extension("clog.tmp");
            let mut f = fault::create(&tmp)?;
            let mut header = [0u8; CLOG_HEADER_BYTES as usize];
            header[..4].copy_from_slice(&CLOG_MAGIC.to_le_bytes());
            header[4..6].copy_from_slice(&CLOG_VERSION.to_le_bytes());
            fault::write_all(&mut f, &header)?;
            fault::write_all(&mut f, &retained)?;
            fault::sync(&f)?;
            drop_file(f);
            fault::rename(&tmp, &inner.log_path)?;
            io.file = fault::open_rw(&inner.log_path)?;
            io.len = offset;
            io.entries = new_entries;
        }
        // Only after the truncated log is durable may the spills of the
        // dropped records go — the other order could lose acknowledged
        // commits to a crash between the two steps.
        for e in &drop {
            for s in &e.spills {
                fault::remove_file(s)?;
            }
        }
        Ok(truncated)
    }

    /// Serializes one staged record, spilling oversized images. Spill files
    /// are durable before this returns — a sealed record never references
    /// an unsynced spill.
    fn encode_record(&self, p: &Pending) -> Result<(Vec<u8>, Vec<PathBuf>), StorageError> {
        let inner = &self.inner;
        let mut out = Vec::new();
        out.extend_from_slice(&p.version.to_le_bytes());
        out.extend_from_slice(&(p.drops.len() as u32).to_le_bytes());
        for d in &p.drops {
            put_str(&mut out, d);
        }
        out.extend_from_slice(&(p.puts.len() as u32).to_le_bytes());
        let mut spills = Vec::new();
        for t in &p.puts {
            put_str(&mut out, t.name());
            let img = persist::encode_table(t);
            if img.len() <= inner.spill_threshold {
                out.push(0);
                out.extend_from_slice(&(img.len() as u64).to_le_bytes());
                out.extend_from_slice(&img);
            } else {
                let name = format!("s{}.spill", inner.spill_seq.fetch_add(1, Ordering::Relaxed));
                if !inner.spill_dir.is_dir() {
                    fault::create_dir_all(&inner.spill_dir)?;
                }
                let path = inner.spill_dir.join(&name);
                let mut f = fault::create(&path)?;
                fault::write_all(&mut f, &img)?;
                fault::sync(&f)?;
                out.push(1);
                put_str(&mut out, &name);
                out.extend_from_slice(&(img.len() as u64).to_le_bytes());
                out.extend_from_slice(&wal::fnv1a64(&[&img]).to_le_bytes());
                spills.push(path);
            }
        }
        Ok((out, spills))
    }

    /// Leader path: encodes and appends a whole batch of staged records,
    /// covering all of them with a single fsync.
    fn write_batch(&self, batch: &[Pending]) -> Result<(), StorageError> {
        let inner = &self.inner;
        let mut buf = Vec::new();
        let mut metas = Vec::with_capacity(batch.len());
        for p in batch {
            let (payload, spills) = self.encode_record(p)?;
            let frame = wal::encode_frame(COMMIT_TAG, &payload);
            metas.push((p.version, buf.len() as u64, frame.len() as u64, spills));
            buf.extend_from_slice(&frame);
        }
        let mut io = inner.io.lock();
        let base = io.len;
        io.file.seek(SeekFrom::Start(base))?;
        fault::write_all(&mut io.file, &buf)?;
        let t0 = Instant::now();
        fault::sync(&io.file)?;
        inner
            .fsync_micros
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        inner
            .commits
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        inner
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        for (version, off, len, spills) in metas {
            io.entries.push(Entry {
                version,
                offset: base + off,
                len,
                spills,
            });
        }
        io.len = base + buf.len() as u64;
        Ok(())
    }
}

impl DurabilitySink for CommitLog {
    fn stage(
        &self,
        version: u64,
        drops: &[String],
        puts: &[Arc<Table>],
    ) -> Result<u64, StorageError> {
        let mut sched = self.inner.sched.lock();
        if let Some(msg) = &sched.poisoned {
            return Err(StorageError::Durability(msg.clone()));
        }
        sched.next_ticket += 1;
        let ticket = sched.next_ticket;
        sched.queue.push(Pending {
            ticket,
            version,
            drops: drops.to_vec(),
            puts: puts.to_vec(),
        });
        Ok(ticket)
    }

    fn wait(&self, ticket: u64) -> Result<(), StorageError> {
        let inner = &self.inner;
        loop {
            let batch = {
                let mut sched = inner.sched.lock();
                loop {
                    if sched.durable >= ticket {
                        return Ok(());
                    }
                    if let Some(msg) = &sched.poisoned {
                        return Err(StorageError::Durability(msg.clone()));
                    }
                    if !sched.writing && !sched.queue.is_empty() {
                        sched.writing = true;
                        break std::mem::take(&mut sched.queue);
                    }
                    sched = inner.done.wait(sched).unwrap_or_else(|e| e.into_inner());
                }
            };
            // This thread is the leader for `batch` (which contains its own
            // ticket or an earlier one): write it outside the scheduler
            // lock so later committers can keep staging.
            let last = batch.last().map(|p| p.ticket).unwrap_or(0);
            let res = self.write_batch(&batch);
            let mut sched = inner.sched.lock();
            sched.writing = false;
            match res {
                Ok(()) => sched.durable = sched.durable.max(last),
                Err(e) => sched.poisoned = Some(e.to_string()),
            }
            inner.done.notify_all();
        }
    }
}

/// `len:u32 bytes` string encoding.
fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Parses the `N` out of a `sN.spill` file name.
fn parse_spill_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix('s')?.strip_suffix(".spill")?.parse().ok()
}

fn drop_file(f: File) {
    drop(f);
}

enum PutBody {
    Inline(Bytes),
    Spill { file: String, len: u64, fnv: u64 },
}

struct PutRef {
    body: PutBody,
}

struct RecordDiff {
    drops: Vec<String>,
    puts: Vec<PutRef>,
}

/// Decodes a sealed record payload. A sealed-but-undecodable record is a
/// hard corruption, never silently skipped — the frame checksum already
/// passed, so the bytes are what was written.
fn decode_record(payload: &[u8]) -> Result<RecordDiff, StorageError> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let _version = c.u64()?;
    let drops = (0..c.u32()?)
        .map(|_| c.str())
        .collect::<Result<Vec<_>, _>>()?;
    let n_puts = c.u32()?;
    let mut puts = Vec::with_capacity(n_puts.min(1 << 16) as usize);
    for _ in 0..n_puts {
        let _name = c.str()?;
        let body = match c.u8()? {
            0 => {
                let len = c.u64()? as usize;
                PutBody::Inline(Bytes::from(c.take(len)?.to_vec()))
            }
            1 => PutBody::Spill {
                file: c.str()?,
                len: c.u64()?,
                fnv: c.u64()?,
            },
            m => {
                return Err(StorageError::Corrupt(format!(
                    "unknown commit-record put mode {m}"
                )))
            }
        };
        puts.push(PutRef { body });
    }
    if c.at != payload.len() {
        return Err(StorageError::Corrupt(
            "trailing bytes after commit record".into(),
        ));
    }
    Ok(RecordDiff { drops, puts })
}

/// Bounds-checked little-endian reader over a record payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StorageError::Corrupt("truncated commit record".into()))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| StorageError::Corrupt("non-UTF-8 name in commit record".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cods-clog-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tiny(name: &str, rows: i64) -> Table {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "x" } else { "y" }),
                ]
            })
            .collect();
        Table::from_rows(name, schema, &data).unwrap()
    }

    fn commit_put(cat: &Catalog, t: Table) {
        let (base, _) = cat.begin_evolution();
        cat.commit_evolution(base, &[], vec![Arc::new(t)]).unwrap();
    }

    #[test]
    fn acked_commits_survive_reopen_and_checkpoint_truncates() {
        let path = scratch("a.catalog");
        let (cat, log, replay) = open_durable(&path).unwrap();
        assert_eq!(replay, ReplayReport::default());
        commit_put(&cat, tiny("r", 10));
        commit_put(&cat, tiny("s", 4));
        let stats = log.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.pending_records, 2);
        assert!(stats.fsyncs >= 1);

        // Reopen (simulated restart before any checkpoint): both commits
        // replay from the log alone.
        let (cat2, log2, replay2) = open_durable(&path).unwrap();
        assert_eq!(replay2.replayed, 2);
        assert!(!replay2.discarded_torn);
        assert_eq!(cat2.table_names(), vec!["r", "s"]);
        assert_eq!(
            persist::encode_table(&cat2.get("r").unwrap()).as_slice(),
            persist::encode_table(&cat.get("r").unwrap()).as_slice()
        );

        // Checkpoint: the save covers both records; the log empties.
        assert_eq!(log2.checkpoint(&cat2).unwrap(), 2);
        assert_eq!(log2.stats().pending_records, 0);
        let (cat3, _log3, replay3) = open_durable(&path).unwrap();
        assert_eq!(replay3.replayed, 0);
        assert_eq!(cat3.table_names(), vec!["r", "s"]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = scratch("b.catalog");
        let (cat, _log, _r) = open_durable(&path).unwrap();
        commit_put(&cat, tiny("r", 8));
        commit_put(&cat, tiny("s", 8));
        // Tear the last record mid-frame.
        let log_path = clog_path(&path);
        let bytes = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &bytes[..bytes.len() - 7]).unwrap();

        let (cat2, _log2, replay) = open_durable(&path).unwrap();
        assert_eq!(replay.replayed, 1);
        assert!(replay.discarded_torn);
        assert_eq!(cat2.table_names(), vec!["r"]);
        // The tear was physically truncated: a further reopen is clean.
        let (_cat3, _log3, replay3) = open_durable(&path).unwrap();
        assert_eq!(replay3.replayed, 1);
        assert!(!replay3.discarded_torn);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn large_images_spill_and_replay_verified() {
        let path = scratch("c.catalog");
        let (cat, log, _r) = open_durable_with(&path, 64).unwrap();
        commit_put(&cat, tiny("big", 500));
        let status = log_status(&path).unwrap();
        assert_eq!(status.spill_files, 1, "image above threshold must spill");
        assert!(status.spill_bytes > 64);

        let (cat2, _log2, replay) = open_durable_with(&path, 64).unwrap();
        assert_eq!(replay.replayed, 1);
        assert_eq!(
            cat2.get("big").unwrap().tuple_multiset(),
            cat.get("big").unwrap().tuple_multiset()
        );

        // Checkpoint removes the spill with its record.
        let (cat3, log3, _r) = open_durable_with(&path, 64).unwrap();
        log3.checkpoint(&cat3).unwrap();
        assert_eq!(log_status(&path).unwrap().spill_files, 0);
        drop(log);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupted_spill_is_typed_corrupt() {
        let path = scratch("d.catalog");
        let (cat, _log, _r) = open_durable_with(&path, 64).unwrap();
        commit_put(&cat, tiny("big", 500));
        let spill = std::fs::read_dir(spill_dir(&path))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&spill).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&spill, &bytes).unwrap();
        assert!(matches!(
            open_durable_with(&path, 64),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn orphan_spills_are_swept_at_open() {
        let path = scratch("e.catalog");
        let (cat, _log, _r) = open_durable(&path).unwrap();
        commit_put(&cat, tiny("r", 4));
        let dir = spill_dir(&path);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("s999.spill"), b"never sealed").unwrap();
        let (_cat2, _log2, replay) = open_durable(&path).unwrap();
        assert_eq!(replay.orphan_spills, 1);
        assert!(!dir.join("s999.spill").exists());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn commit_after_failed_log_is_refused() {
        let path = scratch("f.catalog");
        let (cat, log, _r) = open_durable(&path).unwrap();
        commit_put(&cat, tiny("r", 4));
        // Poison the log the way a crashed append would.
        log.inner.sched.lock().poisoned = Some("injected".into());
        let (base, _) = cat.begin_evolution();
        let err = cat.commit_evolution(base, &[], vec![Arc::new(tiny("s", 4))]);
        assert!(matches!(err, Err(StorageError::Durability(_))));
        // The refused commit never entered the catalog: stage vetoed it.
        assert_eq!(cat.table_names(), vec!["r"]);
        assert!(log.checkpoint(&cat).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn rename_and_drop_survive_replay() {
        let path = scratch("g.catalog");
        let (cat, _log, _r) = open_durable(&path).unwrap();
        commit_put(&cat, tiny("a", 4));
        commit_put(&cat, tiny("b", 4));
        // A commit that renames a → c (drop a, put c) and drops b.
        let (base, snap) = cat.begin_evolution();
        let renamed = snap.get("a").unwrap().renamed("c");
        cat.commit_evolution(
            base,
            &["a".to_string(), "b".to_string()],
            vec![Arc::new(renamed)],
        )
        .unwrap();
        assert_eq!(cat.table_names(), vec!["c"]);
        let (cat2, _log2, replay) = open_durable(&path).unwrap();
        assert_eq!(replay.replayed, 3);
        assert_eq!(cat2.table_names(), vec!["c"]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
