//! Bounded retry with exponential backoff and deterministic jitter, for
//! optimistic catalog commits.
//!
//! The catalog's staged-commit protocol is optimistic: a commit whose base
//! version is stale fails with [`StorageError::Conflict`] and the caller
//! must redo its work against the fresh catalog. Under a serving workload
//! many writers race, so a raw conflict error is the wrong surface —
//! instead, [`RetryPolicy::run`] re-runs the whole
//! snapshot-work-commit closure with exponentially growing, jittered
//! pauses between attempts, bounding both the number of attempts and the
//! per-attempt delay.
//!
//! The jitter is **deterministic**: it is derived from the policy's seed
//! and the attempt number with the same FNV-1a hash the WAL uses for
//! checksums, never from a clock or RNG. Two policies with equal seeds
//! produce byte-equal delay schedules, which keeps contention tests and
//! distributed simulations reproducible while still decorrelating
//! real concurrent retriers (every connection seeds with its own id).

use crate::error::StorageError;
use std::time::Duration;

/// Errors that may succeed when the whole attempt is redone from a fresh
/// catalog snapshot.
pub trait Retryable {
    /// `true` when the error is a transient optimistic-concurrency loss
    /// (not a validation or data error).
    fn should_retry(&self) -> bool;
}

impl Retryable for StorageError {
    fn should_retry(&self) -> bool {
        matches!(self, StorageError::Conflict(_))
    }
}

/// FNV-1a 64-bit over the seed and attempt number — the deterministic
/// jitter source.
fn fnv1a64(seed: u64, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed
        .to_le_bytes()
        .iter()
        .chain(attempt.to_le_bytes().iter())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Backoff schedule for retrying conflicting optimistic commits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). `1` disables retry.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles every further retry.
    pub base_delay: Duration,
    /// Upper bound on the un-jittered delay.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter. Concurrent retriers should use
    /// distinct seeds (e.g. a connection id) so their schedules decorrelate.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Eight attempts, 500 µs base, 50 ms cap — tuned so a burst of
    /// conflicting evolution plans on one catalog drains without any
    /// client observing a raw conflict, while a genuinely livelocked
    /// writer still fails within ~0.2 s.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy with the given shape and the default seed.
    pub fn new(max_attempts: u32, base_delay: Duration, max_delay: Duration) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay,
            max_delay,
            ..RetryPolicy::default()
        }
    }

    /// Replaces the jitter seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// A policy that retries up to `max_attempts` times with **zero**
    /// delay — for tests that want bounded retry semantics without wall
    /// clock time.
    pub fn no_backoff(max_attempts: u32) -> RetryPolicy {
        RetryPolicy::new(max_attempts, Duration::ZERO, Duration::ZERO)
    }

    /// The jittered delay slept after losing attempt `attempt` (0-based):
    /// `min(max_delay, base_delay · 2^attempt)` scaled by a deterministic
    /// factor in `[½, 1)` drawn from the seed and attempt number.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let full = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        // factor = (1024 + jitter) / 2048 with jitter ∈ [0, 1024).
        let jitter = fnv1a64(self.jitter_seed, attempt) % 1024;
        let nanos = full.as_nanos().saturating_mul(1024 + jitter as u128) / 2048;
        Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }

    /// Runs `attempt` until it succeeds, fails non-transiently, or the
    /// attempt budget is spent; sleeps [`backoff`](RetryPolicy::backoff)
    /// between transient failures. The closure receives the 0-based
    /// attempt number and must redo its work from a **fresh** catalog
    /// snapshot each call — retrying a stale staged commit would conflict
    /// forever.
    pub fn run<T, E: Retryable>(
        &self,
        mut attempt: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        for n in 0..attempts {
            match attempt(n) {
                Ok(v) => return Ok(v),
                Err(e) if e.should_retry() && n + 1 < attempts => {
                    let d = self.backoff(n);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the last attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_sensitive() {
        let p = RetryPolicy::new(8, Duration::from_millis(1), Duration::from_millis(100));
        let again = p.clone();
        let mut distinct_fractions = std::collections::HashSet::new();
        for attempt in 0..8 {
            let d = p.backoff(attempt);
            // Same policy, same attempt → byte-equal delay.
            assert_eq!(d, again.backoff(attempt), "attempt {attempt}");
            // Bounds: [full/2, full) of the un-jittered exponential value.
            let full = Duration::from_millis(1 << attempt).min(Duration::from_millis(100));
            assert!(d >= full / 2, "attempt {attempt}: {d:?} < {:?}", full / 2);
            assert!(d < full, "attempt {attempt}: {d:?} >= {full:?}");
            distinct_fractions.insert(d.as_nanos() * 2048 / full.as_nanos());
        }
        // The jitter actually varies across attempts…
        assert!(distinct_fractions.len() > 1, "jitter is constant");
        // …and across seeds.
        let reseeded = p.clone().with_seed(0xDEAD_BEEF);
        assert!((0..8).any(|a| reseeded.backoff(a) != p.backoff(a)));
    }

    #[test]
    fn backoff_caps_at_max_delay() {
        let p = RetryPolicy::new(64, Duration::from_millis(1), Duration::from_millis(8));
        for attempt in [10, 31, 32, 63] {
            assert!(p.backoff(attempt) < Duration::from_millis(8));
            assert!(p.backoff(attempt) >= Duration::from_millis(4));
        }
    }

    #[test]
    fn run_retries_conflicts_up_to_the_budget() {
        let p = RetryPolicy::no_backoff(4);
        // Succeeds on the third attempt.
        let mut calls = 0;
        let out: Result<u32, StorageError> = p.run(|n| {
            calls += 1;
            if n < 2 {
                Err(StorageError::Conflict(format!("attempt {n}")))
            } else {
                Ok(n)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);

        // Conflicting forever: budget exhausted, last conflict surfaces.
        let mut calls = 0;
        let out: Result<(), StorageError> = p.run(|n| {
            calls += 1;
            Err(StorageError::Conflict(format!("attempt {n}")))
        });
        assert!(matches!(out, Err(StorageError::Conflict(ref m)) if m == "attempt 3"));
        assert_eq!(calls, 4);

        // Non-transient errors are never retried.
        let mut calls = 0;
        let out: Result<(), StorageError> = p.run(|_| {
            calls += 1;
            Err(StorageError::UnknownTable("t".into()))
        });
        assert!(matches!(out, Err(StorageError::UnknownTable(_))));
        assert_eq!(calls, 1);
    }
}
