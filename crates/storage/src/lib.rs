//! # cods-storage
//!
//! The column-oriented storage engine underneath the CODS reproduction
//! (Liu et al., VLDB 2010). Every column is a column-global dictionary plus
//! **one** directory of row-range segments, each independently bitmap or
//! run-length encoded ([`SegmentEnc`]) — the `v × r` bitmap matrix of
//! Section 2.2 of the paper, sharded by row range, with per-*segment*
//! layout choice layered on top. Tables share immutable columns by
//! reference, and columns share immutable segments by reference, which is
//! what makes data-level evolution able to "reuse unchanged columns" (and
//! unchanged row ranges) for free.
//!
//! * [`Value`] / [`ValueType`] — the typed cell values.
//! * [`Schema`] — named, typed columns plus an optional candidate key.
//! * [`EncodedColumn`] / [`ColumnBuilder`] — the unified segmented column:
//!   one dictionary, one directory of [`SegmentEnc`] entries (bitmap | RLE
//!   per segment), per-segment zone maps and encoding pins, and every
//!   data-level primitive (filter, gather, concat, slice, compaction)
//!   dispatched per segment on its encoding.
//! * [`Segment`] / [`RleSegment`] — the two row-range shard encodings;
//!   [`EncodedAssembler`] splices per-segment operator outputs back into a
//!   directory, sealing each output segment in its pieces' encoding.
//! * [`Table`] — schema + `Arc`-shared columns.
//! * [`Catalog`] — thread-safe table namespace.
//! * [`RowIdCursor`] — streaming `row → value id` scans over compressed data.
//! * [`SegSlot`] / [`SegmentStore`] — the demand-paged directory entry and
//!   the process-wide, byte-budgeted buffer cache behind it (see
//!   [`segment_cache`]).
//! * [`load`] — delimited-text ingest; [`persist`] — versioned binary table
//!   files (v6 keeps segment payloads on disk behind a footer index for
//!   lazy opens; v1–v5 files are still read).
//! * [`wal`] — the rollback journal that makes every save crash-safe
//!   (journal-then-overwrite appends, temp+rename rewrites, recovery on
//!   open); [`commitlog`] — the SMO-granularity commit log that makes every
//!   *evolution commit* crash-safe (group-commit appends, checkpoint +
//!   replay recovery via [`open_durable`]); [`vacuum`] — explicit and
//!   threshold-triggered background heap compaction; [`fault`] — the
//!   crash-point injection layer the durability suite sweeps.
//!
//! ```
//! use cods_storage::{Schema, Table, Value, ValueType};
//!
//! let schema = Schema::build(
//!     &[("employee", ValueType::Str), ("skill", ValueType::Str)],
//!     &[],
//! ).unwrap();
//! let t = Table::from_rows("S", schema, &[
//!     vec![Value::str("Jones"), Value::str("Typing")],
//!     vec![Value::str("Jones"), Value::str("Shorthand")],
//! ]).unwrap();
//! assert_eq!(t.column_by_name("employee").unwrap().distinct_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod commitlog;
pub mod cursor;
pub mod dictionary;
pub mod encoded;
pub mod error;
pub mod fault;
pub mod load;
pub mod persist;
pub mod retry;
pub mod rle_segment;
pub mod schema;
pub mod segment;
pub mod stats;
pub mod store;
pub mod table;
pub mod vacuum;
pub mod value;
pub mod wal;

pub use catalog::{Catalog, CatalogSnapshot, CommitReceipt, DurabilitySink};
pub use commitlog::{
    clog_path, log_status, open_durable, open_durable_with, CommitLog, CommitLogStats, LogStatus,
    ReplayReport,
};
pub use cursor::RowIdCursor;
pub use dictionary::{Dictionary, ValueOrder};
pub use encoded::{
    choose_encoding_from_stats, ColumnBuilder, EncodedAssembler, EncodedChunk, EncodedColumn,
    Encoding, SegmentEnc,
};
pub use error::StorageError;
pub use load::{load_file, load_str, LoadOptions};
pub use retry::{RetryPolicy, Retryable};
pub use rle_segment::RleSegment;
pub use schema::{ColumnDef, Schema};
pub use segment::{
    compaction_plan, needs_compaction, CompactionGroup, Segment, SegmentChunk, Zone,
    DEFAULT_SEGMENT_ROWS,
};
pub use stats::{ColumnStats, TableStats};
pub use store::{segment_cache, CacheStats, SegSlot, SegmentStore};
pub use table::Table;
pub use vacuum::{
    heap_stats, set_auto_vacuum, vacuum_catalog, vacuum_file, vacuum_table, wait_for_auto_vacuum,
    AutoVacuum, HeapStats, VacuumReport,
};
pub use value::{OrderedF64, Value, ValueType};
pub use wal::{journal_status, JournalStatus, JournalWriter, Recovery};
