//! # cods-storage
//!
//! The column-oriented storage engine underneath the CODS reproduction
//! (Liu et al., VLDB 2010). Every column is a column-global dictionary plus
//! a directory of row-range [`Segment`]s, each holding one WAH-compressed
//! bitmap per value *present in its range* — the `v × r` bitmap matrix of
//! Section 2.2 of the paper, sharded by row range. Tables share immutable
//! columns by reference, and columns share immutable segments by reference,
//! which is what makes data-level evolution able to "reuse unchanged
//! columns" (and unchanged row ranges) for free.
//!
//! * [`Value`] / [`ValueType`] — the typed cell values.
//! * [`Schema`] — named, typed columns plus an optional candidate key.
//! * [`Column`] / [`ColumnBuilder`] — segmented bitmap-encoded columns with
//!   data-level primitives (filter, concat, slice) lifted from
//!   `cods-bitmap`.
//! * [`RleColumn`] — the run-length encoding for clustered columns, sharing
//!   the same dictionary + segment-directory shape.
//! * [`EncodedColumn`] — the encoding-polymorphic column tables hold; every
//!   data-level primitive preserves the encoding, and
//!   [`compaction_plan`]-driven re-chunking keeps directories healthy after
//!   long `concat`/`slice` chains.
//! * [`Segment`] / [`SegmentAssembler`] — the row-range shards and the
//!   splicer that re-chunks per-segment operator outputs.
//! * [`Table`] — schema + `Arc`-shared columns.
//! * [`Catalog`] — thread-safe table namespace.
//! * [`RowIdCursor`] — streaming `row → value id` scans over compressed data.
//! * [`load`] — delimited-text ingest; [`persist`] — versioned binary table
//!   files (v3 carries per-encoding segment directories; v2/v1 files are
//!   still read).
//!
//! ```
//! use cods_storage::{Schema, Table, Value, ValueType};
//!
//! let schema = Schema::build(
//!     &[("employee", ValueType::Str), ("skill", ValueType::Str)],
//!     &[],
//! ).unwrap();
//! let t = Table::from_rows("S", schema, &[
//!     vec![Value::str("Jones"), Value::str("Typing")],
//!     vec![Value::str("Jones"), Value::str("Shorthand")],
//! ]).unwrap();
//! assert_eq!(t.column_by_name("employee").unwrap().distinct_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod column;
pub mod cursor;
pub mod dictionary;
pub mod encoded;
pub mod error;
pub mod load;
pub mod persist;
pub mod rle_column;
pub mod schema;
pub mod segment;
pub mod stats;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use column::{Column, ColumnBuilder};
pub use cursor::RowIdCursor;
pub use dictionary::{Dictionary, ValueOrder};
pub use encoded::{EncodedAssembler, EncodedChunk, EncodedColumn, Encoding};
pub use error::StorageError;
pub use load::{load_file, load_str, LoadOptions};
pub use rle_column::{RleAssembler, RleColumn, RleSegment};
pub use schema::{ColumnDef, Schema};
pub use segment::{
    compaction_plan, needs_compaction, CompactionGroup, Segment, SegmentAssembler, SegmentChunk,
    Zone, DEFAULT_SEGMENT_ROWS,
};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
pub use value::{OrderedF64, Value, ValueType};
