//! Run-length-encoded columns — the alternative encoding the paper notes is
//! "sometimes used for special columns, such as run length encoding for
//! sorted columns" (§2.2) and lists as future work. This reproduction
//! implements it: a clustered/sorted column can be stored as a dictionary
//! plus an [`RleSeq`] of value ids, and the data-level evolution primitives
//! (gather, slice, concat) carry over, so an RLE column can take part in
//! evolution without re-encoding.

use crate::column::Column;
use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::value::{Value, ValueType};
use cods_bitmap::{RleSeq, ValueStreamBuilder};

/// A run-length encoded column: dictionary + RLE sequence of value ids.
#[derive(Clone, Debug, PartialEq)]
pub struct RleColumn {
    ty: ValueType,
    dict: Dictionary,
    seq: RleSeq,
}

impl RleColumn {
    /// Builds from a value slice.
    pub fn from_values(ty: ValueType, values: &[Value]) -> Result<RleColumn, StorageError> {
        let mut dict = Dictionary::new();
        let mut seq = RleSeq::new();
        for v in values {
            if !v.conforms_to(ty) {
                return Err(StorageError::RowMismatch(format!(
                    "value {v} does not conform to column type {ty}"
                )));
            }
            seq.push(dict.intern(v.clone()));
        }
        Ok(RleColumn { ty, dict, seq })
    }

    /// Re-encodes a bitmap column as RLE (one pass over its value ids).
    pub fn from_column(col: &Column) -> RleColumn {
        let mut seq = RleSeq::new();
        for id in col.value_ids() {
            seq.push(id);
        }
        RleColumn {
            ty: col.ty(),
            dict: col.dict().clone(),
            seq,
        }
    }

    /// Re-encodes as a bitmap column. Runs become bitmap fill runs, so the
    /// conversion cost is O(runs), not O(rows).
    pub fn to_column(&self) -> Result<Column, StorageError> {
        let mut builder = ValueStreamBuilder::new(self.dict.len());
        for (id, _, len) in self.seq.iter_runs() {
            builder.push_rows(id as usize, len);
        }
        let bitmaps = builder.finish_with_len(self.rows());
        Column::from_dict_bitmaps_compacting(self.ty, self.dict.clone(), bitmaps, self.rows())
    }

    /// Column type.
    pub fn ty(&self) -> ValueType {
        self.ty
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.seq.len()
    }

    /// Number of distinct values.
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// Number of runs (the compressed size driver).
    pub fn num_runs(&self) -> usize {
        self.seq.num_runs()
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The value at `row` (O(runs)).
    pub fn value_at(&self, row: u64) -> &Value {
        self.dict.value(self.seq.get(row))
    }

    /// Decodes all values.
    pub fn values(&self) -> Vec<Value> {
        self.seq
            .iter()
            .map(|id| self.dict.value(id).clone())
            .collect()
    }

    /// Data-level gather: keep the rows at `positions` (non-decreasing).
    /// Runs of the input become runs of the output.
    pub fn filter_positions(&self, positions: &[u64]) -> RleColumn {
        RleColumn {
            ty: self.ty,
            dict: self.dict.clone(),
            seq: self.seq.filter_positions(positions),
        }
    }

    /// Extracts rows `[start, end)`.
    pub fn slice(&self, start: u64, end: u64) -> RleColumn {
        RleColumn {
            ty: self.ty,
            dict: self.dict.clone(),
            seq: self.seq.slice(start, end),
        }
    }

    /// Concatenates two RLE columns of the same type (dictionaries merged).
    pub fn concat(&self, other: &RleColumn) -> Result<RleColumn, StorageError> {
        if self.ty != other.ty {
            return Err(StorageError::RowMismatch(format!(
                "cannot concat RLE column of type {} with {}",
                self.ty, other.ty
            )));
        }
        let (dict, map) = self.dict.merge(&other.dict);
        let mut seq = self.seq.clone();
        for (id, _, len) in other.seq.iter_runs() {
            seq.append_run(map[id as usize], len);
        }
        Ok(RleColumn {
            ty: self.ty,
            dict,
            seq,
        })
    }

    /// Compressed bytes of the run sequence (excluding dictionary).
    pub fn seq_bytes(&self) -> usize {
        self.seq.size_bytes()
    }

    /// Returns `true` if the ids are sorted (fully clustered column).
    pub fn is_sorted(&self) -> bool {
        self.seq.is_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_values(n: u64, distinct: u64) -> Vec<Value> {
        (0..n)
            .map(|i| Value::int((i * distinct / n) as i64))
            .collect()
    }

    #[test]
    fn round_trip_with_bitmap_column() {
        let vals = clustered_values(1_000, 10);
        let bitmap_col = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap_col);
        assert_eq!(rle.rows(), 1_000);
        assert_eq!(rle.num_runs(), 10);
        assert!(rle.is_sorted());
        let back = rle.to_column().unwrap();
        assert_eq!(back, bitmap_col);
        assert_eq!(rle.values(), vals);
    }

    #[test]
    fn rle_beats_bitmaps_on_clustered_data() {
        let vals = clustered_values(100_000, 50);
        let bitmap_col = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap_col);
        assert!(
            rle.seq_bytes() < bitmap_col.bitmap_bytes(),
            "rle {} vs wah {}",
            rle.seq_bytes(),
            bitmap_col.bitmap_bytes()
        );
    }

    #[test]
    fn filter_and_slice_match_bitmap_column() {
        let vals = clustered_values(500, 7);
        let bitmap_col = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap_col);
        let positions: Vec<u64> = (0..500).step_by(3).collect();
        assert_eq!(
            rle.filter_positions(&positions).values(),
            bitmap_col.filter_positions(&positions).values()
        );
        assert_eq!(
            rle.slice(100, 200).values(),
            bitmap_col.slice(100, 200).values()
        );
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = RleColumn::from_values(
            ValueType::Str,
            &[Value::str("x"), Value::str("x"), Value::str("y")],
        )
        .unwrap();
        let b =
            RleColumn::from_values(ValueType::Str, &[Value::str("y"), Value::str("z")]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.rows(), 5);
        assert_eq!(
            c.values(),
            vec![
                Value::str("x"),
                Value::str("x"),
                Value::str("y"),
                Value::str("y"),
                Value::str("z")
            ]
        );
        // x,x / y,y / z — runs merge across the boundary.
        assert_eq!(c.num_runs(), 3);
    }

    #[test]
    fn type_checks() {
        assert!(RleColumn::from_values(ValueType::Int, &[Value::str("x")]).is_err());
        let a = RleColumn::from_values(ValueType::Int, &[Value::int(1)]).unwrap();
        let b = RleColumn::from_values(ValueType::Str, &[Value::str("x")]).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn value_at_decodes() {
        let rle = RleColumn::from_values(
            ValueType::Int,
            &[Value::int(5), Value::int(5), Value::int(9)],
        )
        .unwrap();
        assert_eq!(rle.value_at(0), &Value::int(5));
        assert_eq!(rle.value_at(2), &Value::int(9));
    }
}
