//! Run-length-encoded columns — the alternative encoding the paper notes is
//! "sometimes used for special columns, such as run length encoding for
//! sorted columns" (§2.2) and lists as future work.
//!
//! An [`RleColumn`] mirrors the bitmap [`Column`] structurally: one
//! column-global [`Dictionary`] plus a directory of immutable, `Arc`-shared
//! row-range [`RleSegment`]s (nominally
//! [`DEFAULT_SEGMENT_ROWS`](crate::segment::DEFAULT_SEGMENT_ROWS) rows).
//! Each segment stores the run sequence of its own row range over *global*
//! value ids, along with the same per-segment statistics the bitmap
//! encoding caches — present ids and per-id row counts — so scans prune
//! whole segments and evolution operators fan out one task per
//! (column × segment) regardless of encoding. `concat`/`slice` reuse
//! untouched segments by reference, and the shared
//! [`compaction_plan`](crate::segment::compaction_plan) re-chunks
//! fragmented directories exactly like the bitmap side.

use crate::column::Column;
use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::segment::{Segment, Zone};
use crate::value::{Value, ValueType};
use cods_bitmap::{RleSeq, Wah};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// One immutable row-range segment of an [`RleColumn`]: the run sequence of
/// the segment's rows over global value ids, plus cached statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RleSegment {
    seq: RleSeq,
    /// Ascending global value ids present in this segment.
    ids: Vec<u32>,
    /// Rows carrying each present id (parallel to `ids`).
    ones: Vec<u64>,
}

impl RleSegment {
    /// Builds a segment from a run sequence, deriving the stats.
    pub fn new(seq: RleSeq) -> RleSegment {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for &(id, n) in seq.runs() {
            *counts.entry(id).or_insert(0) += n;
        }
        let mut pairs: Vec<(u32, u64)> = counts.into_iter().collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let (ids, ones) = pairs.into_iter().unzip();
        RleSegment { seq, ids, ones }
    }

    /// Number of rows covered.
    #[inline]
    pub fn rows(&self) -> u64 {
        self.seq.len()
    }

    /// The run sequence (segment-local offsets, global value ids).
    #[inline]
    pub fn seq(&self) -> &RleSeq {
        &self.seq
    }

    /// Number of runs (the compressed size driver).
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.seq.num_runs()
    }

    /// The ascending value ids present in this segment.
    #[inline]
    pub fn present_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of distinct values present.
    #[inline]
    pub fn distinct_count(&self) -> usize {
        self.ids.len()
    }

    /// Cached per-present-id row counts, parallel to
    /// [`RleSegment::present_ids`].
    #[inline]
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// Returns `true` when `id` occurs in this segment (O(log present)).
    #[inline]
    pub fn contains_id(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of rows carrying `id` (0 when absent; O(log present)).
    pub fn count_for(&self, id: u32) -> u64 {
        self.ids.binary_search(&id).map_or(0, |i| self.ones[i])
    }

    /// Compressed bytes of the run sequence.
    #[inline]
    pub fn compressed_bytes(&self) -> usize {
        self.seq.size_bytes()
    }

    /// Splices consecutive segments into one, combining cached statistics
    /// from the parts instead of recounting them: run sequences are
    /// concatenated and per-id ones merged by id — the compaction merge
    /// path never rescans runs to rebuild stats.
    pub fn splice(parts: &[&RleSegment]) -> RleSegment {
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let mut seq = RleSeq::new();
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for part in parts {
            seq.append_seq(&part.seq);
            for (&id, &ones) in part.ids.iter().zip(&part.ones) {
                *counts.entry(id).or_insert(0) += ones;
            }
        }
        let mut pairs: Vec<(u32, u64)> = counts.into_iter().collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let (ids, ones) = pairs.into_iter().unzip();
        RleSegment { seq, ids, ones }
    }

    /// Rewrites the segment under an id translation (`map[old] = Some(new)`;
    /// `None` is only valid for ids not present). O(runs).
    pub(crate) fn remap(&self, map: &[Option<u32>]) -> RleSegment {
        let mut seq = RleSeq::new();
        for &(id, n) in self.seq.runs() {
            let new = map[id as usize].expect("remap drops a present value");
            seq.append_run(new, n);
        }
        RleSegment::new(seq)
    }

    /// Splices the bitmap of value `id` over this segment onto `out`
    /// (appends `rows()` bits). O(runs).
    fn append_value_bitmap(&self, id: u32, out: &mut Wah) {
        if !self.contains_id(id) {
            out.append_run(false, self.rows());
            return;
        }
        for &(v, n) in self.seq.runs() {
            out.append_run(v == id, n);
        }
    }

    /// Re-encodes this segment as a bitmap [`Segment`] covering the same
    /// rows. O(runs) per present value.
    pub fn to_bitmap_segment(&self) -> Segment {
        let mut acc: HashMap<u32, (Wah, u64)> = HashMap::with_capacity(self.ids.len());
        for (id, start, len) in self.seq.iter_runs() {
            let (bm, emitted) = acc.entry(id).or_insert_with(|| (Wah::new(), 0));
            if *emitted < start {
                bm.append_run(false, start - *emitted);
            }
            bm.append_run(true, len);
            *emitted = start + len;
        }
        let rows = self.rows();
        let pairs: Vec<(u32, Wah)> = acc
            .into_iter()
            .map(|(id, (mut bm, emitted))| {
                if emitted < rows {
                    bm.append_run(false, rows - emitted);
                }
                (id, bm)
            })
            .collect();
        Segment::new(rows, pairs)
    }

    /// Validates the per-segment invariants: non-empty, sorted unique
    /// present ids, and stats matching the run sequence.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.ids.len() != self.ones.len() {
            return Err("ids/ones length mismatch".into());
        }
        if self.ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err("present ids not strictly ascending".into());
        }
        let fresh = RleSegment::new(self.seq.clone());
        if fresh.ids != self.ids || fresh.ones != self.ones {
            return Err("stale present-id stats".into());
        }
        if self.seq.runs().iter().any(|&(_, n)| n == 0) {
            return Err("zero-length run".into());
        }
        Ok(())
    }
}

/// Splices run-sequence pieces into [`RleSegment`]s of a fixed target row
/// count (or an explicit piece-size schedule, for compaction).
pub struct RleAssembler {
    target: u64,
    schedule: Option<std::collections::VecDeque<u64>>,
    cur: RleSeq,
    segments: Vec<Arc<RleSegment>>,
}

impl RleAssembler {
    /// An assembler producing segments of `target` rows (last may be short).
    pub fn new(target: u64) -> RleAssembler {
        assert!(target > 0, "segment size must be positive");
        RleAssembler {
            target,
            schedule: None,
            cur: RleSeq::new(),
            segments: Vec::new(),
        }
    }

    /// An assembler producing segments of the given explicit sizes, in
    /// order (the compaction regrouping path).
    pub fn with_piece_sizes(pieces: Vec<u64>) -> RleAssembler {
        assert!(
            pieces.iter().all(|&p| p > 0),
            "piece sizes must be positive"
        );
        let mut schedule: std::collections::VecDeque<u64> = pieces.into();
        let target = schedule.pop_front().unwrap_or(u64::MAX);
        RleAssembler {
            target,
            schedule: Some(schedule),
            cur: RleSeq::new(),
            segments: Vec::new(),
        }
    }

    fn seal(&mut self) {
        if self.cur.is_empty() {
            return;
        }
        let seq = std::mem::take(&mut self.cur);
        self.segments.push(Arc::new(RleSegment::new(seq)));
        if let Some(schedule) = &mut self.schedule {
            self.target = schedule.pop_front().unwrap_or(u64::MAX);
        }
    }

    /// Appends a run piece, splitting it across segment boundaries.
    pub fn push_run(&mut self, id: u32, mut count: u64) {
        while count > 0 {
            let room = self.target - self.cur.len();
            let take = room.min(count);
            self.cur.append_run(id, take);
            count -= take;
            if self.cur.len() == self.target {
                self.seal();
            }
        }
    }

    /// Appends every run of `seq`.
    pub fn push_seq(&mut self, seq: &RleSeq) {
        for &(id, n) in seq.runs() {
            self.push_run(id, n);
        }
    }

    /// Seals the trailing partial segment and returns the directory.
    pub fn finish(mut self) -> Vec<Arc<RleSegment>> {
        self.seal();
        self.segments
    }
}

/// A segmented run-length encoded column: column-global dictionary plus a
/// directory of `Arc`-shared row-range run segments.
#[derive(Clone, Debug, PartialEq)]
pub struct RleColumn {
    ty: ValueType,
    dict: Dictionary,
    segments: Vec<Arc<RleSegment>>,
    /// Start row of each segment (parallel to `segments`).
    starts: Vec<u64>,
    /// Per-segment zone maps (parallel to `segments`): min/max present
    /// value in value order, for range-predicate pruning.
    zones: Vec<Zone>,
    /// Nominal rows per segment for newly produced data.
    segment_rows: u64,
    rows: u64,
    /// `true` when the encoding was pinned by an explicit recode.
    pinned: bool,
}

fn starts_of(segments: &[Arc<RleSegment>]) -> (Vec<u64>, u64) {
    let mut starts = Vec::with_capacity(segments.len());
    let mut total = 0u64;
    for s in segments {
        starts.push(total);
        total += s.rows();
    }
    (starts, total)
}

/// Derives every segment's zone from its present-id stats via the
/// dictionary's value order (the RLE twin of
/// [`derive_zones`](crate::column) — run data is never touched).
fn derive_zones(dict: &Dictionary, segments: &[Arc<RleSegment>]) -> Vec<Zone> {
    if segments.is_empty() {
        return Vec::new();
    }
    let ranks = dict.value_order().ranks();
    segments
        .iter()
        .map(|s| Zone::of_ids(s.present_ids(), ranks))
        .collect()
}

impl RleColumn {
    /// Builds from a value slice with the default segment size.
    pub fn from_values(ty: ValueType, values: &[Value]) -> Result<RleColumn, StorageError> {
        Self::from_values_with(ty, values, crate::segment::DEFAULT_SEGMENT_ROWS)
    }

    /// Builds from a value slice with an explicit segment size.
    pub fn from_values_with(
        ty: ValueType,
        values: &[Value],
        segment_rows: u64,
    ) -> Result<RleColumn, StorageError> {
        assert!(segment_rows > 0, "segment size must be positive");
        let mut dict = Dictionary::new();
        let mut asm = RleAssembler::new(segment_rows);
        for v in values {
            if !v.conforms_to(ty) {
                return Err(StorageError::RowMismatch(format!(
                    "value {v} does not conform to column type {ty}"
                )));
            }
            asm.push_run(dict.intern(v.clone()), 1);
        }
        Ok(Self::from_segments(ty, dict, asm.finish(), segment_rows))
    }

    /// Re-encodes a bitmap column as RLE, segment by segment: boundaries
    /// and the dictionary carry over unchanged. O(rows) total.
    pub fn from_column(col: &Column) -> RleColumn {
        let segments: Vec<Arc<RleSegment>> = col
            .segments()
            .iter()
            .map(|seg| {
                let mut local = vec![u32::MAX; seg.rows() as usize];
                crate::column::fill_segment_ids(seg, &mut local);
                let mut seq = RleSeq::new();
                for id in local {
                    seq.push(id);
                }
                Arc::new(RleSegment::new(seq))
            })
            .collect();
        let mut out = Self::from_segments(
            col.ty(),
            col.dict().clone(),
            segments,
            col.nominal_segment_rows(),
        );
        // Conversion preserves the encoding pin (mixed-encoding concat
        // converts one side through here; its pin must not vanish).
        out.pinned = col.encoding_pinned();
        out
    }

    /// Re-encodes as a bitmap column, segment by segment: boundaries and
    /// the dictionary carry over unchanged. O(runs) per present value.
    pub fn to_column(&self) -> Result<Column, StorageError> {
        let segments: Vec<Arc<Segment>> = self
            .segments
            .iter()
            .map(|s| Arc::new(s.to_bitmap_segment()))
            .collect();
        let mut col =
            Column::from_segments(self.ty, self.dict.clone(), segments, self.segment_rows);
        col.check_invariants()?;
        // Conversion preserves the encoding pin (see from_column).
        col.set_encoding_pinned(self.pinned);
        Ok(col)
    }

    /// Assembles a column from a dictionary and segments assumed
    /// consistent. Callers that cannot assume consistency (e.g. decoding
    /// from disk) must run [`RleColumn::check_invariants`] afterwards.
    pub fn from_segments(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<Arc<RleSegment>>,
        segment_rows: u64,
    ) -> RleColumn {
        let zones = derive_zones(&dict, &segments);
        Self::from_segments_zoned(ty, dict, segments, zones, segment_rows)
    }

    /// [`RleColumn::from_segments`] with caller-supplied zone maps (spliced
    /// from inputs, or read from a version-4 file); validated by
    /// [`RleColumn::check_invariants`].
    pub fn from_segments_zoned(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<Arc<RleSegment>>,
        zones: Vec<Zone>,
        segment_rows: u64,
    ) -> RleColumn {
        debug_assert_eq!(segments.len(), zones.len());
        let (starts, rows) = starts_of(&segments);
        RleColumn {
            ty,
            dict,
            segments,
            starts,
            zones,
            segment_rows,
            rows,
            pinned: false,
        }
    }

    /// Assembles a column from a dictionary and already-built segments,
    /// compacting the dictionary to the values actually present — the
    /// constructor the segment-parallel operators funnel into.
    pub fn from_segments_compacting(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<Arc<RleSegment>>,
        segment_rows: u64,
    ) -> RleColumn {
        let mut present = vec![false; dict.len()];
        for seg in &segments {
            for &id in seg.present_ids() {
                present[id as usize] = true;
            }
        }
        if present.iter().all(|&p| p) {
            return Self::from_segments(ty, dict, segments, segment_rows);
        }
        let (compact_dict, mapping) = dict.compact(|id| present[id as usize]);
        let segments: Vec<Arc<RleSegment>> = segments
            .into_iter()
            .map(|s| Arc::new(s.remap(&mapping)))
            .collect();
        Self::from_segments(ty, compact_dict, segments, segment_rows)
    }

    /// Assembles a segmented column from a dictionary and one full-length
    /// run sequence, dropping dictionary values that never occur. Used by
    /// the mergence operators, which emit output runs directly.
    pub fn from_dict_seq_compacting(
        ty: ValueType,
        dict: Dictionary,
        seq: &RleSeq,
        segment_rows: u64,
    ) -> RleColumn {
        let mut asm = RleAssembler::new(segment_rows);
        asm.push_seq(seq);
        Self::from_segments_compacting(ty, dict, asm.finish(), segment_rows)
    }

    /// Column type.
    pub fn ty(&self) -> ValueType {
        self.ty
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of distinct values (dictionary size).
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// Total number of runs across the directory (the compressed size
    /// driver; adjacent segments may split what was one run).
    pub fn num_runs(&self) -> usize {
        self.segments.iter().map(|s| s.num_runs()).sum()
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The segment directory.
    pub fn segments(&self) -> &[Arc<RleSegment>] {
        &self.segments
    }

    /// Per-segment zone maps, parallel to [`RleColumn::segments`].
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone map of segment `idx`.
    pub fn zone(&self, idx: usize) -> Zone {
        self.zones[idx]
    }

    /// Returns `true` when the encoding was pinned by an explicit recode.
    pub fn encoding_pinned(&self) -> bool {
        self.pinned
    }

    /// Sets the encoding pin.
    pub fn set_encoding_pinned(&mut self, pinned: bool) {
        self.pinned = pinned;
    }

    /// Copies chooser-relevant metadata (the encoding pin) from the source
    /// column a derived column was built from.
    fn with_meta_of(mut self, src: &RleColumn) -> RleColumn {
        self.pinned = src.pinned;
        self
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Start row of segment `idx`.
    pub fn segment_start(&self, idx: usize) -> u64 {
        self.starts[idx]
    }

    /// The nominal segment size new data is chunked at.
    pub fn nominal_segment_rows(&self) -> u64 {
        self.segment_rows
    }

    /// Index of the segment containing `row`.
    pub fn segment_of_row(&self, row: u64) -> usize {
        debug_assert!(row < self.rows);
        self.starts.partition_point(|&s| s <= row) - 1
    }

    /// The value at `row` (O(runs of one segment)).
    pub fn value_at(&self, row: u64) -> &Value {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let seg_idx = self.segment_of_row(row);
        let local = row - self.starts[seg_idx];
        self.dict.value(self.segments[seg_idx].seq().get(local))
    }

    /// Materializes the dense row → value-id array (O(rows)).
    pub fn value_ids(&self) -> Vec<u32> {
        let mut ids = Vec::with_capacity(self.rows as usize);
        for seg in &self.segments {
            for &(v, n) in seg.seq().runs() {
                ids.extend(std::iter::repeat_n(v, n as usize));
            }
        }
        ids
    }

    /// Decodes all values.
    pub fn values(&self) -> Vec<Value> {
        self.value_ids()
            .into_iter()
            .map(|id| self.dict.value(id).clone())
            .collect()
    }

    /// Streaming `(row, value id)` cursor in ascending row order.
    pub fn id_cursor(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.segments
            .iter()
            .zip(&self.starts)
            .flat_map(|(seg, &start)| {
                seg.seq().iter_runs().flat_map(move |(v, run_start, len)| {
                    (start + run_start..start + run_start + len).map(move |row| (row, v))
                })
            })
    }

    /// Materializes the full-length bitmap of value id `id` by splicing
    /// per-segment runs (zero fills where the value is absent).
    pub fn value_bitmap(&self, id: u32) -> Wah {
        let mut out = Wah::new();
        for seg in &self.segments {
            seg.append_value_bitmap(id, &mut out);
        }
        out
    }

    /// Materialized bitmap of a value, if it occurs in the column.
    pub fn bitmap_of(&self, v: &Value) -> Option<Wah> {
        self.dict.id_of(v).map(|id| self.value_bitmap(id))
    }

    /// Number of rows carrying value id `id` (summed from segment stats;
    /// never touches run data).
    pub fn value_count(&self, id: u32) -> u64 {
        self.segments.iter().map(|s| s.count_for(id)).sum()
    }

    /// Splits a non-decreasing global position list into per-segment spans
    /// (see [`Column::position_spans`]).
    pub fn position_spans(&self, positions: &[u64]) -> Vec<(usize, Range<usize>)> {
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        crate::segment::position_spans(&sizes, positions)
    }

    /// Gather restricted to one segment: the run piece selecting the rows
    /// listed in `positions` (global, non-decreasing, all within the
    /// segment). The per-segment unit of the parallel evolution operators.
    pub fn filter_segment_seq(&self, seg_idx: usize, positions: &[u64]) -> RleSeq {
        let start = self.starts[seg_idx];
        let local: Vec<u64> = positions.iter().map(|&p| p - start).collect();
        self.segments[seg_idx].seq().filter_positions(&local)
    }

    /// Mask-driven variant of [`RleColumn::filter_segment_seq`]: shrink
    /// segment `seg_idx` to the set rows of `mask_seg` (segment-local).
    /// Materializes the mask's set positions for the segment — an
    /// O(selected rows) allocation bounded by the segment size, like the
    /// bitmap encoding's high-cardinality gather path — then runs the
    /// O(runs + positions) run gather.
    pub fn filter_segment_mask_seq(&self, seg_idx: usize, mask_seg: &Wah) -> RleSeq {
        let seg = &self.segments[seg_idx];
        assert_eq!(mask_seg.len(), seg.rows(), "segment mask length mismatch");
        let local: Vec<u64> = mask_seg.iter_ones().collect();
        seg.seq().filter_positions(&local)
    }

    /// Data-level gather: keep the rows at `positions` (non-decreasing).
    /// Values that vanish are dropped and the dictionary compacted.
    pub fn filter_positions(&self, positions: &[u64]) -> RleColumn {
        let mut asm = RleAssembler::new(self.segment_rows);
        for (seg_idx, range) in self.position_spans(positions) {
            asm.push_seq(&self.filter_segment_seq(seg_idx, &positions[range]));
        }
        Self::from_segments_compacting(self.ty, self.dict.clone(), asm.finish(), self.segment_rows)
            .with_meta_of(self)
    }

    /// Gather by an arbitrary (not necessarily sorted) row selection:
    /// output row `j` carries the value of input row `positions[j]`.
    pub fn gather(&self, positions: &[u64]) -> RleColumn {
        let ids = self.value_ids();
        let mut asm = RleAssembler::new(self.segment_rows);
        for &p in positions {
            asm.push_run(ids[p as usize], 1);
        }
        Self::from_segments_compacting(self.ty, self.dict.clone(), asm.finish(), self.segment_rows)
            .with_meta_of(self)
    }

    /// Splits a whole-column selection mask along this column's segment
    /// boundaries (one pass over the mask's compressed runs).
    pub fn split_mask(&self, mask: &Wah) -> Vec<Wah> {
        assert_eq!(mask.len(), self.rows, "mask length mismatch");
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        mask.split_sizes(&sizes)
    }

    /// Bitmap filtering driven by a selection mask.
    pub fn filter_bitmap(&self, mask: &Wah) -> RleColumn {
        let masks = self.split_mask(mask);
        let mut asm = RleAssembler::new(self.segment_rows);
        for (seg_idx, mask_seg) in masks.iter().enumerate() {
            if mask_seg.any() {
                asm.push_seq(&self.filter_segment_mask_seq(seg_idx, mask_seg));
            }
        }
        Self::from_segments_compacting(self.ty, self.dict.clone(), asm.finish(), self.segment_rows)
            .with_meta_of(self)
    }

    /// Concatenates two RLE columns of the same type (UNION TABLES).
    /// Dictionaries are merged; `self`'s segments are reused by reference,
    /// and `other`'s are reused when no id translation is needed.
    pub fn concat(&self, other: &RleColumn) -> Result<RleColumn, StorageError> {
        if self.ty != other.ty {
            return Err(StorageError::RowMismatch(format!(
                "cannot concat RLE column of type {} with {}",
                self.ty, other.ty
            )));
        }
        let (dict, other_map) = self.dict.merge(other.dict());
        let identity = other_map.iter().enumerate().all(|(i, &m)| m as usize == i);
        let mut segments = self.segments.clone();
        // Zones splice from both inputs — never recomputed (see
        // Column::concat for the id-stability argument).
        let mut zones = self.zones.clone();
        if identity {
            segments.extend(other.segments.iter().cloned());
            zones.extend(other.zones.iter().copied());
        } else {
            let map: Vec<Option<u32>> = other_map.iter().map(|&m| Some(m)).collect();
            segments.extend(other.segments.iter().map(|s| Arc::new(s.remap(&map))));
            zones.extend(other.zones.iter().map(|z| z.remap(&map)));
        }
        let mut out = Self::from_segments_zoned(self.ty, dict, segments, zones, self.segment_rows);
        // An explicit pin on either input survives the union (see
        // Column::concat).
        out.pinned = self.pinned || other.pinned;
        Ok(out)
    }

    /// Extracts the row range `[start, end)`. Fully covered segments are
    /// shared by reference when no dictionary compaction is needed.
    pub fn slice(&self, start: u64, end: u64) -> RleColumn {
        assert!(start <= end && end <= self.rows, "slice out of range");
        let mut parts: Vec<Arc<RleSegment>> = Vec::new();
        let mut zones: Vec<Zone> = Vec::new();
        let mut present = vec![false; self.dict.len()];
        let ranks = self.dict.value_order().ranks();
        for (i, (seg, &seg_start)) in self.segments.iter().zip(&self.starts).enumerate() {
            let seg_end = seg_start + seg.rows();
            if seg_end <= start || seg_start >= end {
                continue;
            }
            let lo = start.max(seg_start) - seg_start;
            let hi = end.min(seg_end) - seg_start;
            if lo == hi {
                continue;
            }
            let part = if lo == 0 && hi == seg.rows() {
                zones.push(self.zones[i]);
                Arc::clone(seg)
            } else {
                let rebuilt = Arc::new(RleSegment::new(seg.seq().slice(lo, hi)));
                zones.push(Zone::of_ids(rebuilt.present_ids(), ranks));
                rebuilt
            };
            for &id in part.present_ids() {
                present[id as usize] = true;
            }
            parts.push(part);
        }
        if present.iter().all(|&p| p) {
            Self::from_segments_zoned(self.ty, self.dict.clone(), parts, zones, self.segment_rows)
                .with_meta_of(self)
        } else {
            let (dict, mapping) = self.dict.compact(|id| present[id as usize]);
            let segments = parts
                .into_iter()
                .map(|s| Arc::new(s.remap(&mapping)))
                .collect();
            let zones = zones.into_iter().map(|z| z.remap(&mapping)).collect();
            Self::from_segments_zoned(self.ty, dict, segments, zones, self.segment_rows)
                .with_meta_of(self)
        }
    }

    /// Returns `true` when the directory is fragmented enough to benefit
    /// from [`RleColumn::compacted`] (the shared
    /// [`needs_compaction`](crate::segment::needs_compaction) trigger).
    pub fn needs_compaction(&self) -> bool {
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        crate::segment::needs_compaction(&sizes, self.segment_rows)
    }

    /// Re-chunks the segment directory toward the nominal segment size via
    /// the shared [`compaction_plan`](crate::segment::compaction_plan);
    /// segments already within `[½·nominal, 2·nominal]` are reused by
    /// reference. Merge groups splice run sequences, stats, and zones from
    /// the source segments ([`RleSegment::splice`]); only genuine splits
    /// re-derive stats through the assembler.
    pub fn compacted(&self) -> RleColumn {
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        let Some(plan) = crate::segment::compaction_plan(&sizes, self.segment_rows) else {
            return self.clone();
        };
        let ranks = self.dict.value_order().ranks();
        let mut segments: Vec<Arc<RleSegment>> = Vec::with_capacity(plan.len());
        let mut zones: Vec<Zone> = Vec::with_capacity(plan.len());
        for group in plan {
            if group.is_untouched(&sizes) {
                segments.push(Arc::clone(&self.segments[group.segs.start]));
                zones.push(self.zones[group.segs.start]);
                continue;
            }
            if group.pieces.len() == 1 {
                let parts: Vec<&RleSegment> = self.segments[group.segs.clone()]
                    .iter()
                    .map(|s| s.as_ref())
                    .collect();
                segments.push(Arc::new(RleSegment::splice(&parts)));
                zones.push(
                    self.zones[group.segs]
                        .iter()
                        .copied()
                        .reduce(|a, b| a.merge(b, ranks))
                        .expect("compaction group is non-empty"),
                );
                continue;
            }
            let mut asm = RleAssembler::with_piece_sizes(group.pieces);
            for seg in &self.segments[group.segs] {
                asm.push_seq(seg.seq());
            }
            let pieces = asm.finish();
            zones.extend(pieces.iter().map(|s| Zone::of_ids(s.present_ids(), ranks)));
            segments.extend(pieces);
        }
        Self::from_segments_zoned(
            self.ty,
            self.dict.clone(),
            segments,
            zones,
            self.segment_rows,
        )
        .with_meta_of(self)
    }

    /// [`RleColumn::compacted`] when fragmented, otherwise a cheap clone.
    pub fn maybe_compacted(&self) -> RleColumn {
        if self.needs_compaction() {
            self.compacted()
        } else {
            self.clone()
        }
    }

    /// Compressed bytes of the run sequences (excluding dictionary).
    pub fn seq_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.compressed_bytes()).sum()
    }

    /// Approximate total heap size (runs + dictionary).
    pub fn size_bytes(&self) -> usize {
        self.seq_bytes() + self.dict.size_bytes()
    }

    /// Returns `true` if the ids are sorted across the whole directory
    /// (fully clustered column).
    pub fn is_sorted(&self) -> bool {
        self.segments.iter().all(|s| s.seq().is_sorted())
            && self.segments.windows(2).all(|w| {
                match (w[0].seq().runs().last(), w[1].seq().runs().first()) {
                    (Some(&(a, _)), Some(&(b, _))) => a <= b,
                    _ => true,
                }
            })
    }

    /// Verifies the directory geometry, per-segment stats, dictionary
    /// bounds, and dictionary compaction (every value occurs somewhere).
    pub fn check_invariants(&self) -> Result<(), StorageError> {
        if self.segments.len() != self.starts.len() {
            return Err(StorageError::Corrupt("segment/start count mismatch".into()));
        }
        let mut present = vec![0u64; self.dict.len()];
        let mut expected_start = 0u64;
        for (i, (seg, &start)) in self.segments.iter().zip(&self.starts).enumerate() {
            if start != expected_start {
                return Err(StorageError::Corrupt(format!(
                    "segment {i} starts at {start}, expected {expected_start}"
                )));
            }
            if seg.rows() == 0 {
                return Err(StorageError::Corrupt(format!("segment {i} is empty")));
            }
            seg.check_invariants()
                .map_err(|e| StorageError::Corrupt(format!("segment {i}: {e}")))?;
            for (&id, &ones) in seg.present_ids().iter().zip(seg.ones()) {
                if id as usize >= self.dict.len() {
                    return Err(StorageError::Corrupt(format!(
                        "segment {i} references id {id} beyond dictionary"
                    )));
                }
                present[id as usize] += ones;
            }
            expected_start += seg.rows();
        }
        if expected_start != self.rows {
            return Err(StorageError::Corrupt(format!(
                "segments cover {expected_start} rows, column claims {}",
                self.rows
            )));
        }
        if self.rows > 0 {
            if let Some(id) = present.iter().position(|&n| n == 0) {
                return Err(StorageError::Corrupt(format!(
                    "value id {id} occurs in no segment (dictionary not compacted)"
                )));
            }
        }
        if self.zones.len() != self.segments.len() {
            return Err(StorageError::Corrupt(format!(
                "{} zones for {} segments",
                self.zones.len(),
                self.segments.len()
            )));
        }
        let ranks = self.dict.value_order().ranks();
        for (i, (seg, &zone)) in self.segments.iter().zip(&self.zones).enumerate() {
            if Zone::of_ids(seg.present_ids(), ranks) != zone {
                return Err(StorageError::Corrupt(format!(
                    "segment {i} zone (min id {}, max id {}) does not match its present ids",
                    zone.min_id, zone.max_id
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_values(n: u64, distinct: u64) -> Vec<Value> {
        (0..n)
            .map(|i| Value::int((i * distinct / n) as i64))
            .collect()
    }

    #[test]
    fn round_trip_with_bitmap_column() {
        let vals = clustered_values(1_000, 10);
        let bitmap_col = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap_col);
        rle.check_invariants().unwrap();
        assert_eq!(rle.rows(), 1_000);
        assert_eq!(rle.num_runs(), 10);
        assert!(rle.is_sorted());
        let back = rle.to_column().unwrap();
        assert_eq!(back, bitmap_col);
        assert_eq!(rle.values(), vals);
    }

    #[test]
    fn segmented_build_matches_monolithic() {
        let vals = clustered_values(1_000, 13);
        let seg = RleColumn::from_values_with(ValueType::Int, &vals, 64).unwrap();
        let mono = RleColumn::from_values_with(ValueType::Int, &vals, 1 << 40).unwrap();
        seg.check_invariants().unwrap();
        assert!(seg.segment_count() > 1);
        assert_eq!(mono.segment_count(), 1);
        assert_eq!(seg.values(), mono.values());
        assert_eq!(seg.value_ids(), mono.value_ids());
        for id in 0..seg.distinct_count() as u32 {
            assert_eq!(seg.value_bitmap(id), mono.value_bitmap(id));
            assert_eq!(seg.value_count(id), mono.value_count(id));
        }
    }

    #[test]
    fn segments_are_sparse_and_pruned() {
        // Value 0 only in rows 0..100, value 1 only in 100..200.
        let vals: Vec<Value> = (0..200).map(|i| Value::int(i / 100)).collect();
        let c = RleColumn::from_values_with(ValueType::Int, &vals, 100).unwrap();
        assert_eq!(c.segment_count(), 2);
        assert_eq!(c.segments()[0].present_ids(), &[0]);
        assert_eq!(c.segments()[1].present_ids(), &[1]);
        assert!(!c.segments()[1].contains_id(0));
        assert_eq!(c.value_count(0), 100);
    }

    #[test]
    fn rle_beats_bitmaps_on_clustered_data() {
        let vals = clustered_values(100_000, 50);
        let bitmap_col = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap_col);
        assert!(
            rle.seq_bytes() < bitmap_col.bitmap_bytes(),
            "rle {} vs wah {}",
            rle.seq_bytes(),
            bitmap_col.bitmap_bytes()
        );
    }

    #[test]
    fn filter_and_slice_match_bitmap_column() {
        let vals = clustered_values(500, 7);
        let bitmap_col = Column::from_values_with(ValueType::Int, &vals, 64).unwrap();
        let rle = RleColumn::from_column(&bitmap_col);
        let positions: Vec<u64> = (0..500).step_by(3).collect();
        assert_eq!(
            rle.filter_positions(&positions).values(),
            bitmap_col.filter_positions(&positions).values()
        );
        assert_eq!(
            rle.slice(100, 200).values(),
            bitmap_col.slice(100, 200).values()
        );
    }

    #[test]
    fn slice_shares_interior_segments() {
        let vals: Vec<Value> = (0..1_000).map(|i| Value::int(i % 4)).collect();
        let c = RleColumn::from_values_with(ValueType::Int, &vals, 100).unwrap();
        let s = c.slice(50, 950);
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 900);
        assert!(Arc::ptr_eq(&s.segments()[1], &c.segments()[1]));
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = RleColumn::from_values(
            ValueType::Str,
            &[Value::str("x"), Value::str("x"), Value::str("y")],
        )
        .unwrap();
        let b =
            RleColumn::from_values(ValueType::Str, &[Value::str("y"), Value::str("z")]).unwrap();
        let c = a.concat(&b).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 5);
        assert_eq!(
            c.values(),
            vec![
                Value::str("x"),
                Value::str("x"),
                Value::str("y"),
                Value::str("y"),
                Value::str("z")
            ]
        );
    }

    #[test]
    fn concat_shares_segments() {
        let vals: Vec<Value> = (0..500).map(|i| Value::int(i % 5)).collect();
        let a = RleColumn::from_values_with(ValueType::Int, &vals, 100).unwrap();
        let b = RleColumn::from_values_with(ValueType::Int, &vals, 100).unwrap();
        let c = a.concat(&b).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.segment_count(), 10);
        assert!(Arc::ptr_eq(&c.segments()[0], &a.segments()[0]));
        assert!(Arc::ptr_eq(&c.segments()[5], &b.segments()[0]));
    }

    #[test]
    fn compaction_merges_fragments() {
        // Build a fragmented directory from many tiny slices.
        let vals: Vec<Value> = (0..4_000).map(|i| Value::int(i % 6)).collect();
        let base = RleColumn::from_values_with(ValueType::Int, &vals, 256).unwrap();
        let mut acc = base.slice(0, 10);
        for i in 1..100 {
            acc = acc.concat(&base.slice(i * 10, i * 10 + 10)).unwrap();
        }
        assert_eq!(acc.rows(), 1_000);
        assert!(acc.needs_compaction());
        let compacted = acc.compacted();
        compacted.check_invariants().unwrap();
        assert_eq!(compacted.values(), acc.values());
        let nominal = compacted.nominal_segment_rows();
        for seg in compacted.segments() {
            assert!(
                seg.rows() >= nominal / 2 && seg.rows() <= 2 * nominal,
                "segment of {} rows outside [{}, {}]",
                seg.rows(),
                nominal / 2,
                2 * nominal
            );
        }
        assert!(!compacted.needs_compaction());
    }

    #[test]
    fn compaction_is_identity_on_clean_directories() {
        let vals: Vec<Value> = (0..1_000).map(|i| Value::int(i % 7)).collect();
        let c = RleColumn::from_values_with(ValueType::Int, &vals, 100).unwrap();
        assert!(!c.needs_compaction());
        let compacted = c.compacted();
        for (a, b) in c.segments().iter().zip(compacted.segments()) {
            assert!(Arc::ptr_eq(a, b), "clean segment was rewritten");
        }
    }

    #[test]
    fn type_checks() {
        assert!(RleColumn::from_values(ValueType::Int, &[Value::str("x")]).is_err());
        let a = RleColumn::from_values(ValueType::Int, &[Value::int(1)]).unwrap();
        let b = RleColumn::from_values(ValueType::Str, &[Value::str("x")]).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn value_at_decodes() {
        let rle = RleColumn::from_values(
            ValueType::Int,
            &[Value::int(5), Value::int(5), Value::int(9)],
        )
        .unwrap();
        assert_eq!(rle.value_at(0), &Value::int(5));
        assert_eq!(rle.value_at(2), &Value::int(9));
    }

    #[test]
    fn id_cursor_streams_in_order() {
        let vals: Vec<Value> = (0..500).map(|i| Value::int(i % 11)).collect();
        let c = RleColumn::from_values_with(ValueType::Int, &vals, 37).unwrap();
        let expected = c.value_ids();
        for (i, (row, id)) in c.id_cursor().enumerate() {
            assert_eq!(row, i as u64);
            assert_eq!(id, expected[i]);
        }
        assert_eq!(c.id_cursor().count(), 500);
    }
}
