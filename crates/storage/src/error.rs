//! Error types of the storage engine.

use std::fmt;

/// Errors raised by the column store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Schema construction or validation failed.
    InvalidSchema(String),
    /// A column name was not found.
    UnknownColumn(String),
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A row's arity or types do not match the schema.
    RowMismatch(String),
    /// Data violates a declared key (duplicate key values).
    KeyViolation(String),
    /// Load (CSV/text ingest) failure.
    LoadError(String),
    /// Persistence (encode/decode, I/O) failure.
    PersistError(String),
    /// Internal invariant violation — indicates a bug.
    Corrupt(String),
    /// An optimistic catalog transaction lost the race: the catalog was
    /// mutated between snapshot and commit.
    Conflict(String),
    /// The commit log could not make an acknowledged commit durable (a
    /// failed append, group fsync, or a log poisoned by an earlier crash).
    Durability(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            StorageError::UnknownColumn(n) => write!(f, "unknown column: {n}"),
            StorageError::UnknownTable(n) => write!(f, "unknown table: {n}"),
            StorageError::TableExists(n) => write!(f, "table already exists: {n}"),
            StorageError::RowMismatch(m) => write!(f, "row does not match schema: {m}"),
            StorageError::KeyViolation(m) => write!(f, "key violation: {m}"),
            StorageError::LoadError(m) => write!(f, "load error: {m}"),
            StorageError::PersistError(m) => write!(f, "persistence error: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage state: {m}"),
            StorageError::Conflict(m) => write!(f, "catalog transaction conflict: {m}"),
            StorageError::Durability(m) => write!(f, "durability failure: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::PersistError(e.to_string())
    }
}

impl From<cods_bitmap::CodecError> for StorageError {
    fn from(e: cods_bitmap::CodecError) -> Self {
        StorageError::PersistError(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownTable("emp".into());
        assert!(e.to_string().contains("emp"));
        let e = StorageError::KeyViolation("dup".into());
        assert!(e.to_string().contains("key violation"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::PersistError(_)));
    }
}
