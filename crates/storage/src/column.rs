//! Segmented bitmap-encoded columns: a column-global dictionary plus a
//! directory of row-range [`Segment`]s, each holding one WAH bitmap per
//! value *present in its range* (the `v × r` bitmap matrix of Section 2.2
//! of the paper, sharded by row range).
//!
//! The segment directory is what the rest of the system scales on: SMOs
//! fan out one task per (column × segment), scans prune segments whose
//! stats show a value absent, and appends (UNION TABLES) reuse existing
//! segments by `Arc` instead of rewriting bitmaps.
//!
//! NULL is interned like any other value, so the *partition invariant*
//! holds unconditionally within every segment: for each row exactly one
//! present value's bitmap has a 1.

use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::segment::{Segment, SegmentAssembler, SegmentChunk, Zone, DEFAULT_SEGMENT_ROWS};
use crate::value::{Value, ValueType};
use cods_bitmap::{OneStreamBuilder, Wah};
use std::ops::Range;
use std::sync::Arc;

/// An immutable, segmented bitmap-encoded column of `rows` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    ty: ValueType,
    dict: Dictionary,
    segments: Vec<Arc<Segment>>,
    /// Start row of each segment (parallel to `segments`).
    starts: Vec<u64>,
    /// Per-segment zone maps (parallel to `segments`): min/max present
    /// value in value order, for range-predicate pruning.
    zones: Vec<Zone>,
    /// Nominal rows per segment for newly produced data (actual segments
    /// may be shorter or irregular after concat/slice reuse).
    segment_rows: u64,
    rows: u64,
    /// `true` when the encoding was pinned by an explicit recode: the
    /// adaptive chooser leaves pinned columns alone.
    pinned: bool,
}

fn starts_of(segments: &[Arc<Segment>]) -> (Vec<u64>, u64) {
    let mut starts = Vec::with_capacity(segments.len());
    let mut total = 0u64;
    for s in segments {
        starts.push(total);
        total += s.rows();
    }
    (starts, total)
}

/// Derives every segment's zone from its present-id stats via the
/// dictionary's value order — the stats-level fallback for paths that
/// cannot splice zones from inputs. Never touches bitmap words.
pub(crate) fn derive_zones(dict: &Dictionary, segments: &[Arc<Segment>]) -> Vec<Zone> {
    if segments.is_empty() {
        return Vec::new();
    }
    let ranks = dict.value_order().ranks();
    segments
        .iter()
        .map(|s| Zone::of_ids(s.present_ids(), ranks))
        .collect()
}

impl Column {
    /// Builds a column from a value slice with the default segment size.
    pub fn from_values(ty: ValueType, values: &[Value]) -> Result<Column, StorageError> {
        Self::from_values_with(ty, values, DEFAULT_SEGMENT_ROWS)
    }

    /// Builds a column from a value slice with an explicit segment size.
    pub fn from_values_with(
        ty: ValueType,
        values: &[Value],
        segment_rows: u64,
    ) -> Result<Column, StorageError> {
        let mut b = ColumnBuilder::with_segment_rows(ty, segment_rows);
        for v in values {
            b.push(v.clone())?;
        }
        Ok(b.finish())
    }

    /// Builds a column from a dictionary and a dense row → id array.
    ///
    /// # Panics
    /// Panics if any id is out of range for the dictionary.
    pub fn from_ids(ty: ValueType, dict: Dictionary, ids: &[u32]) -> Column {
        Self::from_ids_with(ty, dict, ids, DEFAULT_SEGMENT_ROWS)
    }

    /// [`Column::from_ids`] with an explicit segment size.
    pub fn from_ids_with(
        ty: ValueType,
        dict: Dictionary,
        ids: &[u32],
        segment_rows: u64,
    ) -> Column {
        assert!(segment_rows > 0, "segment size must be positive");
        if let Some(&bad) = ids.iter().find(|&&id| id as usize >= dict.len()) {
            panic!("id {bad} out of range for dictionary of {}", dict.len());
        }
        let mut asm = SegmentAssembler::new(segment_rows);
        for chunk in ids.chunks(segment_rows as usize) {
            asm.push_chunk(SegmentChunk::from_ids(
                chunk.iter().copied(),
                chunk.len() as u64,
                dict.len(),
            ));
        }
        Self::from_segments(ty, dict, asm.finish(), segment_rows)
    }

    /// Assembles a column from a dictionary and *full-length* per-value
    /// bitmaps (one per dictionary id), segmenting them. Validates the
    /// partition invariant in debug builds. This is the compatibility
    /// constructor for callers holding the monolithic representation (e.g.
    /// the version-1 on-disk format).
    pub fn from_parts(
        ty: ValueType,
        dict: Dictionary,
        bitmaps: Vec<Wah>,
        rows: u64,
    ) -> Result<Column, StorageError> {
        if dict.len() != bitmaps.len() {
            return Err(StorageError::Corrupt(format!(
                "dictionary has {} values but {} bitmaps supplied",
                dict.len(),
                bitmaps.len()
            )));
        }
        for (id, bm) in bitmaps.iter().enumerate() {
            if bm.len() != rows {
                return Err(StorageError::Corrupt(format!(
                    "bitmap {id} has length {} but column has {rows} rows",
                    bm.len()
                )));
            }
        }
        let col = Self::from_full_bitmaps(ty, dict, &bitmaps, rows, DEFAULT_SEGMENT_ROWS);
        debug_assert!(
            col.check_invariants().is_ok(),
            "{:?}",
            col.check_invariants()
        );
        Ok(col)
    }

    /// Segments full-length per-value bitmaps without compaction.
    fn from_full_bitmaps(
        ty: ValueType,
        dict: Dictionary,
        bitmaps: &[Wah],
        rows: u64,
        segment_rows: u64,
    ) -> Column {
        let seg_count = rows.div_ceil(segment_rows) as usize;
        let mut per_segment: Vec<Vec<(u32, Wah)>> = vec![Vec::new(); seg_count];
        for (id, bm) in bitmaps.iter().enumerate() {
            if !bm.any() {
                continue;
            }
            for (s, piece) in bm.split_into(segment_rows).into_iter().enumerate() {
                if piece.any() {
                    per_segment[s].push((id as u32, piece));
                }
            }
        }
        let segments: Vec<Arc<Segment>> = per_segment
            .into_iter()
            .enumerate()
            .map(|(s, pairs)| {
                let seg_rows = segment_rows.min(rows - s as u64 * segment_rows);
                Arc::new(Segment::new(seg_rows, pairs))
            })
            .collect();
        let col = Self::from_segments(ty, dict, segments, segment_rows);
        debug_assert_eq!(col.rows, rows);
        col
    }

    /// Assembles a column from a dictionary and full-length per-value
    /// bitmaps, dropping values whose bitmap is empty (compacting the
    /// dictionary). Used by the mergence operators, which build bitmaps for
    /// every dictionary value of an input but may leave some unused.
    pub fn from_dict_bitmaps_compacting(
        ty: ValueType,
        dict: Dictionary,
        bitmaps: Vec<Wah>,
        rows: u64,
    ) -> Result<Column, StorageError> {
        if dict.len() != bitmaps.len() {
            return Err(StorageError::Corrupt(format!(
                "dictionary has {} values but {} bitmaps supplied",
                dict.len(),
                bitmaps.len()
            )));
        }
        let (compact_dict, mapping) = dict.compact(|id| bitmaps[id as usize].any());
        let mut kept = Vec::with_capacity(compact_dict.len());
        for (old_id, new_id) in mapping.iter().enumerate() {
            if new_id.is_some() {
                kept.push(bitmaps[old_id].clone());
            }
        }
        Ok(Self::from_full_bitmaps(
            ty,
            compact_dict,
            &kept,
            rows,
            DEFAULT_SEGMENT_ROWS,
        ))
    }

    /// Assembles a column from a dictionary and segments assumed
    /// consistent, without compaction. Callers that cannot assume
    /// consistency (e.g. decoding from disk) must run
    /// [`Column::check_invariants`] afterwards.
    pub fn from_segments(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<Arc<Segment>>,
        segment_rows: u64,
    ) -> Column {
        let zones = derive_zones(&dict, &segments);
        Self::from_segments_zoned(ty, dict, segments, zones, segment_rows)
    }

    /// [`Column::from_segments`] with caller-supplied zone maps (spliced
    /// from inputs, or read from a version-4 file). The zones must be
    /// parallel to `segments` and consistent with their present-id stats —
    /// [`Column::check_invariants`] verifies both.
    pub fn from_segments_zoned(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<Arc<Segment>>,
        zones: Vec<Zone>,
        segment_rows: u64,
    ) -> Column {
        debug_assert_eq!(segments.len(), zones.len());
        let (starts, rows) = starts_of(&segments);
        Column {
            ty,
            dict,
            segments,
            starts,
            zones,
            segment_rows,
            rows,
            pinned: false,
        }
    }

    /// Assembles a column from a dictionary and already-built segments,
    /// compacting the dictionary to the values actually present. This is
    /// the constructor the segment-parallel operators funnel into.
    pub fn from_segments_compacting(
        ty: ValueType,
        dict: Dictionary,
        segments: Vec<Arc<Segment>>,
        segment_rows: u64,
    ) -> Column {
        let mut present = vec![false; dict.len()];
        for seg in &segments {
            for &id in seg.present_ids() {
                present[id as usize] = true;
            }
        }
        if present.iter().all(|&p| p) {
            return Self::from_segments(ty, dict, segments, segment_rows);
        }
        let (compact_dict, mapping) = dict.compact(|id| present[id as usize]);
        let segments: Vec<Arc<Segment>> = segments
            .into_iter()
            .map(|s| Arc::new(s.remap(&mapping)))
            .collect();
        Self::from_segments(ty, compact_dict, segments, segment_rows)
    }

    /// Column type.
    pub fn ty(&self) -> ValueType {
        self.ty
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of distinct values (dictionary size).
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The segment directory.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Per-segment zone maps, parallel to [`Column::segments`].
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone map of segment `idx`.
    pub fn zone(&self, idx: usize) -> Zone {
        self.zones[idx]
    }

    /// Returns `true` when the encoding was pinned by an explicit recode
    /// (the adaptive chooser leaves pinned columns alone).
    pub fn encoding_pinned(&self) -> bool {
        self.pinned
    }

    /// Sets the encoding pin.
    pub fn set_encoding_pinned(&mut self, pinned: bool) {
        self.pinned = pinned;
    }

    /// Total maximal constant-value runs across the directory, summed from
    /// compressed per-segment interval walks (what an RLE re-encoding would
    /// store; adjacent segments may split a run). The chooser's run-count
    /// statistic.
    pub fn run_count(&self) -> u64 {
        self.segments.iter().map(|s| s.run_count()).sum()
    }

    /// Copies chooser-relevant metadata (the encoding pin) from the source
    /// column a derived column was built from.
    fn with_meta_of(mut self, src: &Column) -> Column {
        self.pinned = src.pinned;
        self
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Start row of segment `idx`.
    pub fn segment_start(&self, idx: usize) -> u64 {
        self.starts[idx]
    }

    /// The nominal segment size new data is chunked at.
    pub fn nominal_segment_rows(&self) -> u64 {
        self.segment_rows
    }

    /// Index of the segment containing `row`.
    pub fn segment_of_row(&self, row: u64) -> usize {
        debug_assert!(row < self.rows);
        self.starts.partition_point(|&s| s <= row) - 1
    }

    /// Materializes the full-length bitmap of value id `id` by splicing the
    /// per-segment bitmaps (zero fills where the value is absent, so cost
    /// is proportional to the segments it occurs in).
    pub fn value_bitmap(&self, id: u32) -> Wah {
        let mut out = Wah::new();
        for seg in &self.segments {
            match seg.bitmap_for(id) {
                Some(bm) => out.append_bitmap(bm),
                None => out.append_run(false, seg.rows()),
            }
        }
        if self.rows == 0 {
            Wah::new()
        } else {
            out
        }
    }

    /// Materialized bitmap of a value, if it occurs in the column.
    pub fn bitmap_of(&self, v: &Value) -> Option<Wah> {
        self.dict.id_of(v).map(|id| self.value_bitmap(id))
    }

    /// Number of rows carrying value id `id` (summed from segment stats;
    /// never touches bitmap words).
    pub fn value_count(&self, id: u32) -> u64 {
        self.segments.iter().map(|s| s.count_for(id)).sum()
    }

    /// The value stored at `row` (O(segment distinct) bitmap probes;
    /// intended for display and point debugging, not bulk scans — use
    /// [`Column::value_ids`] for those).
    pub fn value_at(&self, row: u64) -> &Value {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let seg_idx = self.segment_of_row(row);
        let local = row - self.starts[seg_idx];
        let id = self.segments[seg_idx]
            .id_at(local)
            .expect("partition invariant violated: row has no value");
        self.dict.value(id)
    }

    /// Materializes the dense row → value-id array in one pass over the
    /// compressed bitmaps (O(rows + compressed words)). This is the
    /// sequential-scan primitive of the CODS algorithms: it never touches
    /// the dictionary values, only ids.
    pub fn value_ids(&self) -> Vec<u32> {
        let mut ids = vec![u32::MAX; self.rows as usize];
        for (seg, &start) in self.segments.iter().zip(&self.starts) {
            fill_segment_ids(seg, &mut ids[start as usize..(start + seg.rows()) as usize]);
        }
        debug_assert!(ids.iter().all(|&i| i != u32::MAX), "uncovered row");
        ids
    }

    /// Decodes all rows to values (display/test helper).
    pub fn values(&self) -> Vec<Value> {
        self.value_ids()
            .into_iter()
            .map(|id| self.dict.value(id).clone())
            .collect()
    }

    /// Splits a non-decreasing global position list into per-segment spans:
    /// `(segment index, range into positions)`. Shared by the serial filter
    /// path and the segment-parallel executors in `cods` core.
    pub fn position_spans(&self, positions: &[u64]) -> Vec<(usize, Range<usize>)> {
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        crate::segment::position_spans(&sizes, positions)
    }

    /// The paper's *bitmap filtering* restricted to one segment: shrink
    /// segment `seg_idx` to the rows listed in `positions` (global,
    /// non-decreasing, all within the segment). Returns an unaligned chunk
    /// for a [`SegmentAssembler`].
    ///
    /// Adaptive like the monolithic implementation was: for few present
    /// values each bitmap is filtered on its compressed form; for many — a
    /// single id-gather pass over the segment.
    pub fn filter_segment_chunk(&self, seg_idx: usize, positions: &[u64]) -> SegmentChunk {
        let seg = &self.segments[seg_idx];
        let start = self.starts[seg_idx];
        if positions.is_empty() {
            return SegmentChunk::empty();
        }
        let local: Vec<u64> = positions.iter().map(|&p| p - start).collect();
        let m = local.len() as u64;
        let v = seg.distinct_count() as u64;
        let mut ids = Vec::new();
        let mut bitmaps = Vec::new();
        if v * m <= 8 * seg.rows().max(1) {
            for (&id, bm) in seg.present_ids().iter().zip(seg.bitmaps()) {
                let f = bm.filter_positions(&local);
                if f.any() {
                    ids.push(id);
                    bitmaps.push(f);
                }
            }
        } else {
            let mut local_ids = vec![u32::MAX; seg.rows() as usize];
            fill_segment_local(seg, &mut local_ids);
            let mut builders: Vec<OneStreamBuilder> =
                vec![OneStreamBuilder::new(); seg.distinct_count()];
            for (out_row, &p) in local.iter().enumerate() {
                builders[local_ids[p as usize] as usize].push_one(out_row as u64);
            }
            for (&id, b) in seg.present_ids().iter().zip(builders) {
                if b.ones() > 0 {
                    ids.push(id);
                    bitmaps.push(b.finish(m));
                }
            }
        }
        SegmentChunk {
            ids,
            bitmaps,
            rows: m,
        }
    }

    /// The paper's *bitmap filtering*: shrink the column to the rows listed
    /// in `positions` (non-decreasing). Values that vanish are dropped and
    /// the dictionary compacted. Serial; the evolution operators in `cods`
    /// core run the same per-segment chunks in parallel.
    pub fn filter_positions(&self, positions: &[u64]) -> Column {
        let mut asm = SegmentAssembler::new(self.segment_rows);
        for (seg_idx, range) in self.position_spans(positions) {
            asm.push_chunk(self.filter_segment_chunk(seg_idx, &positions[range]));
        }
        Column::from_segments_compacting(
            self.ty,
            self.dict.clone(),
            asm.finish(),
            self.segment_rows,
        )
        .with_meta_of(self)
    }

    /// Gather by an arbitrary (not necessarily sorted) row permutation or
    /// selection: output row `j` carries the value of input row
    /// `positions[j]`. Used by clustering/sorting. O(rows + positions).
    pub fn gather(&self, positions: &[u64]) -> Column {
        let ids = self.value_ids();
        let mut asm = SegmentAssembler::new(self.segment_rows);
        for chunk in positions.chunks(self.segment_rows.max(1) as usize) {
            asm.push_chunk(SegmentChunk::from_ids(
                chunk.iter().map(|&p| ids[p as usize]),
                chunk.len() as u64,
                self.dict.len(),
            ));
        }
        Column::from_segments_compacting(
            self.ty,
            self.dict.clone(),
            asm.finish(),
            self.segment_rows,
        )
        .with_meta_of(self)
    }

    /// Bitmap filtering driven by a selection mask.
    pub fn filter_bitmap(&self, mask: &Wah) -> Column {
        assert_eq!(mask.len(), self.rows, "mask length mismatch");
        let masks = self.split_mask(mask);
        let mut asm = SegmentAssembler::new(self.segment_rows);
        for (seg_idx, mask_seg) in masks.iter().enumerate() {
            asm.push_chunk(self.filter_segment_mask_chunk(seg_idx, mask_seg));
        }
        Column::from_segments_compacting(
            self.ty,
            self.dict.clone(),
            asm.finish(),
            self.segment_rows,
        )
        .with_meta_of(self)
    }

    /// Splits a whole-column selection mask along this column's segment
    /// boundaries (one pass over the mask's compressed runs).
    pub fn split_mask(&self, mask: &Wah) -> Vec<Wah> {
        assert_eq!(mask.len(), self.rows, "mask length mismatch");
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        mask.split_sizes(&sizes)
    }

    /// Mask-driven bitmap filtering restricted to one segment, staying on
    /// the compressed form: each present value's bitmap is shrunk with
    /// [`Wah::filter_bitmap`] when the segment's cardinality is low, or via
    /// a segment-local position gather when it is high. Never materializes
    /// a whole-column position list.
    pub fn filter_segment_mask_chunk(&self, seg_idx: usize, mask_seg: &Wah) -> SegmentChunk {
        let seg = &self.segments[seg_idx];
        assert_eq!(mask_seg.len(), seg.rows(), "segment mask length mismatch");
        let m = mask_seg.count_ones();
        if m == 0 {
            return SegmentChunk::empty();
        }
        let v = seg.distinct_count() as u64;
        if v * m <= 8 * seg.rows().max(1) {
            let mut ids = Vec::new();
            let mut bitmaps = Vec::new();
            for (&id, bm) in seg.present_ids().iter().zip(seg.bitmaps()) {
                let f = bm.filter_bitmap(mask_seg);
                if f.any() {
                    ids.push(id);
                    bitmaps.push(f);
                }
            }
            SegmentChunk {
                ids,
                bitmaps,
                rows: m,
            }
        } else {
            let start = self.starts[seg_idx];
            let positions: Vec<u64> = mask_seg.iter_ones().map(|p| p + start).collect();
            self.filter_segment_chunk(seg_idx, &positions)
        }
    }

    /// Concatenates two columns of the same type (UNION TABLES).
    /// Dictionaries are merged; `self`'s segments are reused by reference,
    /// and `other`'s are reused when no id translation is needed —
    /// appending never rewrites existing bitmaps.
    pub fn concat(&self, other: &Column) -> Result<Column, StorageError> {
        if self.ty != other.ty {
            return Err(StorageError::RowMismatch(format!(
                "cannot union column of type {} with {}",
                self.ty, other.ty
            )));
        }
        let (dict, other_map) = self.dict.merge(other.dict());
        let identity = other_map.iter().enumerate().all(|(i, &m)| m as usize == i);
        let mut segments = self.segments.clone();
        // Zones splice: ids are stable under the dictionary merge (self's
        // ids keep their values; other's translate to same-value ids), so
        // both sides' zones carry over without touching any stats.
        let mut zones = self.zones.clone();
        if identity {
            segments.extend(other.segments.iter().cloned());
            zones.extend(other.zones.iter().copied());
        } else {
            let map: Vec<Option<u32>> = other_map.iter().map(|&m| Some(m)).collect();
            segments.extend(other.segments.iter().map(|s| Arc::new(s.remap(&map))));
            zones.extend(other.zones.iter().map(|z| z.remap(&map)));
        }
        let (starts, rows) = starts_of(&segments);
        Ok(Column {
            ty: self.ty,
            dict,
            segments,
            starts,
            zones,
            segment_rows: self.segment_rows,
            rows,
            // An explicit pin on either input survives the union — the
            // chooser must not undo a recode the user asked for just
            // because the pinned side was the right operand.
            pinned: self.pinned || other.pinned,
        })
    }

    /// Extracts the row range `[start, end)`. Fully covered segments are
    /// shared by reference when no dictionary compaction is needed.
    pub fn slice(&self, start: u64, end: u64) -> Column {
        assert!(start <= end && end <= self.rows, "slice out of range");
        enum Part {
            Shared(Arc<Segment>),
            Rebuilt(Segment),
        }
        let mut parts: Vec<Part> = Vec::new();
        let mut zones: Vec<Zone> = Vec::new();
        let mut present = vec![false; self.dict.len()];
        let ranks = self.dict.value_order().ranks();
        for (i, (seg, &seg_start)) in self.segments.iter().zip(&self.starts).enumerate() {
            let seg_end = seg_start + seg.rows();
            if seg_end <= start || seg_start >= end {
                continue;
            }
            let lo = start.max(seg_start) - seg_start;
            let hi = end.min(seg_end) - seg_start;
            if lo == hi {
                continue;
            }
            if lo == 0 && hi == seg.rows() {
                for &id in seg.present_ids() {
                    present[id as usize] = true;
                }
                // Fully covered: segment and zone carry over untouched.
                zones.push(self.zones[i]);
                parts.push(Part::Shared(Arc::clone(seg)));
            } else {
                let mut pairs = Vec::new();
                for (&id, bm) in seg.present_ids().iter().zip(seg.bitmaps()) {
                    let piece = bm.slice(lo, hi);
                    if piece.any() {
                        present[id as usize] = true;
                        pairs.push((id, piece));
                    }
                }
                let rebuilt = Segment::new(hi - lo, pairs);
                // Partial coverage may narrow the value range: re-derive
                // from the surviving present-id stats.
                zones.push(Zone::of_ids(rebuilt.present_ids(), ranks));
                parts.push(Part::Rebuilt(rebuilt));
            }
        }
        let all_present = present.iter().all(|&p| p);
        if all_present {
            let segments: Vec<Arc<Segment>> = parts
                .into_iter()
                .map(|p| match p {
                    Part::Shared(s) => s,
                    Part::Rebuilt(s) => Arc::new(s),
                })
                .collect();
            let (starts, rows) = starts_of(&segments);
            Column {
                ty: self.ty,
                dict: self.dict.clone(),
                segments,
                starts,
                zones,
                segment_rows: self.segment_rows,
                rows,
                pinned: self.pinned,
            }
        } else {
            let (dict, mapping) = self.dict.compact(|id| present[id as usize]);
            let segments: Vec<Arc<Segment>> = parts
                .into_iter()
                .map(|p| {
                    Arc::new(match p {
                        Part::Shared(s) => s.remap(&mapping),
                        Part::Rebuilt(s) => s.remap(&mapping),
                    })
                })
                .collect();
            let zones = zones.into_iter().map(|z| z.remap(&mapping)).collect();
            let (starts, rows) = starts_of(&segments);
            Column {
                ty: self.ty,
                dict,
                segments,
                starts,
                zones,
                segment_rows: self.segment_rows,
                rows,
                pinned: self.pinned,
            }
        }
    }

    /// Returns `true` when the directory is fragmented enough to benefit
    /// from [`Column::compacted`] (the shared
    /// [`needs_compaction`](crate::segment::needs_compaction) trigger).
    pub fn needs_compaction(&self) -> bool {
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        crate::segment::needs_compaction(&sizes, self.segment_rows)
    }

    /// Re-chunks the segment directory toward the nominal segment size:
    /// adjacent undersized segments are merged and oversized ones split, so
    /// every output segment lands in `[½·nominal, 2·nominal]` (unless the
    /// whole column is smaller). Segments already within bounds are reused
    /// by reference; the dictionary is untouched (no values vanish).
    ///
    /// Merge groups (the common post-UNION fragmentation case) go through
    /// [`Segment::splice`]: present ids, per-id ones, and zones are spliced
    /// from the source segments' cached stats instead of being recounted
    /// from payload. Only genuine splits (oversized segments) re-derive
    /// stats through the assembler.
    pub fn compacted(&self) -> Column {
        let sizes: Vec<u64> = self.segments.iter().map(|s| s.rows()).collect();
        let Some(plan) = crate::segment::compaction_plan(&sizes, self.segment_rows) else {
            return self.clone();
        };
        let ranks = self.dict.value_order().ranks();
        let mut segments: Vec<Arc<Segment>> = Vec::with_capacity(plan.len());
        let mut zones: Vec<Zone> = Vec::with_capacity(plan.len());
        for group in plan {
            if group.is_untouched(&sizes) {
                segments.push(Arc::clone(&self.segments[group.segs.start]));
                zones.push(self.zones[group.segs.start]);
                continue;
            }
            if group.pieces.len() == 1 {
                // Pure merge: splice payload and stats; fold zones.
                let parts: Vec<&Segment> = self.segments[group.segs.clone()]
                    .iter()
                    .map(|s| s.as_ref())
                    .collect();
                segments.push(Arc::new(Segment::splice(&parts)));
                zones.push(
                    self.zones[group.segs]
                        .iter()
                        .copied()
                        .reduce(|a, b| a.merge(b, ranks))
                        .expect("compaction group is non-empty"),
                );
                continue;
            }
            let mut asm = SegmentAssembler::with_piece_sizes(group.pieces);
            for seg in &self.segments[group.segs] {
                asm.push_chunk(seg.to_chunk());
            }
            let pieces = asm.finish();
            zones.extend(pieces.iter().map(|s| Zone::of_ids(s.present_ids(), ranks)));
            segments.extend(pieces);
        }
        Column::from_segments_zoned(
            self.ty,
            self.dict.clone(),
            segments,
            zones,
            self.segment_rows,
        )
        .with_meta_of(self)
    }

    /// [`Column::compacted`] when [`Column::needs_compaction`], otherwise a
    /// cheap clone — the threshold-triggered form operators hook in after
    /// fragmenting operations like UNION's concat.
    pub fn maybe_compacted(&self) -> Column {
        if self.needs_compaction() {
            self.compacted()
        } else {
            self.clone()
        }
    }

    /// Verifies the per-segment partition invariants, the directory
    /// geometry, and dictionary compaction (every value occurs somewhere).
    pub fn check_invariants(&self) -> Result<(), StorageError> {
        let mut present = vec![0u64; self.dict.len()];
        let mut expected_start = 0u64;
        if self.segments.len() != self.starts.len() {
            return Err(StorageError::Corrupt("segment/start count mismatch".into()));
        }
        for (i, (seg, &start)) in self.segments.iter().zip(&self.starts).enumerate() {
            if start != expected_start {
                return Err(StorageError::Corrupt(format!(
                    "segment {i} starts at {start}, expected {expected_start}"
                )));
            }
            if seg.rows() == 0 {
                return Err(StorageError::Corrupt(format!("segment {i} is empty")));
            }
            seg.check_invariants()
                .map_err(|e| StorageError::Corrupt(format!("segment {i}: {e}")))?;
            for (&id, &ones) in seg.present_ids().iter().zip(seg.ones()) {
                if id as usize >= self.dict.len() {
                    return Err(StorageError::Corrupt(format!(
                        "segment {i} references id {id} beyond dictionary"
                    )));
                }
                present[id as usize] += ones;
            }
            expected_start += seg.rows();
        }
        if expected_start != self.rows {
            return Err(StorageError::Corrupt(format!(
                "segments cover {expected_start} rows, column claims {}",
                self.rows
            )));
        }
        if self.rows > 0 {
            if let Some(id) = present.iter().position(|&n| n == 0) {
                return Err(StorageError::Corrupt(format!(
                    "value id {id} occurs in no segment (dictionary not compacted)"
                )));
            }
        }
        if self.zones.len() != self.segments.len() {
            return Err(StorageError::Corrupt(format!(
                "{} zones for {} segments",
                self.zones.len(),
                self.segments.len()
            )));
        }
        let ranks = self.dict.value_order().ranks();
        for (i, (seg, &zone)) in self.segments.iter().zip(&self.zones).enumerate() {
            if Zone::of_ids(seg.present_ids(), ranks) != zone {
                return Err(StorageError::Corrupt(format!(
                    "segment {i} zone (min id {}, max id {}) does not match its present ids",
                    zone.min_id, zone.max_id
                )));
            }
        }
        Ok(())
    }

    /// Total compressed size of the bitmaps in bytes (excluding dictionary),
    /// summed from segment stats.
    pub fn bitmap_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.compressed_bytes()).sum()
    }

    /// Approximate total heap size (bitmaps + dictionary).
    pub fn size_bytes(&self) -> usize {
        self.bitmap_bytes() + self.dict.size_bytes()
    }
}

/// Writes each row's value id into `out` (segment-local coordinates).
pub(crate) fn fill_segment_ids(seg: &Segment, out: &mut [u32]) {
    for (&id, bm) in seg.present_ids().iter().zip(seg.bitmaps()) {
        for pos in bm.iter_ones() {
            debug_assert_eq!(out[pos as usize], u32::MAX, "overlapping bitmaps");
            out[pos as usize] = id;
        }
    }
}

/// Writes each row's *local slot index* (position in `present_ids`) into
/// `out`.
fn fill_segment_local(seg: &Segment, out: &mut [u32]) {
    for (slot, bm) in seg.bitmaps().iter().enumerate() {
        for pos in bm.iter_ones() {
            out[pos as usize] = slot as u32;
        }
    }
}

/// Incremental column builder: interns values and grows one
/// [`OneStreamBuilder`] per distinct value of the *current segment*,
/// sealing a segment every `segment_rows` rows.
#[derive(Debug)]
pub struct ColumnBuilder {
    ty: ValueType,
    dict: Dictionary,
    segment_rows: u64,
    /// Per-global-id builders for the current segment (sparse via `active`).
    builders: Vec<OneStreamBuilder>,
    /// Ids with at least one row in the current segment.
    active: Vec<u32>,
    cur_rows: u64,
    segments: Vec<Arc<Segment>>,
    rows: u64,
}

impl ColumnBuilder {
    /// Creates a builder for a column of type `ty` with the default segment
    /// size.
    pub fn new(ty: ValueType) -> Self {
        Self::with_segment_rows(ty, DEFAULT_SEGMENT_ROWS)
    }

    /// Creates a builder sealing a segment every `segment_rows` rows.
    pub fn with_segment_rows(ty: ValueType, segment_rows: u64) -> Self {
        assert!(segment_rows > 0, "segment size must be positive");
        ColumnBuilder {
            ty,
            dict: Dictionary::new(),
            segment_rows,
            builders: Vec::new(),
            active: Vec::new(),
            cur_rows: 0,
            segments: Vec::new(),
            rows: 0,
        }
    }

    /// Appends one value as the next row.
    pub fn push(&mut self, v: Value) -> Result<(), StorageError> {
        if !v.conforms_to(self.ty) {
            return Err(StorageError::RowMismatch(format!(
                "value {v} does not conform to column type {}",
                self.ty
            )));
        }
        let id = self.dict.intern(v) as usize;
        if id >= self.builders.len() {
            self.builders.resize_with(id + 1, OneStreamBuilder::new);
        }
        if self.builders[id].ones() == 0 {
            self.active.push(id as u32);
        }
        self.builders[id].push_one(self.cur_rows);
        self.cur_rows += 1;
        self.rows += 1;
        if self.cur_rows == self.segment_rows {
            self.seal_segment();
        }
        Ok(())
    }

    fn seal_segment(&mut self) {
        if self.cur_rows == 0 {
            return;
        }
        let rows = self.cur_rows;
        let pairs: Vec<(u32, Wah)> = self
            .active
            .drain(..)
            .map(|id| {
                let b = std::mem::replace(&mut self.builders[id as usize], OneStreamBuilder::new());
                (id, b.finish(rows))
            })
            .collect();
        self.segments.push(Arc::new(Segment::new(rows, pairs)));
        self.cur_rows = 0;
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Finalizes the column. Zones are derived once here from the sealed
    /// segments' present-id stats (the dictionary's value order is built a
    /// single time, not per segment).
    pub fn finish(mut self) -> Column {
        self.seal_segment();
        let col = Column::from_segments(self.ty, self.dict, self.segments, self.segment_rows);
        debug_assert_eq!(col.rows, self.rows);
        col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skills() -> Vec<Value> {
        [
            "typing",
            "shorthand",
            "cleaning",
            "alchemy",
            "typing",
            "juggling",
            "cleaning",
        ]
        .iter()
        .map(Value::str)
        .collect()
    }

    #[test]
    fn build_and_decode() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 7);
        assert_eq!(c.distinct_count(), 5);
        assert_eq!(c.values(), skills());
        assert_eq!(c.value_at(0), &Value::str("typing"));
        assert_eq!(c.value_at(6), &Value::str("cleaning"));
    }

    #[test]
    fn builder_emits_multiple_segments() {
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 100);
        for i in 0..1_050 {
            b.push(Value::int(i % 7)).unwrap();
        }
        let c = b.finish();
        c.check_invariants().unwrap();
        assert_eq!(c.segment_count(), 11);
        assert_eq!(c.segments()[0].rows(), 100);
        assert_eq!(c.segments()[10].rows(), 50);
        assert_eq!(c.segment_start(10), 1_000);
        let expect: Vec<Value> = (0..1_050).map(|i| Value::int(i % 7)).collect();
        assert_eq!(c.values(), expect);
    }

    #[test]
    fn segments_are_sparse() {
        // Value 0 occurs only in rows 0..100; value 1 only in 100..200.
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 100);
        for i in 0..200 {
            b.push(Value::int(i / 100)).unwrap();
        }
        let c = b.finish();
        c.check_invariants().unwrap();
        assert_eq!(c.segment_count(), 2);
        assert_eq!(c.segments()[0].present_ids(), &[0]);
        assert_eq!(c.segments()[1].present_ids(), &[1]);
        assert_eq!(c.value_count(0), 100);
        assert_eq!(c.value_count(1), 100);
        assert!(c.segments()[1].bitmap_for(0).is_none());
    }

    #[test]
    fn value_bitmap_splices_across_segments() {
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 64);
        for i in 0..300 {
            b.push(Value::int(i % 3)).unwrap();
        }
        let c = b.finish();
        let bm = c.value_bitmap(0);
        assert_eq!(bm.len(), 300);
        assert_eq!(bm.to_positions(), (0..300).step_by(3).collect::<Vec<u64>>());
        assert_eq!(c.bitmap_of(&Value::int(0)).unwrap(), bm);
        assert!(c.bitmap_of(&Value::int(99)).is_none());
    }

    #[test]
    fn nulls_are_first_class() {
        let vals = vec![Value::int(1), Value::Null, Value::int(1), Value::Null];
        let c = Column::from_values(ValueType::Int, &vals).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.values(), vals);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ColumnBuilder::new(ValueType::Int);
        assert!(b.push(Value::str("oops")).is_err());
        b.push(Value::int(1)).unwrap();
        b.push(Value::Null).unwrap(); // NULL conforms to any type
        assert_eq!(b.finish().rows(), 2);
    }

    #[test]
    fn filter_positions_drops_vanished_values() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        // Keep rows 0, 4 (both "typing") and 3 ("alchemy").
        let f = c.filter_positions(&[0, 3, 4]);
        f.check_invariants().unwrap();
        assert_eq!(f.rows(), 3);
        assert_eq!(f.distinct_count(), 2);
        assert_eq!(
            f.values(),
            vec![
                Value::str("typing"),
                Value::str("alchemy"),
                Value::str("typing")
            ]
        );
    }

    #[test]
    fn filter_across_segments_matches_monolithic() {
        let vals: Vec<Value> = (0..2_000).map(|i| Value::int(i % 13)).collect();
        let seg = Column::from_values_with(ValueType::Int, &vals, 128).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, 1 << 40).unwrap();
        assert_eq!(mono.segment_count(), 1);
        let positions: Vec<u64> = (0..2_000).step_by(7).collect();
        let a = seg.filter_positions(&positions);
        let b = mono.filter_positions(&positions);
        a.check_invariants().unwrap();
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn filter_bitmap_equivalent() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        let mask = Wah::from_sorted_positions([1u64, 2, 5], 7);
        assert_eq!(c.filter_bitmap(&mask), c.filter_positions(&[1, 2, 5]));
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = Column::from_values(ValueType::Str, &[Value::str("x"), Value::str("y")]).unwrap();
        let b = Column::from_values(
            ValueType::Str,
            &[Value::str("y"), Value::str("z"), Value::str("y")],
        )
        .unwrap();
        let c = a.concat(&b).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 5);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(
            c.values(),
            vec![
                Value::str("x"),
                Value::str("y"),
                Value::str("y"),
                Value::str("z"),
                Value::str("y")
            ]
        );
    }

    #[test]
    fn concat_shares_segments() {
        let vals: Vec<Value> = (0..500).map(|i| Value::int(i % 5)).collect();
        let a = Column::from_values_with(ValueType::Int, &vals, 100).unwrap();
        let b = Column::from_values_with(ValueType::Int, &vals, 100).unwrap();
        let c = a.concat(&b).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 1_000);
        assert_eq!(c.segment_count(), 10);
        // Left side is shared by Arc; right side too (identical dictionary
        // means no id translation is needed).
        assert!(Arc::ptr_eq(&c.segments()[0], &a.segments()[0]));
        assert!(Arc::ptr_eq(&c.segments()[5], &b.segments()[0]));
    }

    #[test]
    fn concat_type_mismatch_rejected() {
        let a = Column::from_values(ValueType::Int, &[Value::int(1)]).unwrap();
        let b = Column::from_values(ValueType::Str, &[Value::str("x")]).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn slice_preserves_values() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        let s = c.slice(2, 5);
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(
            s.values(),
            vec![
                Value::str("cleaning"),
                Value::str("alchemy"),
                Value::str("typing")
            ]
        );
    }

    #[test]
    fn slice_shares_interior_segments() {
        let vals: Vec<Value> = (0..1_000).map(|i| Value::int(i % 4)).collect();
        let c = Column::from_values_with(ValueType::Int, &vals, 100).unwrap();
        let s = c.slice(50, 950);
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 900);
        // Interior segments (100..900) are the same Arcs.
        assert!(Arc::ptr_eq(&s.segments()[1], &c.segments()[1]));
        let expect: Vec<Value> = (50..950).map(|i| Value::int(i % 4)).collect();
        assert_eq!(s.values(), expect);
    }

    #[test]
    fn from_ids_matches_from_values() {
        let vals = skills();
        let by_values = Column::from_values(ValueType::Str, &vals).unwrap();
        let ids = by_values.value_ids();
        let by_ids = Column::from_ids(ValueType::Str, by_values.dict().clone(), &ids);
        assert_eq!(by_ids, by_values);
    }

    #[test]
    fn from_parts_validates_counts() {
        let dict = Dictionary::from_values(vec![Value::int(1)]).unwrap();
        assert!(Column::from_parts(ValueType::Int, dict, vec![], 0).is_err());
    }

    #[test]
    fn empty_column() {
        let c = Column::from_values(ValueType::Int, &[]).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 0);
        assert_eq!(c.distinct_count(), 0);
        assert_eq!(c.segment_count(), 0);
        assert!(c.values().is_empty());
    }

    #[test]
    fn gather_unsorted() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        let g = c.gather(&[6, 0, 0, 3]);
        g.check_invariants().unwrap();
        assert_eq!(
            g.values(),
            vec![
                Value::str("cleaning"),
                Value::str("typing"),
                Value::str("typing"),
                Value::str("alchemy")
            ]
        );
    }

    #[test]
    fn low_cardinality_compresses_well() {
        // 100k rows, 2 distinct values in long runs → tiny bitmaps even
        // across segment boundaries.
        let mut b = ColumnBuilder::new(ValueType::Int);
        for i in 0..100_000 {
            b.push(Value::int(i / 50_000)).unwrap();
        }
        let c = b.finish();
        assert!(c.segment_count() >= 2);
        assert!(c.bitmap_bytes() < 200, "got {} bytes", c.bitmap_bytes());
    }
}
