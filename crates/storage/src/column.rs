//! Bitmap-encoded columns: a dictionary plus one WAH bitmap per distinct
//! value. This is the `v × r` bitmap matrix of Section 2.2 of the paper.
//!
//! NULL is interned like any other value, so the *partition invariant* holds
//! unconditionally: for every row exactly one value's bitmap has a 1.

use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::value::{Value, ValueType};
use cods_bitmap::{OneStreamBuilder, Wah};

/// An immutable bitmap-encoded column of `rows` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    ty: ValueType,
    dict: Dictionary,
    bitmaps: Vec<Wah>,
    rows: u64,
}

impl Column {
    /// Builds a column from a value slice.
    pub fn from_values(ty: ValueType, values: &[Value]) -> Result<Column, StorageError> {
        let mut b = ColumnBuilder::new(ty);
        for v in values {
            b.push(v.clone())?;
        }
        Ok(b.finish())
    }

    /// Builds a column from a dictionary and a dense row → id array.
    ///
    /// # Panics
    /// Panics if any id is out of range for the dictionary.
    pub fn from_ids(ty: ValueType, dict: Dictionary, ids: &[u32]) -> Column {
        let mut builders: Vec<OneStreamBuilder> =
            vec![OneStreamBuilder::new(); dict.len()];
        for (row, &id) in ids.iter().enumerate() {
            builders[id as usize].push_one(row as u64);
        }
        let rows = ids.len() as u64;
        Column {
            ty,
            dict,
            bitmaps: builders.into_iter().map(|b| b.finish(rows)).collect(),
            rows,
        }
    }

    /// Assembles a column from parts that are already consistent. Validates
    /// the partition invariant in debug builds.
    pub fn from_parts(
        ty: ValueType,
        dict: Dictionary,
        bitmaps: Vec<Wah>,
        rows: u64,
    ) -> Result<Column, StorageError> {
        if dict.len() != bitmaps.len() {
            return Err(StorageError::Corrupt(format!(
                "dictionary has {} values but {} bitmaps supplied",
                dict.len(),
                bitmaps.len()
            )));
        }
        let col = Column {
            ty,
            dict,
            bitmaps,
            rows,
        };
        debug_assert!(col.check_invariants().is_ok(), "{:?}", col.check_invariants());
        Ok(col)
    }

    /// Column type.
    pub fn ty(&self) -> ValueType {
        self.ty
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of distinct values (dictionary size).
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// All per-value bitmaps in id order.
    pub fn bitmaps(&self) -> &[Wah] {
        &self.bitmaps
    }

    /// Bitmap of value id `id`.
    pub fn bitmap(&self, id: u32) -> &Wah {
        &self.bitmaps[id as usize]
    }

    /// Bitmap of a value, if it occurs in the column.
    pub fn bitmap_of(&self, v: &Value) -> Option<&Wah> {
        self.dict.id_of(v).map(|id| self.bitmap(id))
    }

    /// The value stored at `row` (O(distinct) bitmap probes; intended for
    /// display and point debugging, not bulk scans — use
    /// [`Column::value_ids`] for those).
    pub fn value_at(&self, row: u64) -> &Value {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        for (id, bm) in self.bitmaps.iter().enumerate() {
            if bm.get(row) {
                return self.dict.value(id as u32);
            }
        }
        panic!("partition invariant violated: row {row} has no value");
    }

    /// Materializes the dense row → value-id array in one pass over the
    /// compressed bitmaps (O(rows + compressed words)). This is the
    /// sequential-scan primitive of the CODS algorithms: it never touches the
    /// dictionary values, only ids.
    pub fn value_ids(&self) -> Vec<u32> {
        let mut ids = vec![u32::MAX; self.rows as usize];
        for (id, bm) in self.bitmaps.iter().enumerate() {
            for pos in bm.iter_ones() {
                debug_assert_eq!(ids[pos as usize], u32::MAX, "overlapping bitmaps");
                ids[pos as usize] = id as u32;
            }
        }
        debug_assert!(ids.iter().all(|&i| i != u32::MAX), "uncovered row");
        ids
    }

    /// Decodes all rows to values (display/test helper).
    pub fn values(&self) -> Vec<Value> {
        self.value_ids()
            .into_iter()
            .map(|id| self.dict.value(id).clone())
            .collect()
    }

    /// Assembles a column from a dictionary and per-value bitmaps, dropping
    /// values whose bitmap is empty (compacting the dictionary). Used by the
    /// mergence operators, which build bitmaps for every dictionary value of
    /// an input but may leave some unused in the output.
    pub fn from_dict_bitmaps_compacting(
        ty: ValueType,
        dict: Dictionary,
        bitmaps: Vec<Wah>,
        rows: u64,
    ) -> Result<Column, StorageError> {
        if dict.len() != bitmaps.len() {
            return Err(StorageError::Corrupt(format!(
                "dictionary has {} values but {} bitmaps supplied",
                dict.len(),
                bitmaps.len()
            )));
        }
        let (compact_dict, mapping) = dict.compact(|id| bitmaps[id as usize].any());
        let mut kept = Vec::with_capacity(compact_dict.len());
        for (old_id, new_id) in mapping.iter().enumerate() {
            if new_id.is_some() {
                kept.push(bitmaps[old_id].clone());
            }
        }
        Column::from_parts(ty, compact_dict, kept, rows)
    }

    /// The paper's *bitmap filtering*: shrink the column to the rows listed
    /// in `positions` (non-decreasing). Bitmaps whose filtered form is empty
    /// are dropped and the dictionary is compacted.
    ///
    /// Adaptive: for low-cardinality columns each per-value bitmap is
    /// filtered directly on its compressed form (runs stay runs); for
    /// high-cardinality columns — where touching the position list once per
    /// value would be quadratic — a single id-gather pass rebuilds all
    /// bitmaps in O(rows + positions). Both paths operate on value ids only,
    /// never on decoded values.
    pub fn filter_positions(&self, positions: &[u64]) -> Column {
        let v = self.dict.len() as u64;
        if v * positions.len() as u64 <= 8 * self.rows.max(1) {
            let filtered: Vec<Wah> = self
                .bitmaps
                .iter()
                .map(|bm| bm.filter_positions(positions))
                .collect();
            self.rebuild_from_filtered(filtered, positions.len() as u64)
        } else {
            self.filter_positions_via_ids(positions)
        }
    }

    /// High-cardinality gather path: one pass over the column's value ids.
    fn filter_positions_via_ids(&self, positions: &[u64]) -> Column {
        let ids = self.value_ids();
        let mut builder = cods_bitmap::ValueStreamBuilder::new(self.dict.len());
        for &p in positions {
            builder.push_row(ids[p as usize] as usize);
        }
        let bitmaps = builder.finish_with_len(positions.len() as u64);
        self.rebuild_from_filtered(bitmaps, positions.len() as u64)
    }

    /// Gather by an arbitrary (not necessarily sorted) row permutation or
    /// selection: output row `j` carries the value of input row
    /// `positions[j]`. Used by clustering/sorting. O(rows + positions).
    pub fn gather(&self, positions: &[u64]) -> Column {
        self.filter_positions_via_ids(positions)
    }

    /// Bitmap filtering driven by a selection mask (adaptive like
    /// [`Column::filter_positions`]).
    pub fn filter_bitmap(&self, mask: &Wah) -> Column {
        assert_eq!(mask.len(), self.rows, "mask length mismatch");
        if self.dict.len() <= 64 {
            let filtered: Vec<Wah> = self
                .bitmaps
                .iter()
                .map(|bm| bm.filter_bitmap(mask))
                .collect();
            self.rebuild_from_filtered(filtered, mask.count_ones())
        } else {
            self.filter_positions_via_ids(&mask.to_positions())
        }
    }

    fn rebuild_from_filtered(&self, filtered: Vec<Wah>, new_rows: u64) -> Column {
        let (dict, mapping) = self.dict.compact(|id| filtered[id as usize].any());
        let mut bitmaps: Vec<Wah> = Vec::with_capacity(dict.len());
        for (old_id, new_id) in mapping.iter().enumerate() {
            if new_id.is_some() {
                bitmaps.push(filtered[old_id].clone());
            }
        }
        // Edge case: zero distinct values only if zero rows.
        Column {
            ty: self.ty,
            dict,
            bitmaps,
            rows: new_rows,
        }
    }

    /// Concatenates two columns of the same type (UNION TABLES). Dictionaries
    /// are merged; unchanged bitmaps are extended with zero fills, which
    /// WAH encodes in O(1) words.
    pub fn concat(&self, other: &Column) -> Result<Column, StorageError> {
        if self.ty != other.ty {
            return Err(StorageError::RowMismatch(format!(
                "cannot union column of type {} with {}",
                self.ty, other.ty
            )));
        }
        let (dict, other_map) = self.dict.merge(other.dict());
        let rows = self.rows + other.rows;
        // Reverse map: merged id → other's id (if the value occurs in other).
        let mut from_other: Vec<Option<usize>> = vec![None; dict.len()];
        for (other_id, &merged_id) in other_map.iter().enumerate() {
            from_other[merged_id as usize] = Some(other_id);
        }
        let mut bitmaps: Vec<Wah> = Vec::with_capacity(dict.len());
        for (merged_id, from) in from_other.iter().enumerate() {
            let mut bm = if merged_id < self.bitmaps.len() {
                self.bitmaps[merged_id].clone()
            } else {
                Wah::zeros(self.rows)
            };
            match from {
                Some(other_id) => bm.append_bitmap(&other.bitmaps[*other_id]),
                None => bm.append_run(false, other.rows),
            }
            bitmaps.push(bm);
        }
        Column::from_parts(self.ty, dict, bitmaps, rows)
    }

    /// Extracts the row range `[start, end)`.
    pub fn slice(&self, start: u64, end: u64) -> Column {
        let sliced: Vec<Wah> = self
            .bitmaps
            .iter()
            .map(|bm| bm.slice(start, end))
            .collect();
        self.rebuild_from_filtered(sliced, end - start)
    }

    /// Verifies the partition invariant and per-bitmap lengths.
    pub fn check_invariants(&self) -> Result<(), StorageError> {
        if self.dict.len() != self.bitmaps.len() {
            return Err(StorageError::Corrupt("dict/bitmap count mismatch".into()));
        }
        let mut total_ones = 0u64;
        for (id, bm) in self.bitmaps.iter().enumerate() {
            bm.check_invariants()
                .map_err(|e| StorageError::Corrupt(format!("bitmap {id}: {e}")))?;
            if bm.len() != self.rows {
                return Err(StorageError::Corrupt(format!(
                    "bitmap {id} has length {} but column has {} rows",
                    bm.len(),
                    self.rows
                )));
            }
            if !bm.any() && self.rows > 0 {
                return Err(StorageError::Corrupt(format!(
                    "bitmap {id} is empty (dictionary not compacted)"
                )));
            }
            total_ones += bm.count_ones();
        }
        if total_ones != self.rows {
            return Err(StorageError::Corrupt(format!(
                "partition invariant violated: {} ones over {} rows",
                total_ones, self.rows
            )));
        }
        // Pairwise disjointness follows from total_ones == rows together
        // with full coverage; verify coverage via OR-fold on small columns.
        if self.rows > 0 && self.rows <= 10_000 {
            let union = Wah::union_many(self.bitmaps.iter(), self.rows);
            if union.count_ones() != self.rows {
                return Err(StorageError::Corrupt(
                    "partition invariant violated: rows covered more than once".into(),
                ));
            }
        }
        Ok(())
    }

    /// Total compressed size of the bitmaps in bytes (excluding dictionary).
    pub fn bitmap_bytes(&self) -> usize {
        self.bitmaps.iter().map(|b| b.size_bytes()).sum()
    }

    /// Approximate total heap size (bitmaps + dictionary).
    pub fn size_bytes(&self) -> usize {
        self.bitmap_bytes() + self.dict.size_bytes()
    }
}

/// Incremental column builder: interns values and grows one
/// [`OneStreamBuilder`] per distinct value.
#[derive(Debug)]
pub struct ColumnBuilder {
    ty: ValueType,
    dict: Dictionary,
    builders: Vec<OneStreamBuilder>,
    rows: u64,
}

impl ColumnBuilder {
    /// Creates a builder for a column of type `ty`.
    pub fn new(ty: ValueType) -> Self {
        ColumnBuilder {
            ty,
            dict: Dictionary::new(),
            builders: Vec::new(),
            rows: 0,
        }
    }

    /// Appends one value as the next row.
    pub fn push(&mut self, v: Value) -> Result<(), StorageError> {
        if !v.conforms_to(self.ty) {
            return Err(StorageError::RowMismatch(format!(
                "value {v} does not conform to column type {}",
                self.ty
            )));
        }
        let id = self.dict.intern(v) as usize;
        if id == self.builders.len() {
            self.builders.push(OneStreamBuilder::new());
        }
        self.builders[id].push_one(self.rows);
        self.rows += 1;
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Finalizes the column.
    pub fn finish(self) -> Column {
        let rows = self.rows;
        Column {
            ty: self.ty,
            dict: self.dict,
            bitmaps: self.builders.into_iter().map(|b| b.finish(rows)).collect(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skills() -> Vec<Value> {
        ["typing", "shorthand", "cleaning", "alchemy", "typing", "juggling", "cleaning"]
            .iter()
            .map(Value::str)
            .collect()
    }

    #[test]
    fn build_and_decode() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 7);
        assert_eq!(c.distinct_count(), 5);
        assert_eq!(c.values(), skills());
        assert_eq!(c.value_at(0), &Value::str("typing"));
        assert_eq!(c.value_at(6), &Value::str("cleaning"));
    }

    #[test]
    fn value_ids_partition() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        let ids = c.value_ids();
        assert_eq!(ids.len(), 7);
        assert_eq!(ids[0], ids[4]); // both "typing"
        assert_eq!(ids[2], ids[6]); // both "cleaning"
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn nulls_are_first_class() {
        let vals = vec![Value::int(1), Value::Null, Value::int(1), Value::Null];
        let c = Column::from_values(ValueType::Int, &vals).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.values(), vals);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ColumnBuilder::new(ValueType::Int);
        assert!(b.push(Value::str("oops")).is_err());
        b.push(Value::int(1)).unwrap();
        b.push(Value::Null).unwrap(); // NULL conforms to any type
        assert_eq!(b.finish().rows(), 2);
    }

    #[test]
    fn filter_positions_drops_vanished_values() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        // Keep rows 0, 4 (both "typing") and 3 ("alchemy").
        let f = c.filter_positions(&[0, 3, 4]);
        f.check_invariants().unwrap();
        assert_eq!(f.rows(), 3);
        assert_eq!(f.distinct_count(), 2);
        assert_eq!(
            f.values(),
            vec![Value::str("typing"), Value::str("alchemy"), Value::str("typing")]
        );
    }

    #[test]
    fn filter_bitmap_equivalent() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        let mask = Wah::from_sorted_positions([1u64, 2, 5], 7);
        assert_eq!(c.filter_bitmap(&mask), c.filter_positions(&[1, 2, 5]));
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = Column::from_values(
            ValueType::Str,
            &[Value::str("x"), Value::str("y")],
        )
        .unwrap();
        let b = Column::from_values(
            ValueType::Str,
            &[Value::str("y"), Value::str("z"), Value::str("y")],
        )
        .unwrap();
        let c = a.concat(&b).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 5);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(
            c.values(),
            vec![
                Value::str("x"),
                Value::str("y"),
                Value::str("y"),
                Value::str("z"),
                Value::str("y")
            ]
        );
    }

    #[test]
    fn concat_type_mismatch_rejected() {
        let a = Column::from_values(ValueType::Int, &[Value::int(1)]).unwrap();
        let b = Column::from_values(ValueType::Str, &[Value::str("x")]).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn slice_preserves_values() {
        let c = Column::from_values(ValueType::Str, &skills()).unwrap();
        let s = c.slice(2, 5);
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(
            s.values(),
            vec![Value::str("cleaning"), Value::str("alchemy"), Value::str("typing")]
        );
    }

    #[test]
    fn from_ids_matches_from_values() {
        let vals = skills();
        let by_values = Column::from_values(ValueType::Str, &vals).unwrap();
        let ids = by_values.value_ids();
        let by_ids = Column::from_ids(ValueType::Str, by_values.dict().clone(), &ids);
        assert_eq!(by_ids, by_values);
    }

    #[test]
    fn from_parts_validates_counts() {
        let dict = Dictionary::from_values(vec![Value::int(1)]).unwrap();
        assert!(Column::from_parts(ValueType::Int, dict, vec![], 0).is_err());
    }

    #[test]
    fn empty_column() {
        let c = Column::from_values(ValueType::Int, &[]).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.rows(), 0);
        assert_eq!(c.distinct_count(), 0);
        assert!(c.values().is_empty());
    }

    #[test]
    fn low_cardinality_compresses_well() {
        // 100k rows, 2 distinct values in long runs → tiny bitmaps.
        let mut b = ColumnBuilder::new(ValueType::Int);
        for i in 0..100_000 {
            b.push(Value::int(i / 50_000)).unwrap();
        }
        let c = b.finish();
        assert!(c.bitmap_bytes() < 200, "got {} bytes", c.bitmap_bytes());
    }
}
