//! Column-oriented tables: a schema plus one shared, immutable column per
//! attribute.
//!
//! Columns are `Arc`-shared between tables. This is what lets CODS implement
//! Property 1 of lossless decompositions — "the unchanged output table can be
//! created right away using the existing columns … without any data
//! operation" — as literal pointer sharing.

use crate::encoded::{ColumnBuilder, EncodedColumn, Encoding};
use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable column-oriented table. Each column is independently bitmap
/// or run-length encoded (see [`EncodedColumn`]).
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Arc<EncodedColumn>>,
    rows: u64,
}

impl Table {
    /// Assembles a table from a schema and matching columns.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Arc<EncodedColumn>>,
    ) -> Result<Table, StorageError> {
        if columns.len() != schema.arity() {
            return Err(StorageError::RowMismatch(format!(
                "schema has {} columns but {} were supplied",
                schema.arity(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.rows());
        for (i, c) in columns.iter().enumerate() {
            if c.rows() != rows {
                return Err(StorageError::Corrupt(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.rows()
                )));
            }
            if c.ty() != schema.columns()[i].ty && c.rows() > 0 {
                return Err(StorageError::RowMismatch(format!(
                    "column {:?} has type {}, schema says {}",
                    schema.columns()[i].name,
                    c.ty(),
                    schema.columns()[i].ty
                )));
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            rows,
        })
    }

    /// Builds a table from rows of values.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: &[Vec<Value>],
    ) -> Result<Table, StorageError> {
        Self::from_rows_with_segment_rows(name, schema, rows, crate::segment::DEFAULT_SEGMENT_ROWS)
    }

    /// Builds a table from rows of values with an explicit column segment
    /// size (benchmarks use this to compare segmentations).
    pub fn from_rows_with_segment_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: &[Vec<Value>],
        segment_rows: u64,
    ) -> Result<Table, StorageError> {
        let mut builders: Vec<ColumnBuilder> = schema
            .columns()
            .iter()
            .map(|c| ColumnBuilder::with_segment_rows(c.ty, segment_rows))
            .collect();
        for (rno, row) in rows.iter().enumerate() {
            if row.len() != schema.arity() {
                return Err(StorageError::RowMismatch(format!(
                    "row {rno} has {} values, schema has {} columns",
                    row.len(),
                    schema.arity()
                )));
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v.clone())?;
            }
        }
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        Table::new(name, schema, columns)
    }

    /// Returns a copy with every column re-encoded to `encoding` (values,
    /// dictionaries, and segment boundaries preserved). Columns already in
    /// that encoding are shared by reference.
    pub fn recoded(&self, encoding: Encoding) -> Result<Table, StorageError> {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                Ok(if c.is_uniform(encoding) {
                    Arc::clone(c)
                } else {
                    Arc::new(c.recode(encoding)?)
                })
            })
            .collect::<Result<_, StorageError>>()?;
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Returns a copy with the named column re-encoded to `encoding`; all
    /// other columns are shared by reference.
    pub fn with_column_encoding(
        &self,
        name: &str,
        encoding: Encoding,
    ) -> Result<Table, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut columns = self.columns.clone();
        if !columns[idx].is_uniform(encoding) {
            columns[idx] = Arc::new(columns[idx].recode(encoding)?);
        }
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Re-encodes only the named column's segments with indices in `range`
    /// to `encoding`, pinning each against the chooser — the segment-range
    /// form of an explicit recode. All other columns (and segments) are
    /// shared by reference.
    pub fn with_column_segment_range_encoding(
        &self,
        name: &str,
        encoding: Encoding,
        range: std::ops::Range<usize>,
    ) -> Result<Table, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut columns = self.columns.clone();
        columns[idx] = Arc::new(columns[idx].recode_segments(range, encoding)?);
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Clears the pins of the named column's segments in `range` and
    /// re-encodes each to the per-segment chooser's pick — the
    /// segment-range form of `recode … auto`.
    pub fn auto_encode_column_range(
        &self,
        name: &str,
        range: std::ops::Range<usize>,
    ) -> Result<Table, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut columns = self.columns.clone();
        columns[idx] = Arc::new(columns[idx].auto_recode_segments(range)?);
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Like [`Table::recoded`], but *pins* every column's encoding so the
    /// adaptive chooser leaves it alone — the explicit-`recode` CLI path.
    pub fn recoded_pinned(&self, encoding: Encoding) -> Result<Table, StorageError> {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let mut col = if c.is_uniform(encoding) {
                    (**c).clone()
                } else {
                    c.recode(encoding)?
                };
                col.set_encoding_pinned(true);
                Ok(Arc::new(col))
            })
            .collect::<Result<_, StorageError>>()?;
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Like [`Table::with_column_encoding`], but pins the named column's
    /// encoding against the adaptive chooser.
    pub fn with_column_encoding_pinned(
        &self,
        name: &str,
        encoding: Encoding,
    ) -> Result<Table, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut columns = self.columns.clone();
        let mut col = if columns[idx].is_uniform(encoding) {
            (*columns[idx]).clone()
        } else {
            columns[idx].recode(encoding)?
        };
        col.set_encoding_pinned(true);
        columns[idx] = Arc::new(col);
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Returns a copy with every unpinned segment of every column
    /// re-encoded to the per-segment chooser's pick (columns the chooser
    /// would leave untouched, and pinned ones, are shared by reference).
    /// Columns whose data mixes clustered and scattered row ranges come
    /// out with genuinely mixed directories.
    pub fn auto_encoded(&self) -> Result<Table, StorageError> {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                Ok(if c.needs_auto_recode() {
                    Arc::new(c.auto_recoded()?)
                } else {
                    Arc::clone(c)
                })
            })
            .collect::<Result<_, StorageError>>()?;
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Clears the named column's encoding pin and re-encodes it to the
    /// chooser's pick — the `recode <table> <col> auto` CLI path.
    pub fn auto_encode_column(&self, name: &str) -> Result<Table, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut columns = self.columns.clone();
        let mut col = (*columns[idx]).clone();
        col.set_encoding_pinned(false);
        columns[idx] = Arc::new(col.auto_recoded()?);
        Table::new(&self.name, self.schema.clone(), columns)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> &Arc<EncodedColumn> {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Arc<EncodedColumn>, StorageError> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Arc<EncodedColumn>] {
        &self.columns
    }

    /// Returns a copy with a different name (RENAME TABLE shares all data).
    pub fn renamed(&self, name: impl Into<String>) -> Table {
        Table {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Materializes row `idx` as values (display/test path).
    pub fn row(&self, idx: u64) -> Vec<Value> {
        self.columns
            .iter()
            .map(|c| c.value_at(idx).clone())
            .collect()
    }

    /// Materializes all rows (test/display helper; decompresses everything).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        let per_col: Vec<Vec<Value>> = self.columns.iter().map(|c| c.values()).collect();
        (0..self.rows as usize)
            .map(|r| per_col.iter().map(|col| col[r].clone()).collect())
            .collect()
    }

    /// Materializes only the named columns, in the given order — the
    /// projection-pushdown scan path of a column store (untouched columns
    /// are never decompressed).
    pub fn to_rows_projected(&self, names: &[&str]) -> Result<Vec<Vec<Value>>, StorageError> {
        let per_col: Vec<Vec<Value>> = names
            .iter()
            .map(|n| Ok(self.column_by_name(n)?.values()))
            .collect::<Result<_, StorageError>>()?;
        Ok((0..self.rows as usize)
            .map(|r| per_col.iter().map(|col| col[r].clone()).collect())
            .collect())
    }

    /// The multiset of tuples, for order-insensitive equality in tests and
    /// cross-engine verification.
    pub fn tuple_multiset(&self) -> HashMap<Vec<Value>, u64> {
        let mut m = HashMap::new();
        for row in self.to_rows() {
            *m.entry(row).or_insert(0) += 1;
        }
        m
    }

    /// Rewrites the table clustered (stably sorted) by the named columns, in
    /// value order. Clustering turns each value's bitmap into a single fill
    /// run, which is where WAH — and the RLE encoding for sorted columns —
    /// compress best. After the rewrite every unpinned column is re-encoded
    /// to the adaptive chooser's pick (clustering is exactly what makes RLE
    /// win, so sort columns typically flip to RLE automatically; pin an
    /// encoding with an explicit recode to opt out).
    pub fn cluster_by(&self, names: &[&str]) -> Result<Table, StorageError> {
        // Rank every sort column's dictionary by value, then sort row
        // indices by the rank tuple (stable).
        let mut rank_cols: Vec<(Vec<u32>, Vec<u32>)> = Vec::with_capacity(names.len());
        for n in names {
            let col = self.column_by_name(n)?;
            let mut order: Vec<u32> = (0..col.distinct_count() as u32).collect();
            order.sort_by(|&a, &b| col.dict().value(a).cmp(col.dict().value(b)));
            let mut rank = vec![0u32; col.distinct_count()];
            for (r, &id) in order.iter().enumerate() {
                rank[id as usize] = r as u32;
            }
            rank_cols.push((col.value_ids(), rank));
        }
        let mut perm: Vec<u64> = (0..self.rows).collect();
        perm.sort_by_key(|&row| {
            rank_cols
                .iter()
                .map(|(ids, rank)| rank[ids[row as usize] as usize])
                .collect::<Vec<u32>>()
        });
        let columns: Vec<Arc<EncodedColumn>> = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(&perm)))
            .collect();
        Table::new(&self.name, self.schema.clone(), columns)?.auto_encoded()
    }

    /// Checks that the declared key is actually unique.
    pub fn verify_key(&self) -> Result<(), StorageError> {
        if self.schema.key().is_empty() {
            return Ok(());
        }
        let key_cols: Vec<Vec<u32>> = self
            .schema
            .key()
            .iter()
            .map(|&i| self.columns[i].value_ids())
            .collect();
        let mut seen: HashMap<Vec<u32>, u64> = HashMap::with_capacity(self.rows as usize);
        for r in 0..self.rows as usize {
            let key: Vec<u32> = key_cols.iter().map(|c| c[r]).collect();
            if let Some(prev) = seen.insert(key, r as u64) {
                return Err(StorageError::KeyViolation(format!(
                    "rows {prev} and {r} share the same key in table {:?}",
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// Validates all column invariants and row-count consistency.
    pub fn check_invariants(&self) -> Result<(), StorageError> {
        for (i, c) in self.columns.iter().enumerate() {
            c.check_invariants()
                .map_err(|e| StorageError::Corrupt(format!("column {i}: {e}")))?;
            if c.rows() != self.rows {
                return Err(StorageError::Corrupt(format!(
                    "column {i} row count mismatch"
                )));
            }
        }
        Ok(())
    }

    /// Approximate heap size of all columns.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.size_bytes()).sum()
    }

    /// Faults every segment of every column in — the explicit warm-up for
    /// a lazily opened table (and the v1 downgrade path).
    pub fn fault_in_all(&self) {
        for c in &self.columns {
            c.fault_in_all();
        }
    }

    /// `(resident, on-disk)` segment counts over all columns —
    /// buffer-cache telemetry.
    pub fn residency_counts(&self) -> (usize, usize) {
        self.columns.iter().fold((0, 0), |(r, d), c| {
            let (cr, cd) = c.residency_counts();
            (r + cr, d + cd)
        })
    }

    /// Returns `true` when the named column's data is shared (same `Arc`)
    /// with `other`'s column of the same name — the zero-copy reuse check
    /// used by evolution tests.
    pub fn shares_column_with(&self, other: &Table, name: &str) -> bool {
        match (self.column_by_name(name), other.column_by_name(name)) {
            (Ok(a), Ok(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    pub(crate) fn figure1_r() -> Table {
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect();
        Table::from_rows("R", schema, &rows).unwrap()
    }

    #[test]
    fn build_figure1() {
        let r = figure1_r();
        r.check_invariants().unwrap();
        assert_eq!(r.rows(), 7);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.column_by_name("employee").unwrap().distinct_count(), 4);
        assert_eq!(r.column_by_name("skill").unwrap().distinct_count(), 6);
        assert_eq!(r.column_by_name("address").unwrap().distinct_count(), 2);
    }

    #[test]
    fn row_round_trip() {
        let r = figure1_r();
        assert_eq!(
            r.row(3),
            vec![
                Value::str("Ellis"),
                Value::str("Alchemy"),
                Value::str("747 Industrial Way")
            ]
        );
        assert_eq!(r.to_rows().len(), 7);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let err = Table::from_rows("t", schema, &[vec![Value::int(1), Value::int(2)]]);
        assert!(matches!(err, Err(StorageError::RowMismatch(_))));
    }

    #[test]
    fn key_verification() {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let good = Table::from_rows(
            "t",
            schema.clone(),
            &[
                vec![Value::int(1), Value::str("a")],
                vec![Value::int(2), Value::str("b")],
            ],
        )
        .unwrap();
        good.verify_key().unwrap();
        let bad = Table::from_rows(
            "t",
            schema,
            &[
                vec![Value::int(1), Value::str("a")],
                vec![Value::int(1), Value::str("b")],
            ],
        )
        .unwrap();
        assert!(matches!(
            bad.verify_key(),
            Err(StorageError::KeyViolation(_))
        ));
    }

    #[test]
    fn rename_shares_columns() {
        let r = figure1_r();
        let r2 = r.renamed("R2");
        assert_eq!(r2.name(), "R2");
        assert!(r.shares_column_with(&r2, "employee"));
        assert!(r.shares_column_with(&r2, "skill"));
    }

    #[test]
    fn tuple_multiset_counts_duplicates() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows(
            "t",
            schema,
            &[
                vec![Value::int(1)],
                vec![Value::int(1)],
                vec![Value::int(2)],
            ],
        )
        .unwrap();
        let m = t.tuple_multiset();
        assert_eq!(m[&vec![Value::int(1)]], 2);
        assert_eq!(m[&vec![Value::int(2)]], 1);
    }

    #[test]
    fn empty_table() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows("t", schema, &[]).unwrap();
        assert_eq!(t.rows(), 0);
        t.check_invariants().unwrap();
        t.verify_key().unwrap();
    }

    #[test]
    fn cluster_by_sorts_and_preserves_tuples() {
        let r = figure1_r();
        let clustered = r.cluster_by(&["employee"]).unwrap();
        clustered.check_invariants().unwrap();
        assert_eq!(clustered.tuple_multiset(), r.tuple_multiset());
        let employees: Vec<Value> = clustered
            .to_rows()
            .iter()
            .map(|row| row[0].clone())
            .collect();
        let mut sorted = employees.clone();
        sorted.sort();
        assert_eq!(employees, sorted, "not clustered by employee");
        // Clustered value bitmaps are single fill runs (tiny).
        let col = clustered.column_by_name("employee").unwrap();
        for id in 0..col.distinct_count() as u32 {
            let bm = col.value_bitmap(id);
            assert!(bm.words().len() <= 3, "bitmap not run-compressed");
        }
    }

    #[test]
    fn cluster_by_composite_is_stable() {
        let schema = Schema::build(
            &[
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("seq", ValueType::Int),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::int(i % 3), Value::int(i % 2), Value::int(i)])
            .collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let c = t.cluster_by(&["a", "b"]).unwrap();
        let decoded = c.to_rows();
        // Sorted by (a, b); within a group, original order (stable via seq).
        for w in decoded.windows(2) {
            let ka = (&w[0][0], &w[0][1]);
            let kb = (&w[1][0], &w[1][1]);
            assert!(ka <= kb, "not sorted: {ka:?} > {kb:?}");
            if ka == kb {
                assert!(w[0][2] < w[1][2], "not stable");
            }
        }
    }

    #[test]
    fn cluster_by_auto_encodes_unpinned_columns() {
        let schema = Schema::build(&[("k", ValueType::Int), ("u", ValueType::Int)], &[]).unwrap();
        // k clusters perfectly (long runs); u stays scattered.
        let rows: Vec<Vec<Value>> = (0..4_000)
            .map(|i| {
                vec![
                    Value::int(i % 8),
                    Value::int((i * 2_654_435_761u64 as i64) % 1_000),
                ]
            })
            .collect();
        let t = Table::from_rows_with_segment_rows("t", schema, &rows, 512).unwrap();
        let c = t.cluster_by(&["k"]).unwrap();
        c.check_invariants().unwrap();
        assert!(
            c.column_by_name("k").unwrap().is_uniform(Encoding::Rle),
            "chooser flips the sort column to RLE after clustering"
        );
        assert!(
            c.column_by_name("u").unwrap().is_uniform(Encoding::Bitmap),
            "scattered column stays bitmap"
        );
        assert_eq!(c.tuple_multiset(), t.tuple_multiset());

        // A pinned column opts out of the chooser.
        let pinned = t
            .with_column_encoding_pinned("k", Encoding::Bitmap)
            .unwrap();
        let cp = pinned.cluster_by(&["k"]).unwrap();
        assert!(cp.column_by_name("k").unwrap().is_uniform(Encoding::Bitmap));
        assert!(cp.column_by_name("k").unwrap().encoding_pinned());
        // ...until re-set to auto.
        let auto = cp.auto_encode_column("k").unwrap();
        assert!(auto.column_by_name("k").unwrap().is_uniform(Encoding::Rle));
        assert!(!auto.column_by_name("k").unwrap().encoding_pinned());
    }

    #[test]
    fn recoded_pinned_pins_all_columns() {
        let r = figure1_r();
        let p = r.recoded_pinned(Encoding::Rle).unwrap();
        assert!(p
            .columns()
            .iter()
            .all(|c| c.is_uniform(Encoding::Rle) && c.encoding_pinned()));
        assert_eq!(p.to_rows(), r.to_rows());
        let back = p.auto_encoded().unwrap();
        // Pinned columns are untouched by the table-level chooser pass.
        assert!(back.shares_column_with(&p, "employee"));
    }

    #[test]
    fn column_type_checked_against_schema() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let col = Arc::new(EncodedColumn::from_values(ValueType::Str, &[Value::str("x")]).unwrap());
        assert!(Table::new("t", schema, vec![col]).is_err());
    }

    #[test]
    fn recoded_preserves_rows_and_shares_on_noop() {
        let r = figure1_r();
        let rle = r.recoded(Encoding::Rle).unwrap();
        rle.check_invariants().unwrap();
        assert_eq!(rle.to_rows(), r.to_rows());
        assert!(rle.columns().iter().all(|c| c.is_uniform(Encoding::Rle)));
        let back = rle.recoded(Encoding::Bitmap).unwrap();
        assert_eq!(back.to_rows(), r.to_rows());
        // Re-encoding to the current encoding shares columns by reference.
        let same = rle.recoded(Encoding::Rle).unwrap();
        assert!(rle.shares_column_with(&same, "employee"));
        // Single-column recode shares the rest.
        let one = r.with_column_encoding("skill", Encoding::Rle).unwrap();
        assert!(r.shares_column_with(&one, "employee"));
        assert!(one
            .column_by_name("skill")
            .unwrap()
            .is_uniform(Encoding::Rle));
        assert_eq!(one.to_rows(), r.to_rows());
    }
    #[test]
    fn segment_range_recode_mixes_one_column() {
        let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..800).map(|i| vec![Value::int(i / 50)]).collect();
        let t = Table::from_rows_with_segment_rows("t", schema, &rows, 100).unwrap();
        assert_eq!(t.column(0).segment_count(), 8);
        let m = t
            .with_column_segment_range_encoding("k", Encoding::Rle, 0..4)
            .unwrap();
        m.check_invariants().unwrap();
        let col = m.column_by_name("k").unwrap();
        assert_eq!(col.encoding_counts(), (4, 4));
        assert!(col.segment_pinned(0) && !col.segment_pinned(4));
        assert_eq!(m.to_rows(), t.to_rows());
        // `auto` over the range hands those segments back to the chooser
        // (clustered data: they stay RLE but the pins clear).
        let back = m.auto_encode_column_range("k", 0..4).unwrap();
        let col = back.column_by_name("k").unwrap();
        assert!(!col.segment_pinned(0));
        assert!(t
            .with_column_segment_range_encoding("k", Encoding::Rle, 7..9)
            .is_err());
    }
}
