//! Bulk loading of delimited text data into bitmap-encoded tables — the
//! "load data" button of the CODS demo (Section 3).

use crate::encoded::ColumnBuilder;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::path::Path;
use std::sync::Arc;

/// Options controlling delimited-text ingest.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first line is a header naming the columns. When `true`
    /// the header must mention every schema column; columns may appear in
    /// any order.
    pub has_header: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            delimiter: ',',
            has_header: false,
        }
    }
}

/// Loads delimited text into a new table. Builds the per-value bitmap
/// indexes in the same single pass that parses the text.
pub fn load_str(
    name: &str,
    schema: &Schema,
    text: &str,
    opts: &LoadOptions,
) -> Result<Table, StorageError> {
    let mut lines = text.lines().enumerate().peekable();
    // Column order in the file → schema order.
    let order: Vec<usize> = if opts.has_header {
        let (_, header) = lines
            .next()
            .ok_or_else(|| StorageError::LoadError("empty input, header expected".into()))?;
        let fields: Vec<&str> = header.split(opts.delimiter).map(str::trim).collect();
        if fields.len() != schema.arity() {
            return Err(StorageError::LoadError(format!(
                "header has {} fields, schema has {} columns",
                fields.len(),
                schema.arity()
            )));
        }
        let mut order = Vec::with_capacity(fields.len());
        for f in &fields {
            order.push(schema.index_of(f)?);
        }
        order
    } else {
        (0..schema.arity()).collect()
    };

    let mut builders: Vec<ColumnBuilder> = schema
        .columns()
        .iter()
        .map(|c| ColumnBuilder::new(c.ty))
        .collect();
    let mut row_buf: Vec<Option<Value>> = vec![None; schema.arity()];
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(opts.delimiter).collect();
        if fields.len() != schema.arity() {
            return Err(StorageError::LoadError(format!(
                "line {}: expected {} fields, found {}",
                lineno + 1,
                schema.arity(),
                fields.len()
            )));
        }
        for (file_pos, field) in fields.iter().enumerate() {
            let schema_pos = order[file_pos];
            let ty = schema.columns()[schema_pos].ty;
            let v = Value::parse(field, ty)
                .map_err(|e| StorageError::LoadError(format!("line {}: {e}", lineno + 1)))?;
            row_buf[schema_pos] = Some(v);
        }
        for (b, v) in builders.iter_mut().zip(row_buf.iter_mut()) {
            b.push(v.take().expect("all fields assigned"))?;
        }
    }
    let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
    Table::new(name, schema.clone(), columns)
}

/// Loads a delimited text file into a new table.
pub fn load_file(
    name: &str,
    schema: &Schema,
    path: impl AsRef<Path>,
    opts: &LoadOptions,
) -> Result<Table, StorageError> {
    let text = std::fs::read_to_string(path)?;
    load_str(name, schema, &text, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("years", ValueType::Int),
            ],
            &[],
        )
        .unwrap()
    }

    #[test]
    fn basic_load() {
        let text = "Jones,Typing,3\nEllis,Alchemy,10\n";
        let t = load_str("R", &schema(), text, &LoadOptions::default()).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(
            t.row(1),
            vec![Value::str("Ellis"), Value::str("Alchemy"), Value::int(10)]
        );
    }

    #[test]
    fn header_reorders_columns() {
        let text = "years,employee,skill\n3,Jones,Typing\n";
        let opts = LoadOptions {
            has_header: true,
            ..Default::default()
        };
        let t = load_str("R", &schema(), text, &opts).unwrap();
        assert_eq!(
            t.row(0),
            vec![Value::str("Jones"), Value::str("Typing"), Value::int(3)]
        );
    }

    #[test]
    fn custom_delimiter_and_blank_lines() {
        let text = "Jones|Typing|3\n\nEllis|Alchemy|10\n";
        let opts = LoadOptions {
            delimiter: '|',
            has_header: false,
        };
        let t = load_str("R", &schema(), text, &opts).unwrap();
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn nulls_parse() {
        let text = "Jones,Typing,\nEllis,NULL,4\n";
        let t = load_str("R", &schema(), text, &LoadOptions::default()).unwrap();
        assert_eq!(t.row(0)[2], Value::Null);
        assert_eq!(t.row(1)[1], Value::Null);
    }

    #[test]
    fn arity_error_reports_line() {
        let text = "Jones,Typing,3\nEllis,Alchemy\n";
        let err = load_str("R", &schema(), text, &LoadOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn type_error_reports_line() {
        let text = "Jones,Typing,notanumber\n";
        let err = load_str("R", &schema(), text, &LoadOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn unknown_header_column_fails() {
        let text = "bogus,employee,skill\n1,Jones,Typing\n";
        let opts = LoadOptions {
            has_header: true,
            ..Default::default()
        };
        assert!(load_str("R", &schema(), text, &opts).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("cods_load_test.csv");
        std::fs::write(&path, "Jones,Typing,3\n").unwrap();
        let t = load_file("R", &schema(), &path, &LoadOptions::default()).unwrap();
        assert_eq!(t.rows(), 1);
        std::fs::remove_file(&path).ok();
    }
}
