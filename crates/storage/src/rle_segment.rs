//! Run-length-encoded row-range segments — the alternative per-segment
//! encoding the paper notes is "sometimes used for special columns, such as
//! run length encoding for sorted columns" (§2.2).
//!
//! An [`RleSegment`] is the RLE twin of the bitmap
//! [`Segment`](crate::segment::Segment): it covers a consecutive row range
//! of a column, stores that range's run sequence over *global* value ids,
//! and caches the same per-segment statistics (present ids, per-id row
//! counts) that scans use to prune whole segments. Since the unified
//! directory refactor both segment kinds live side by side inside one
//! [`EncodedColumn`](crate::encoded::EncodedColumn) — a clustered prefix of
//! a column can be RLE while its high-churn suffix stays bitmap.

use crate::segment::Segment;
use cods_bitmap::{RleSeq, Wah};
use std::collections::HashMap;
use std::sync::Arc;

/// One immutable row-range segment in the RLE encoding: the run sequence of
/// the segment's rows over global value ids, plus cached statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RleSegment {
    seq: RleSeq,
    /// Ascending global value ids present in this segment (`Arc`-shared so
    /// the buffer manager's resident metadata can alias them zero-copy).
    ids: Arc<[u32]>,
    /// Rows carrying each present id (parallel to `ids`).
    ones: Arc<[u64]>,
}

impl RleSegment {
    /// Builds a segment from a run sequence, deriving the stats.
    pub fn new(seq: RleSeq) -> RleSegment {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for &(id, n) in seq.runs() {
            *counts.entry(id).or_insert(0) += n;
        }
        let mut pairs: Vec<(u32, u64)> = counts.into_iter().collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let (ids, ones): (Vec<u32>, Vec<u64>) = pairs.into_iter().unzip();
        RleSegment {
            seq,
            ids: ids.into(),
            ones: ones.into(),
        }
    }

    /// Number of rows covered.
    #[inline]
    pub fn rows(&self) -> u64 {
        self.seq.len()
    }

    /// The run sequence (segment-local offsets, global value ids).
    #[inline]
    pub fn seq(&self) -> &RleSeq {
        &self.seq
    }

    /// Number of runs (the compressed size driver).
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.seq.num_runs()
    }

    /// The ascending value ids present in this segment.
    #[inline]
    pub fn present_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of distinct values present.
    #[inline]
    pub fn distinct_count(&self) -> usize {
        self.ids.len()
    }

    /// Cached per-present-id row counts, parallel to
    /// [`RleSegment::present_ids`].
    #[inline]
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// `Arc` handle on the present-id list (zero-copy stat sharing with the
    /// buffer manager's resident metadata).
    #[inline]
    pub(crate) fn ids_arc(&self) -> Arc<[u32]> {
        Arc::clone(&self.ids)
    }

    /// `Arc` handle on the per-id row counts.
    #[inline]
    pub(crate) fn ones_arc(&self) -> Arc<[u64]> {
        Arc::clone(&self.ones)
    }

    /// Returns `true` when `id` occurs in this segment (O(log present)).
    #[inline]
    pub fn contains_id(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of rows carrying `id` (0 when absent; O(log present)).
    pub fn count_for(&self, id: u32) -> u64 {
        self.ids.binary_search(&id).map_or(0, |i| self.ones[i])
    }

    /// Compressed bytes of the run sequence.
    #[inline]
    pub fn compressed_bytes(&self) -> usize {
        self.seq.size_bytes()
    }

    /// Splices consecutive segments into one, combining cached statistics
    /// from the parts instead of recounting them: run sequences are
    /// concatenated and per-id ones merged by id — the compaction merge
    /// path never rescans runs to rebuild stats.
    pub fn splice(parts: &[&RleSegment]) -> RleSegment {
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let mut seq = RleSeq::new();
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for part in parts {
            seq.append_seq(&part.seq);
            for (&id, &ones) in part.ids.iter().zip(part.ones.iter()) {
                *counts.entry(id).or_insert(0) += ones;
            }
        }
        let mut pairs: Vec<(u32, u64)> = counts.into_iter().collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let (ids, ones): (Vec<u32>, Vec<u64>) = pairs.into_iter().unzip();
        RleSegment {
            seq,
            ids: ids.into(),
            ones: ones.into(),
        }
    }

    /// Rewrites the segment under an id translation (`map[old] = Some(new)`;
    /// `None` is only valid for ids not present). O(runs).
    pub(crate) fn remap(&self, map: &[Option<u32>]) -> RleSegment {
        let mut seq = RleSeq::new();
        for &(id, n) in self.seq.runs() {
            let new = map[id as usize].expect("remap drops a present value");
            seq.append_run(new, n);
        }
        RleSegment::new(seq)
    }

    /// Splices the bitmap of value `id` over this segment onto `out`
    /// (appends `rows()` bits). O(runs).
    pub(crate) fn append_value_bitmap(&self, id: u32, out: &mut Wah) {
        if !self.contains_id(id) {
            out.append_run(false, self.rows());
            return;
        }
        for &(v, n) in self.seq.runs() {
            out.append_run(v == id, n);
        }
    }

    /// Re-encodes this segment as a bitmap [`Segment`] covering the same
    /// rows — the transcoding path of per-segment recodes and of compaction
    /// merges over mixed-encoding groups. O(runs) per present value.
    pub fn to_bitmap_segment(&self) -> Segment {
        let mut acc = crate::segment::PaddedBitmaps::new();
        for (id, start, len) in self.seq.iter_runs() {
            acc.append_run(id, start, len);
        }
        let rows = self.rows();
        Segment::new(rows, acc.finish(rows))
    }

    /// Builds an RLE segment from a bitmap one by decoding its row → id
    /// assignment — the opposite transcoding direction. O(rows).
    pub fn from_bitmap_segment(seg: &Segment) -> RleSegment {
        let mut local = vec![u32::MAX; seg.rows() as usize];
        seg.fill_ids(&mut local);
        let mut seq = RleSeq::new();
        for id in local {
            seq.push(id);
        }
        RleSegment::new(seq)
    }

    /// Validates the per-segment invariants: non-empty, sorted unique
    /// present ids, and stats matching the run sequence.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.ids.len() != self.ones.len() {
            return Err("ids/ones length mismatch".into());
        }
        if self.ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err("present ids not strictly ascending".into());
        }
        let fresh = RleSegment::new(self.seq.clone());
        if fresh.ids != self.ids || fresh.ones != self.ones {
            return Err("stale present-id stats".into());
        }
        if self.seq.runs().iter().any(|&(_, n)| n == 0) {
            return Err("zero-length run".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_of(ids: &[u32]) -> RleSeq {
        let mut s = RleSeq::new();
        for &id in ids {
            s.push(id);
        }
        s
    }

    #[test]
    fn stats_and_lookup() {
        let s = RleSegment::new(seq_of(&[7, 7, 2, 2, 2, 7]));
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 6);
        assert_eq!(s.present_ids(), &[2, 7]);
        assert_eq!(s.count_for(7), 3);
        assert_eq!(s.count_for(9), 0);
        assert!(s.contains_id(2));
        assert!(!s.contains_id(3));
        assert_eq!(s.num_runs(), 3);
    }

    #[test]
    fn splice_combines_stats() {
        let a = RleSegment::new(seq_of(&[1, 1, 3]));
        let b = RleSegment::new(seq_of(&[3, 8, 8]));
        let s = RleSegment::splice(&[&a, &b]);
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 6);
        assert_eq!(s.present_ids(), &[1, 3, 8]);
        assert_eq!(s.count_for(3), 2);
        // The run crossing the splice boundary fuses.
        assert_eq!(s.num_runs(), 3);
    }

    #[test]
    fn bitmap_round_trip() {
        let s = RleSegment::new(seq_of(&[0, 0, 5, 5, 5, 0, 2]));
        let bitmap = s.to_bitmap_segment();
        bitmap.check_invariants().unwrap();
        assert_eq!(bitmap.rows(), 7);
        assert_eq!(bitmap.present_ids(), s.present_ids());
        let back = RleSegment::from_bitmap_segment(&bitmap);
        assert_eq!(back, s);
    }

    #[test]
    fn remap_translates() {
        let s = RleSegment::new(seq_of(&[0, 1, 1]));
        let r = s.remap(&[Some(4), Some(1)]);
        r.check_invariants().unwrap();
        assert_eq!(r.present_ids(), &[1, 4]);
        assert_eq!(r.count_for(1), 2);
    }
}
