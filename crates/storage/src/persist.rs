//! Binary persistence of tables and catalogs.
//!
//! Version 6 splits a file into a payload heap and a metadata region so a
//! column opens as *metadata only* — schema, dictionary, per-segment stats,
//! zone maps, encoding/pin tags — while segment payloads stay on disk
//! behind a footer index and fault in through the buffer cache
//! ([`crate::store`]) on first touch:
//!
//! ```text
//! file     := preamble payload-heap metadata footer
//! preamble := magic:u32 version:u16
//! footer   := meta_off:u64 magic:u32               (the last 12 bytes)
//! metadata := table                                (table file)
//! metadata := table_count:u32 table*               (catalog file)
//! table    := name:str schema rows:u64 column*
//! schema   := arity:u16 (name:str tag:u8)* key_len:u16 key_idx:u16*
//! column   := dict flags:u8 seg_rows:u64 seg_count:u32 segment* zone*
//! dict     := tag:u8 dict_len:u32 value*
//! flags    := bit 0: whole column pinned by explicit recode
//! segment  := segtag:u8 off:u64 len:u64 rows:u64 runs:u64 bytes:u64
//!             present:u32 (id:u32)* (ones:u64)*
//! segtag   := bit 0: encoding (0 bitmap, 1 rle); bit 1: segment pinned
//! zone     := min_id:u32 max_id:u32                (one per segment)
//! value    := kind:u8 payload
//! str      := len:u32 utf8-bytes
//! ```
//!
//! `off`/`len` locate the segment's payload in the heap (bitmap segments
//! are the concatenation of each present id's WAH stream in id order, RLE
//! segments the run-sequence codec); `rows`/`runs`/`bytes`/ids/ones are
//! the resident stats scans prune on without faulting. The heap stores
//! each distinct (`Arc`-shared) segment once, however many columns or
//! table versions reference it, and a catalog decode re-shares slots with
//! identical locations.
//!
//! Saving onto a file that already backs some of the table's segments is
//! an *append*: reused payloads keep their offsets, only new segments'
//! payloads are appended at the old metadata offset, and the metadata
//! region plus footer are rewritten — O(new data + metadata), not O(file).
//! After any save, freshly built segments adopt their new on-disk location
//! and become evictable.
//!
//! Version 5 (eager per-segment payloads behind per-segment encoding
//! tags), version 4 (one column-wide `enc` byte — homogeneous directories
//! only), version 3 (no flags byte, no zones), version 2 (bitmap-only
//! segment directory) and version 1 (the monolithic format: one
//! full-length bitmap per dictionary value) are still decoded
//! transparently — fully resident, since those files carry no payload
//! index. [`encode_table_v1`] writes the legacy layout for compatibility
//! tests and downgrades; on a lazily opened table it faults every segment
//! in, since the monolithic layout needs all payloads.

use crate::dictionary::Dictionary;
use crate::encoded::{EncodedColumn, Encoding, SegmentEnc};
use crate::error::StorageError;
use crate::fault;
use crate::rle_segment::RleSegment;
use crate::schema::{ColumnDef, Schema};
use crate::segment::{Segment, Zone};
use crate::store::{
    encode_payload, file_id_of, payload_encoded_len, segment_cache, DiskLoc, FileId, PayloadSource,
    SegMeta, SegSlot,
};
use crate::table::Table;
use crate::value::{Value, ValueType};
use crate::wal;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cods_bitmap::{RleSeq, Wah};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: u32 = 0xC0D5_0001;
/// Current on-disk format version (demand-paged payload heap + footer).
pub const VERSION: u16 = 6;
/// Oldest format version this build can read.
pub const MIN_VERSION: u16 = 1;

/// `magic:u32 version:u16`.
pub(crate) const PREAMBLE_LEN: usize = 6;
/// `meta_off:u64 magic:u32`.
const FOOTER_LEN: usize = 12;

const ENC_BITMAP: u8 = 0;
const ENC_RLE: u8 = 1;
/// Column flag bit: whole column pinned by an explicit recode.
const FLAG_PINNED: u8 = 1;
/// Segment tag bit: this segment pinned by a segment-range recode.
const SEG_FLAG_PINNED: u8 = 2;

fn put_str<B: BufMut>(buf: &mut B, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str<B: Buf>(buf: &mut B) -> Result<String, StorageError> {
    if buf.remaining() < 4 {
        return Err(eof());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(eof());
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| StorageError::PersistError(format!("invalid UTF-8: {e}")))
}

fn eof() -> StorageError {
    StorageError::PersistError("unexpected end of buffer".into())
}

fn put_value<B: BufMut>(buf: &mut B, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64_le(f.0);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
    }
}

fn get_value<B: Buf>(buf: &mut B) -> Result<Value, StorageError> {
    if buf.remaining() < 1 {
        return Err(eof());
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => {
            if buf.remaining() < 1 {
                return Err(eof());
            }
            Value::Bool(buf.get_u8() != 0)
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(eof());
            }
            Value::Int(buf.get_i64_le())
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(eof());
            }
            Value::float(buf.get_f64_le())
        }
        4 => Value::Str(get_str(buf)?.into()),
        k => {
            return Err(StorageError::PersistError(format!(
                "unknown value kind {k}"
            )))
        }
    })
}

fn put_schema<B: BufMut>(buf: &mut B, s: &Schema) {
    buf.put_u16_le(s.arity() as u16);
    for c in s.columns() {
        put_str(buf, &c.name);
        buf.put_u8(c.ty.tag());
    }
    buf.put_u16_le(s.key().len() as u16);
    for &k in s.key() {
        buf.put_u16_le(k as u16);
    }
}

fn get_schema<B: Buf>(buf: &mut B) -> Result<Schema, StorageError> {
    if buf.remaining() < 2 {
        return Err(eof());
    }
    let arity = buf.get_u16_le() as usize;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = get_str(buf)?;
        if buf.remaining() < 1 {
            return Err(eof());
        }
        let ty = ValueType::from_tag(buf.get_u8())
            .ok_or_else(|| StorageError::PersistError("bad type tag".into()))?;
        cols.push(ColumnDef::new(name, ty));
    }
    if buf.remaining() < 2 {
        return Err(eof());
    }
    let key_len = buf.get_u16_le() as usize;
    let mut key = Vec::with_capacity(key_len);
    for _ in 0..key_len {
        if buf.remaining() < 2 {
            return Err(eof());
        }
        key.push(buf.get_u16_le() as usize);
    }
    Schema::with_key(cols, key).map_err(|e| StorageError::PersistError(e.to_string()))
}

fn put_dict<B: BufMut>(buf: &mut B, ty: ValueType, dict: &Dictionary) {
    buf.put_u8(ty.tag());
    buf.put_u32_le(dict.len() as u32);
    for v in dict.values() {
        put_value(buf, v);
    }
}

/// Writes a column in the legacy monolithic (version-1) layout: one
/// full-length bitmap per dictionary value, whatever the in-memory
/// per-segment encodings (the downgrade path). Faults lazily opened
/// segments in, since the monolithic layout needs every payload.
fn put_column_v1<B: BufMut>(buf: &mut B, c: &EncodedColumn) {
    put_dict(buf, c.ty(), c.dict());
    for id in 0..c.dict().len() as u32 {
        c.value_bitmap(id).encode(buf);
    }
}

fn put_zones<B: BufMut>(buf: &mut B, zones: &[Zone]) {
    for z in zones {
        buf.put_u32_le(z.min_id);
        buf.put_u32_le(z.max_id);
    }
}

fn get_zones<B: Buf>(
    buf: &mut B,
    count: usize,
    dict_len: usize,
) -> Result<Vec<Zone>, StorageError> {
    let mut zones = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(eof());
        }
        let min_id = buf.get_u32_le();
        let max_id = buf.get_u32_le();
        if min_id as usize >= dict_len || max_id as usize >= dict_len {
            return Err(StorageError::PersistError(format!(
                "zone ids ({min_id}, {max_id}) beyond dictionary of {dict_len}"
            )));
        }
        zones.push(Zone { min_id, max_id });
    }
    Ok(zones)
}

fn get_dict<B: Buf>(buf: &mut B) -> Result<(ValueType, Dictionary), StorageError> {
    if buf.remaining() < 5 {
        return Err(eof());
    }
    let ty = ValueType::from_tag(buf.get_u8())
        .ok_or_else(|| StorageError::PersistError("bad column type tag".into()))?;
    let dict_len = buf.get_u32_le() as usize;
    let mut values = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        values.push(get_value(buf)?);
    }
    let dict = Dictionary::from_values(values).map_err(StorageError::PersistError)?;
    Ok((ty, dict))
}

/// Reads the `seg_rows`/`seg_count` directory header shared by v2–v6.
fn get_dir_header<B: Buf>(buf: &mut B) -> Result<(u64, usize), StorageError> {
    if buf.remaining() < 12 {
        return Err(eof());
    }
    let seg_rows = buf.get_u64_le();
    if seg_rows == 0 {
        return Err(StorageError::PersistError(
            "zero nominal segment size".into(),
        ));
    }
    Ok((seg_rows, buf.get_u32_le() as usize))
}

/// Reads one eagerly stored bitmap segment (v2–v5), validating present ids
/// against the dictionary up front — zone derivation indexes the rank table
/// by id, so a corrupt file must be rejected here with an error, never by a
/// panic downstream.
fn get_bitmap_segment<B: Buf>(buf: &mut B, dict_len: usize) -> Result<Arc<Segment>, StorageError> {
    if buf.remaining() < 12 {
        return Err(eof());
    }
    let srows = buf.get_u64_le();
    let present = buf.get_u32_le() as usize;
    if present == 0 && srows > 0 {
        return Err(StorageError::PersistError(format!(
            "segment of {srows} rows with no present values"
        )));
    }
    let mut ids = Vec::with_capacity(present);
    for _ in 0..present {
        if buf.remaining() < 4 {
            return Err(eof());
        }
        let id = buf.get_u32_le();
        if id as usize >= dict_len {
            return Err(StorageError::PersistError(format!(
                "segment id {id} beyond dictionary of {dict_len}"
            )));
        }
        ids.push(id);
    }
    let mut pairs = Vec::with_capacity(present);
    for id in ids {
        let bm = Wah::decode(buf)?;
        if bm.len() != srows {
            return Err(StorageError::PersistError(format!(
                "segment bitmap of id {id} has length {}, segment has {srows} rows",
                bm.len()
            )));
        }
        if !bm.any() {
            return Err(StorageError::PersistError(format!(
                "empty segment bitmap for id {id}"
            )));
        }
        pairs.push((id, bm));
    }
    Ok(Arc::new(Segment::new(srows, pairs)))
}

/// Reads one eagerly stored RLE segment (v3–v5), validating run ids against
/// the dictionary (see [`get_bitmap_segment`]).
fn get_rle_segment<B: Buf>(buf: &mut B, dict_len: usize) -> Result<Arc<RleSegment>, StorageError> {
    let seq =
        RleSeq::decode(buf).map_err(|e| StorageError::PersistError(format!("rle segment: {e}")))?;
    if seq.is_empty() {
        return Err(StorageError::PersistError("empty rle segment".into()));
    }
    if let Some(&(id, _)) = seq.runs().iter().find(|&&(id, _)| id as usize >= dict_len) {
        return Err(StorageError::PersistError(format!(
            "rle run id {id} beyond dictionary of {dict_len}"
        )));
    }
    Ok(Arc::new(RleSegment::new(seq)))
}

/// Reads the homogeneous directory of a v2–v4 column (one encoding for
/// every segment).
fn get_uniform_segments<B: Buf>(
    buf: &mut B,
    dict_len: usize,
    enc: u8,
) -> Result<(Vec<SegmentEnc>, u64), StorageError> {
    let (seg_rows, seg_count) = get_dir_header(buf)?;
    let mut segments = Vec::with_capacity(seg_count);
    for _ in 0..seg_count {
        segments.push(match enc {
            ENC_BITMAP => SegmentEnc::Bitmap(get_bitmap_segment(buf, dict_len)?),
            ENC_RLE => SegmentEnc::Rle(get_rle_segment(buf, dict_len)?),
            e => {
                return Err(StorageError::PersistError(format!(
                    "unknown column encoding {e}"
                )))
            }
        });
    }
    Ok((segments, seg_rows))
}

fn get_column<B: Buf>(buf: &mut B, rows: u64, version: u16) -> Result<EncodedColumn, StorageError> {
    let (ty, dict) = get_dict(buf)?;
    let col = match version {
        1 => {
            let mut bitmaps = Vec::with_capacity(dict.len());
            for _ in 0..dict.len() {
                bitmaps.push(Wah::decode(buf)?);
            }
            EncodedColumn::from_parts(ty, dict, bitmaps, rows)?
        }
        2 => {
            let (segments, seg_rows) = get_uniform_segments(buf, dict.len(), ENC_BITMAP)?;
            EncodedColumn::from_segments(ty, dict, segments, seg_rows)
        }
        3 => {
            if buf.remaining() < 1 {
                return Err(eof());
            }
            // v3 stores no zones: reconstructed from segment stats below
            // (from_segments derives them).
            let enc = buf.get_u8();
            let (segments, seg_rows) = get_uniform_segments(buf, dict.len(), enc)?;
            EncodedColumn::from_segments(ty, dict, segments, seg_rows)
        }
        4 => {
            if buf.remaining() < 2 {
                return Err(eof());
            }
            let enc = buf.get_u8();
            let flags = buf.get_u8();
            let dict_len = dict.len();
            let (segments, seg_rows) = get_uniform_segments(buf, dict_len, enc)?;
            let zones = get_zones(buf, segments.len(), dict_len)?;
            let mut col = EncodedColumn::from_segments_zoned(ty, dict, segments, zones, seg_rows);
            col.set_encoding_pinned(flags & FLAG_PINNED != 0);
            col
        }
        _ => {
            // v5: flags byte, then one tagged eager segment after another.
            if buf.remaining() < 1 {
                return Err(eof());
            }
            let flags = buf.get_u8();
            let dict_len = dict.len();
            let (seg_rows, seg_count) = get_dir_header(buf)?;
            let mut segments = Vec::with_capacity(seg_count);
            let mut pins = Vec::with_capacity(seg_count);
            for _ in 0..seg_count {
                if buf.remaining() < 1 {
                    return Err(eof());
                }
                let tag = buf.get_u8();
                if tag & !(ENC_RLE | SEG_FLAG_PINNED) != 0 {
                    return Err(StorageError::PersistError(format!(
                        "unknown segment tag {tag:#04x}"
                    )));
                }
                pins.push(tag & SEG_FLAG_PINNED != 0);
                segments.push(if tag & ENC_RLE != 0 {
                    SegmentEnc::Rle(get_rle_segment(buf, dict_len)?)
                } else {
                    SegmentEnc::Bitmap(get_bitmap_segment(buf, dict_len)?)
                });
            }
            let zones = get_zones(buf, segments.len(), dict_len)?;
            let mut col = EncodedColumn::from_segments_zoned(ty, dict, segments, zones, seg_rows);
            col.set_segment_pins(pins);
            col.set_encoding_pinned(flags & FLAG_PINNED != 0);
            col
        }
    };
    if col.rows() != rows {
        return Err(StorageError::PersistError(format!(
            "column covers {} rows, table claims {rows}",
            col.rows()
        )));
    }
    col.check_invariants()?;
    Ok(col)
}

// ---------------------------------------------------------------------------
// v6 writer: payload heap + metadata region + footer.
// ---------------------------------------------------------------------------

/// A slot whose payload the current save placed (or will place) in the
/// target file, with its heap location — the post-save adoption list.
type Placement = (SegSlot, u64, u64);

/// Accumulates the payload heap of one save: each distinct slot's payload
/// is placed exactly once (keyed by slot identity), and on an append-save
/// slots already backed by the target file keep their existing offsets
/// without being read at all.
struct HeapBuilder<'a> {
    buf: BytesMut,
    /// Absolute file offset of the next placed payload.
    next: u64,
    placed: HashMap<usize, (u64, u64)>,
    /// Canonical path of the append target; slots whose payload source is
    /// this file are reused in place.
    reuse: Option<&'a Path>,
    /// Inode identity of the append target. A slot whose source path
    /// matches but whose handle is bound to a *different* inode (the file
    /// was vacuumed/replaced since that slot was opened) must not donate
    /// its stale offsets — it gets copied like any foreign payload.
    reuse_id: Option<FileId>,
    /// Distinct old-heap extents kept alive by this save (dead-space
    /// accounting for the auto-vacuum trigger).
    reused: std::collections::HashSet<(u64, u64)>,
    placements: Vec<Placement>,
}

impl<'a> HeapBuilder<'a> {
    fn new(base: u64, reuse: Option<&'a Path>, reuse_id: Option<FileId>) -> HeapBuilder<'a> {
        HeapBuilder {
            buf: BytesMut::new(),
            next: base,
            placed: HashMap::new(),
            reuse,
            reuse_id,
            reused: std::collections::HashSet::new(),
            placements: Vec::new(),
        }
    }

    /// Old-heap bytes still referenced by the metadata this save writes.
    fn reused_bytes(&self) -> u64 {
        self.reused.iter().map(|&(_, len)| len).sum()
    }

    /// Returns the heap location of `slot`'s payload, placing it on first
    /// sight. Disk-backed slots are raw-copied from their source without
    /// decoding; fresh slots are encoded from their resident payload.
    fn place(&mut self, slot: &SegSlot) -> Result<(u64, u64), StorageError> {
        if let Some(loc) = slot.disk_loc() {
            if self.reuse.is_some()
                && loc.source.path() == self.reuse
                && (self.reuse_id.is_none() || loc.source.file_id() == self.reuse_id)
            {
                self.reused.insert((loc.offset, loc.len));
                return Ok((loc.offset, loc.len));
            }
        }
        if let Some(&at) = self.placed.get(&slot.ident()) {
            return Ok(at);
        }
        let raw = match slot.disk_loc() {
            Some(loc) => loc.source.read_at(loc.offset, loc.len)?,
            None => {
                let enc = slot.try_enc()?;
                let mut v = Vec::with_capacity(payload_encoded_len(&enc));
                encode_payload(&enc, &mut v);
                v
            }
        };
        let at = (self.next, raw.len() as u64);
        self.buf.put_slice(&raw);
        self.next += at.1;
        self.placed.insert(slot.ident(), at);
        self.placements.push((slot.clone(), at.0, at.1));
        Ok(at)
    }
}

/// Writes one column's metadata record, placing its payloads in the heap.
fn put_column_v6<B: BufMut>(
    meta: &mut B,
    heap: &mut HeapBuilder<'_>,
    c: &EncodedColumn,
) -> Result<(), StorageError> {
    put_dict(meta, c.ty(), c.dict());
    let flags = if c.encoding_pinned() { FLAG_PINNED } else { 0 };
    meta.put_u8(flags);
    meta.put_u64_le(c.nominal_segment_rows());
    meta.put_u32_le(c.segment_count() as u32);
    for (i, slot) in c.segments().iter().enumerate() {
        let (off, len) = heap.place(slot)?;
        let mut tag = match slot.encoding() {
            Encoding::Bitmap => ENC_BITMAP,
            Encoding::Rle => ENC_RLE,
        };
        // Bit 1 records the *segment-range* pin only; the whole-column pin
        // lives in the column flags byte, so the two survive independently.
        if c.segment_pin_raw(i) {
            tag |= SEG_FLAG_PINNED;
        }
        meta.put_u8(tag);
        meta.put_u64_le(off);
        meta.put_u64_le(len);
        meta.put_u64_le(slot.rows());
        meta.put_u64_le(slot.run_count());
        meta.put_u64_le(slot.compressed_bytes() as u64);
        meta.put_u32_le(slot.distinct_count() as u32);
        for &id in slot.present_ids() {
            meta.put_u32_le(id);
        }
        for &n in slot.ones() {
            meta.put_u64_le(n);
        }
    }
    put_zones(meta, c.zones());
    Ok(())
}

fn put_table_v6<B: BufMut>(
    meta: &mut B,
    heap: &mut HeapBuilder<'_>,
    t: &Table,
) -> Result<(), StorageError> {
    put_str(meta, t.name());
    put_schema(meta, t.schema());
    meta.put_u64_le(t.rows());
    for c in t.columns() {
        put_column_v6(meta, heap, c)?;
    }
    Ok(())
}

/// What a save writes: one table, or a catalog snapshot.
pub(crate) enum Content<'a> {
    /// A single-table file.
    Table(&'a Table),
    /// A catalog file (table count + tables).
    Catalog(Vec<Arc<Table>>),
}

impl Content<'_> {
    fn tables(&self) -> Vec<&Table> {
        match self {
            Content::Table(t) => vec![t],
            Content::Catalog(ts) => ts.iter().map(|t| t.as_ref()).collect(),
        }
    }

    /// An owning copy (cheap: tables share their columns by `Arc`) for the
    /// background vacuum, which outlives the borrow a save holds.
    pub(crate) fn to_owned_content(&self) -> OwnedContent {
        match self {
            Content::Table(t) => OwnedContent::Table((*t).clone()),
            Content::Catalog(ts) => OwnedContent::Catalog(ts.clone()),
        }
    }
}

/// An owning [`Content`] — what a background vacuum task carries across
/// threads.
pub(crate) enum OwnedContent {
    /// A single-table file.
    Table(Table),
    /// A catalog file.
    Catalog(Vec<Arc<Table>>),
}

impl OwnedContent {
    /// Borrows back as a [`Content`] for the writer paths.
    pub(crate) fn as_content(&self) -> Content<'_> {
        match self {
            OwnedContent::Table(t) => Content::Table(t),
            OwnedContent::Catalog(ts) => Content::Catalog(ts.clone()),
        }
    }
}

fn put_content<B: BufMut>(
    meta: &mut B,
    heap: &mut HeapBuilder<'_>,
    what: &Content<'_>,
) -> Result<(), StorageError> {
    match what {
        Content::Table(t) => put_table_v6(meta, heap, t),
        Content::Catalog(ts) => {
            meta.put_u32_le(ts.len() as u32);
            for t in ts {
                put_table_v6(meta, heap, t)?;
            }
            Ok(())
        }
    }
}

/// Builds a complete v6 image in memory (fresh saves and the in-memory
/// encode path).
fn build_image(what: &Content<'_>) -> Result<(Bytes, Vec<Placement>), StorageError> {
    let mut heap = HeapBuilder::new(PREAMBLE_LEN as u64, None, None);
    let mut meta = BytesMut::new();
    put_content(&mut meta, &mut heap, what)?;
    let meta_off = heap.next;
    let HeapBuilder {
        buf, placements, ..
    } = heap;
    let mut out = BytesMut::new();
    out.put_u32_le(MAGIC);
    out.put_u16_le(VERSION);
    out.put_slice(buf.freeze().as_slice());
    out.put_slice(meta.freeze().as_slice());
    out.put_u64_le(meta_off);
    out.put_u32_le(MAGIC);
    Ok((out.freeze(), placements))
}

/// The product of [`build_append_tail`]: the bytes to write from the old
/// metadata offset, the adoption list, and the heap accounting the
/// auto-vacuum trigger wants.
struct AppendTail {
    tail: Bytes,
    placements: Vec<Placement>,
    /// Old-heap bytes the new metadata still references.
    live_reused: u64,
    /// Heap end (= new metadata offset) after this save.
    heap_end: u64,
}

/// Builds the tail of an append-save: payloads new to the target file,
/// the rewritten metadata region, and the footer — everything from the old
/// metadata offset to the new end of file.
fn build_append_tail(
    what: &Content<'_>,
    base: u64,
    target: &Path,
    target_id: Option<FileId>,
) -> Result<AppendTail, StorageError> {
    let mut heap = HeapBuilder::new(base, Some(target), target_id);
    let mut meta = BytesMut::new();
    put_content(&mut meta, &mut heap, what)?;
    let meta_off = heap.next;
    let live_reused = heap.reused_bytes();
    let HeapBuilder {
        buf, placements, ..
    } = heap;
    let mut tail = BytesMut::new();
    tail.put_slice(buf.freeze().as_slice());
    tail.put_slice(meta.freeze().as_slice());
    tail.put_u64_le(meta_off);
    tail.put_u32_le(MAGIC);
    Ok(AppendTail {
        tail: tail.freeze(),
        placements,
        live_reused,
        heap_end: meta_off,
    })
}

/// Decides whether saving `what` onto `path` can append: the target must
/// be a healthy v6 container that already backs at least one of the
/// content's segments. Returns the old metadata offset (where appended
/// payloads go) and the canonical target path. Any doubt falls back to a
/// full rewrite.
fn append_point(what: &Content<'_>, path: &Path) -> Option<(u64, PathBuf, Option<FileId>)> {
    let canon = std::fs::canonicalize(path).ok()?;
    // Identity of the inode currently at the path: a slot opened before a
    // vacuum replaced the file holds offsets into the *old* inode, and
    // must not be treated as already-present in the new one.
    let target_id = std::fs::metadata(&canon).ok().and_then(|m| file_id_of(&m));
    let referenced = what.tables().iter().any(|t| {
        t.columns().iter().any(|c| {
            c.segments().iter().any(|s| {
                s.disk_loc().is_some_and(|l| {
                    l.source.path() == Some(canon.as_path())
                        && (target_id.is_none() || l.source.file_id() == target_id)
                })
            })
        })
    });
    if !referenced {
        return None;
    }
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path).ok()?;
    let len = f.metadata().ok()?.len();
    if len < (PREAMBLE_LEN + FOOTER_LEN) as u64 {
        return None;
    }
    let mut head = [0u8; PREAMBLE_LEN];
    f.read_exact(&mut head).ok()?;
    if u32::from_le_bytes(head[0..4].try_into().unwrap()) != MAGIC
        || u16::from_le_bytes(head[4..6].try_into().unwrap()) != VERSION
    {
        return None;
    }
    f.seek(SeekFrom::Start(len - FOOTER_LEN as u64)).ok()?;
    let mut foot = [0u8; FOOTER_LEN];
    f.read_exact(&mut foot).ok()?;
    if u32::from_le_bytes(foot[8..12].try_into().unwrap()) != MAGIC {
        return None;
    }
    let meta_off = u64::from_le_bytes(foot[0..8].try_into().unwrap());
    if meta_off < PREAMBLE_LEN as u64 || meta_off > len - FOOTER_LEN as u64 {
        return None;
    }
    Some((meta_off, canon, target_id))
}

/// After a successful save: freshly built segments adopt their new on-disk
/// location (and enrol in the buffer cache, becoming evictable). Slots
/// already backed elsewhere keep their original source.
fn adopt_placements(path: &Path, placements: Vec<Placement>) -> Result<(), StorageError> {
    if placements.is_empty() {
        return Ok(());
    }
    let file = std::fs::File::open(path)?;
    let canon = std::fs::canonicalize(path)?;
    let source = Arc::new(PayloadSource::for_file(file, canon));
    let store = segment_cache();
    for (slot, offset, len) in placements {
        let loc = DiskLoc {
            source: Arc::clone(&source),
            offset,
            len,
        };
        if slot.attach_disk(loc) {
            store.adopt(&slot);
        }
    }
    Ok(())
}

/// Durable whole-file replacement: the image is written to a sibling temp
/// file, synced, and atomically renamed over the target — the rename is
/// the commit point, so a crash leaves either the old file or the new one,
/// never a half-written hybrid.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(name);
    let res = (|| -> Result<(), StorageError> {
        let mut f = fault::create(&tmp)?;
        fault::write_all(&mut f, bytes)?;
        fault::sync(&f)?;
        drop(f);
        fault::rename(&tmp, path)?;
        Ok(())
    })();
    if res.is_err() {
        // Best-effort cleanup; under a simulated crash this fails too (as
        // it would for real) and the stale temp file is simply re-created
        // by the next save.
        let _ = fault::remove_file(&tmp);
    }
    res
}

/// What an append-save leaves behind, for the auto-vacuum trigger: heap
/// accounting plus the exact `(file_len, meta_off)` it committed (so the
/// background task can tell whether it is still looking at this save).
struct AppendStats {
    dead_bytes: u64,
    heap_bytes: u64,
    file_len: u64,
    meta_off: u64,
}

/// In-place tail overwrite under a rollback journal (the append-save
/// commit protocol; see [`crate::wal`]).
fn save_append(
    what: &Content<'_>,
    path: &Path,
    base: u64,
    canon: &Path,
    target_id: Option<FileId>,
) -> Result<AppendStats, StorageError> {
    let AppendTail {
        tail,
        placements,
        live_reused,
        heap_end,
    } = build_append_tail(what, base, canon, target_id)?;
    // 1. Journal the old tail durably — before the target is touched.
    let guard = wal::TailGuard::begin(path, base)?;
    // 2. Overwrite the tail and sync.
    let write = (|| -> Result<(), StorageError> {
        use std::io::{Seek, SeekFrom};
        let mut f = fault::open_rw(path)?;
        f.seek(SeekFrom::Start(base))?;
        fault::write_all(&mut f, tail.as_slice())?;
        fault::set_len(&f, base + tail.len() as u64)?;
        fault::sync(&f)?;
        Ok(())
    })();
    if let Err(e) = write {
        guard.abort(); // roll back in-process; or at next open if we "died"
        return Err(e);
    }
    // 3. Commit point: delete the journal. If even this fails, the next
    //    open rolls back to the old catalog — so adoption must not happen.
    guard.commit()?;
    // 4. Only now — the file is fully committed — may fresh slots adopt
    //    their on-disk locations.
    adopt_placements(path, placements)?;
    let old_heap = base - PREAMBLE_LEN as u64;
    Ok(AppendStats {
        dead_bytes: old_heap.saturating_sub(live_reused),
        heap_bytes: heap_end - PREAMBLE_LEN as u64,
        file_len: base + tail.len() as u64,
        meta_off: heap_end,
    })
}

/// Full-rewrite save: a fresh image through [`write_atomic`].
fn save_rewrite(what: &Content<'_>, path: &Path) -> Result<(), StorageError> {
    let (image, placements) = build_image(what)?;
    write_atomic(path, image.as_slice())?;
    adopt_placements(path, placements)
}

fn save_content(what: &Content<'_>, path: &Path) -> Result<(), StorageError> {
    let lock = wal::path_lock(path);
    let stats = {
        let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        // A previous save may have died here: honor its journal first, so
        // `append_point` sees the last committed footer.
        if path.exists() {
            wal::recover(path)?;
        }
        match append_point(what, path) {
            Some((base, canon, id)) => Some(save_append(what, path, base, &canon, id)?),
            None => {
                save_rewrite(what, path)?;
                None
            }
        }
    };
    // Outside the lock: the background vacuum takes it itself.
    if let Some(s) = stats {
        crate::vacuum::consider_auto(
            what,
            path,
            s.dead_bytes,
            s.heap_bytes,
            (s.file_len, s.meta_off),
        );
    }
    Ok(())
}

/// Compacts `what` into a fresh heap at `path` via [`write_atomic`], then
/// *rebinds* every live slot to its location in the compacted file (the
/// vacuum path — offsets move, so this overwrites existing `DiskLoc`s
/// rather than attach-once). The caller must hold the file's
/// [`wal::path_lock`]. Returns `(before_bytes, after_bytes,
/// live_payload_bytes, segments)`.
pub(crate) fn rewrite_compacted(
    what: &Content<'_>,
    path: &Path,
) -> Result<(u64, u64, u64, usize), StorageError> {
    if path.exists() {
        wal::recover(path)?;
    }
    let before = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let (image, placements) = build_image(what)?;
    let after = image.len() as u64;
    write_atomic(path, image.as_slice())?;
    // Rebind: every distinct slot was placed, so every live payload now
    // points into the compacted file. Slots opened from the *old* inode by
    // other snapshots keep their open handle (the unlinked inode stays
    // readable on unix) and fall back to copy-on-save thanks to the
    // file-identity check in `append_point`/`HeapBuilder::place`.
    let file = std::fs::File::open(path)?;
    let canon = std::fs::canonicalize(path)?;
    let source = Arc::new(PayloadSource::for_file(file, canon));
    let store = segment_cache();
    let segments = placements.len();
    let mut live = 0u64;
    for (slot, offset, len) in placements {
        live += len;
        let loc = DiskLoc {
            source: Arc::clone(&source),
            offset,
            len,
        };
        if slot.rebind_disk(loc) {
            store.adopt(&slot);
        }
    }
    Ok((before, after, live, segments))
}

/// Reads and validates the footer of a v6 file without decoding anything
/// else. Returns `(file_len, meta_off)`.
pub(crate) fn v6_footer(path: &Path) -> Result<(u64, u64), StorageError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; PREAMBLE_LEN];
    f.read_exact(&mut head).map_err(|_| eof())?;
    check_header(&mut &head[..])?;
    let version = u16::from_le_bytes(head[4..6].try_into().unwrap());
    if version < 6 {
        return Err(StorageError::PersistError(format!(
            "version {version} file has no payload heap"
        )));
    }
    let len = f.metadata()?.len();
    if len < (PREAMBLE_LEN + FOOTER_LEN) as u64 {
        return Err(torn_tail(path, format!("file is only {len} bytes")));
    }
    f.seek(SeekFrom::Start(len - FOOTER_LEN as u64))?;
    let mut foot = [0u8; FOOTER_LEN];
    f.read_exact(&mut foot)?;
    let tail_magic = u32::from_le_bytes(foot[8..12].try_into().unwrap());
    if tail_magic != MAGIC {
        return Err(torn_tail(
            path,
            format!("bad footer magic 0x{tail_magic:08x}"),
        ));
    }
    let meta_off = u64::from_le_bytes(foot[0..8].try_into().unwrap());
    if meta_off < PREAMBLE_LEN as u64 || meta_off > len - FOOTER_LEN as u64 {
        return Err(torn_tail(
            path,
            format!("footer metadata offset {meta_off} outside file of {len} bytes"),
        ));
    }
    Ok((len, meta_off))
}

/// The typed corruption error for a file whose footer does not validate:
/// an interrupted save tore the tail and no rollback journal survives to
/// repair it. Carries a recovery hint.
fn torn_tail(path: &Path, detail: String) -> StorageError {
    StorageError::Corrupt(format!(
        "{}: torn tail ({detail}); an interrupted save corrupted the footer and \
         no rollback journal ({}) is present to roll it back — restore the file \
         from a copy or re-create it with a fresh save",
        path.display(),
        wal::wal_path(path).display(),
    ))
}

// ---------------------------------------------------------------------------
// v6 reader: footer, metadata region, paged-out slots.
// ---------------------------------------------------------------------------

/// Slots decoded so far in this file, keyed by heap location — records
/// with identical locations (columns shared across catalog tables) come
/// back `Arc`-shared, so a cached payload keeps serving every snapshot.
type SlotDedup = HashMap<(u64, u64), SegSlot>;

/// Reads one segment's metadata record into a paged-out slot.
fn get_seg_slot<B: Buf>(
    buf: &mut B,
    dict_len: usize,
    source: &Arc<PayloadSource>,
    heap_end: u64,
    dedup: &mut SlotDedup,
) -> Result<(SegSlot, bool), StorageError> {
    let corrupt = |m: String| StorageError::PersistError(m);
    if buf.remaining() < 1 + 5 * 8 + 4 {
        return Err(eof());
    }
    let tag = buf.get_u8();
    if tag & !(ENC_RLE | SEG_FLAG_PINNED) != 0 {
        return Err(corrupt(format!("unknown segment tag {tag:#04x}")));
    }
    let pinned = tag & SEG_FLAG_PINNED != 0;
    let encoding = if tag & ENC_RLE != 0 {
        Encoding::Rle
    } else {
        Encoding::Bitmap
    };
    let off = buf.get_u64_le();
    let len = buf.get_u64_le();
    let rows = buf.get_u64_le();
    let runs = buf.get_u64_le();
    let bytes = buf.get_u64_le();
    let present = buf.get_u32_le() as usize;
    let end = off
        .checked_add(len)
        .ok_or_else(|| corrupt("segment payload offset overflows".into()))?;
    if off < PREAMBLE_LEN as u64 || len == 0 || end > heap_end {
        return Err(corrupt(format!(
            "segment payload [{off}, {end}) outside the heap [{}, {heap_end})",
            PREAMBLE_LEN
        )));
    }
    if rows == 0 {
        return Err(corrupt("empty segment".into()));
    }
    if runs == 0 || runs > rows {
        return Err(corrupt(format!(
            "segment of {rows} rows claims {runs} runs"
        )));
    }
    if present == 0 {
        return Err(corrupt(format!(
            "segment of {rows} rows with no present values"
        )));
    }
    if buf.remaining() < present * (4 + 8) {
        return Err(eof());
    }
    let mut ids = Vec::with_capacity(present);
    for _ in 0..present {
        let id = buf.get_u32_le();
        if id as usize >= dict_len {
            return Err(corrupt(format!(
                "segment id {id} beyond dictionary of {dict_len}"
            )));
        }
        if ids.last().is_some_and(|&prev| prev >= id) {
            return Err(corrupt("present ids not strictly ascending".into()));
        }
        ids.push(id);
    }
    let mut ones = Vec::with_capacity(present);
    let mut total = 0u64;
    for _ in 0..present {
        let n = buf.get_u64_le();
        if n == 0 {
            return Err(corrupt("present id with zero rows".into()));
        }
        total = total
            .checked_add(n)
            .ok_or_else(|| corrupt("per-id row counts overflow".into()))?;
        ones.push(n);
    }
    if total != rows {
        return Err(corrupt(format!(
            "per-id row counts sum to {total}, segment has {rows} rows"
        )));
    }
    let meta = SegMeta {
        rows,
        present_ids: ids.into(),
        ones: ones.into(),
        runs,
        bytes: usize::try_from(bytes)
            .map_err(|_| corrupt("segment byte size beyond address space".into()))?,
        encoding,
    };
    if let Some(shared) = dedup.get(&(off, len)) {
        // A previously decoded record (a column shared across catalog
        // tables) already owns this payload; the stats must agree.
        let m = shared.meta();
        if m.rows != meta.rows
            || m.encoding != meta.encoding
            || *m.present_ids != *meta.present_ids
            || *m.ones != *meta.ones
        {
            return Err(corrupt(
                "records share a payload but disagree on its stats".into(),
            ));
        }
        if pinned {
            shared.set_pinned(true);
        }
        return Ok((shared.clone(), pinned));
    }
    let loc = DiskLoc {
        source: Arc::clone(source),
        offset: off,
        len,
    };
    let slot = SegSlot::on_disk(meta, loc, pinned);
    dedup.insert((off, len), slot.clone());
    Ok((slot, pinned))
}

fn get_column_v6<B: Buf>(
    buf: &mut B,
    source: &Arc<PayloadSource>,
    heap_end: u64,
    dedup: &mut SlotDedup,
) -> Result<EncodedColumn, StorageError> {
    let (ty, dict) = get_dict(buf)?;
    if buf.remaining() < 1 {
        return Err(eof());
    }
    let flags = buf.get_u8();
    let dict_len = dict.len();
    let (seg_rows, seg_count) = get_dir_header(buf)?;
    let mut slots = Vec::with_capacity(seg_count);
    let mut pins = Vec::with_capacity(seg_count);
    for _ in 0..seg_count {
        let (slot, pin) = get_seg_slot(buf, dict_len, source, heap_end, dedup)?;
        pins.push(pin);
        slots.push(slot);
    }
    let zones = get_zones(buf, seg_count, dict_len)?;
    let mut col = EncodedColumn::from_slots_zoned(ty, dict, slots, zones, seg_rows);
    col.set_segment_pins(pins);
    col.set_encoding_pinned(flags & FLAG_PINNED != 0);
    Ok(col)
}

/// Decodes one table's metadata record; its columns come back paged out.
/// Runs the metadata tier of the invariants only — payloads are validated
/// against their stats as they fault in.
fn get_table_v6<B: Buf>(
    buf: &mut B,
    source: &Arc<PayloadSource>,
    heap_end: u64,
    dedup: &mut SlotDedup,
) -> Result<Table, StorageError> {
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    if buf.remaining() < 8 {
        return Err(eof());
    }
    let rows = buf.get_u64_le();
    let mut columns = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        let col = get_column_v6(buf, source, heap_end, dedup)?;
        if col.rows() != rows {
            return Err(StorageError::PersistError(format!(
                "column covers {} rows, table claims {rows}",
                col.rows()
            )));
        }
        col.check_meta_invariants()?;
        columns.push(Arc::new(col));
    }
    Table::new(name, schema, columns)
}

/// Locates the metadata region of a v6 image: validates the footer and
/// returns `(metadata slice, heap end)`.
fn v6_regions(buf: &Bytes) -> Result<(Bytes, u64), StorageError> {
    let n = buf.len();
    if n < PREAMBLE_LEN + FOOTER_LEN {
        return Err(eof());
    }
    let s = buf.as_slice();
    let tail_magic = u32::from_le_bytes(s[n - 4..n].try_into().unwrap());
    if tail_magic != MAGIC {
        return Err(StorageError::PersistError(format!(
            "bad footer magic 0x{tail_magic:08x}"
        )));
    }
    let meta_off = u64::from_le_bytes(s[n - FOOTER_LEN..n - 4].try_into().unwrap());
    if meta_off < PREAMBLE_LEN as u64 || meta_off > (n - FOOTER_LEN) as u64 {
        return Err(StorageError::PersistError(format!(
            "footer metadata offset {meta_off} outside file of {n} bytes"
        )));
    }
    Ok((buf.slice(meta_off as usize..n - FOOTER_LEN), meta_off))
}

// ---------------------------------------------------------------------------
// Public encode/decode/save/read entry points.
// ---------------------------------------------------------------------------

/// Serializes one table as a complete current-format image (payload heap,
/// metadata region, footer).
///
/// # Panics
/// Panics when a lazily opened segment's backing file can no longer be
/// read (it changed or vanished under us) — the same contract as faulting
/// the segment in. [`save_table`] reports such errors instead.
pub fn encode_table(t: &Table) -> Bytes {
    let (image, _) = build_image(&Content::Table(t))
        .unwrap_or_else(|e| panic!("encode_table: cannot re-read segment payloads: {e}"));
    image
}

/// Serializes one table in the legacy monolithic version-1 layout (one
/// full-length bitmap per dictionary value). Kept for downgrade paths and
/// the cross-version round-trip tests. Faults lazily opened segments in.
pub fn encode_table_v1(t: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(1);
    put_str(&mut buf, t.name());
    put_schema(&mut buf, t.schema());
    buf.put_u64_le(t.rows());
    for c in t.columns() {
        put_column_v1(&mut buf, c);
    }
    buf.freeze()
}

/// Deserializes one table (any supported format version). A v6 image
/// opens lazily: columns carry metadata only, and payloads fault in from
/// the image on first touch.
pub fn decode_table(buf: Bytes) -> Result<Table, StorageError> {
    let mut cursor = buf.clone();
    let version = check_header(&mut cursor)?;
    if version < 6 {
        return decode_table_body(&mut cursor, version);
    }
    let (mut meta, heap_end) = v6_regions(&buf)?;
    let source = Arc::new(PayloadSource::Bytes(buf));
    let mut dedup = SlotDedup::new();
    let t = get_table_v6(&mut meta, &source, heap_end, &mut dedup)?;
    if meta.remaining() != 0 {
        return Err(StorageError::PersistError(
            "trailing bytes after table metadata".into(),
        ));
    }
    Ok(t)
}

fn check_header(buf: &mut impl Buf) -> Result<u16, StorageError> {
    if buf.remaining() < PREAMBLE_LEN {
        return Err(eof());
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(StorageError::PersistError(format!(
            "bad magic 0x{magic:08x}"
        )));
    }
    let version = buf.get_u16_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(StorageError::PersistError(format!(
            "unsupported version {version}"
        )));
    }
    Ok(version)
}

fn decode_table_body(buf: &mut impl Buf, version: u16) -> Result<Table, StorageError> {
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    if buf.remaining() < 8 {
        return Err(eof());
    }
    let rows = buf.get_u64_le();
    let mut columns = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        columns.push(Arc::new(get_column(buf, rows, version)?));
    }
    Table::new(name, schema, columns)
}

/// Writes a table to a file. When the file already backs some of the
/// table's segments (it was lazily opened from there, or saved there
/// before), the save *appends*: reused payloads keep their offsets, new
/// payloads go after the heap, and only the metadata region and footer are
/// rewritten — O(new data + metadata). Freshly built segments then adopt
/// their on-disk location and become evictable.
pub fn save_table(t: &Table, path: impl AsRef<Path>) -> Result<(), StorageError> {
    save_content(&Content::Table(t), path.as_ref())
}

/// Runs crash recovery for `path` (under its save lock) before a read:
/// a hot rollback journal from an interrupted save is applied — or, when
/// torn, discarded — so the read sees the last committed state.
fn recover_before_read(path: &Path) -> Result<(), StorageError> {
    if !path.exists() && !wal::wal_path(path).exists() {
        return Ok(());
    }
    let lock = wal::path_lock(path);
    let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    wal::recover(path)?;
    Ok(())
}

/// Reads a table from a file. A v6 file opens as metadata only — segment
/// payloads stay on disk and fault in through the buffer cache on first
/// touch. Older versions load fully resident. Detects an interrupted save
/// first and rolls the file back to its last committed footer.
pub fn read_table(path: impl AsRef<Path>) -> Result<Table, StorageError> {
    let path = path.as_ref();
    recover_before_read(path)?;
    read_table_raw(path)
}

/// [`read_table`] without the recovery step — for callers (vacuum) that
/// already hold the file's save lock and have recovered it.
pub(crate) fn read_table_raw(path: &Path) -> Result<Table, StorageError> {
    match open_v6_file(path)? {
        None => {
            let bytes = std::fs::read(path)?;
            decode_table(Bytes::from(bytes))
        }
        Some((mut meta, heap_end, source)) => {
            let mut dedup = SlotDedup::new();
            let t = get_table_v6(&mut meta, &source, heap_end, &mut dedup)?;
            if meta.remaining() != 0 {
                return Err(StorageError::PersistError(
                    "trailing bytes after table metadata".into(),
                ));
            }
            Ok(t)
        }
    }
}

/// Opens `path` and, when it is a v6 file, reads *only* the preamble,
/// footer, and metadata region — never the payload heap. Returns `None`
/// for older versions (whose whole-file decode path still applies).
#[allow(clippy::type_complexity)]
fn open_v6_file(path: &Path) -> Result<Option<(Bytes, u64, Arc<PayloadSource>)>, StorageError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; PREAMBLE_LEN];
    file.read_exact(&mut head)
        .map_err(|_| eof())
        .and_then(|()| check_header(&mut &head[..]).map(|_| ()))?;
    let version = u16::from_le_bytes(head[4..6].try_into().unwrap());
    if version < 6 {
        return Ok(None);
    }
    let len = file.metadata()?.len();
    if len < (PREAMBLE_LEN + FOOTER_LEN) as u64 {
        return Err(torn_tail(path, format!("file is only {len} bytes")));
    }
    file.seek(SeekFrom::Start(len - FOOTER_LEN as u64))?;
    let mut foot = [0u8; FOOTER_LEN];
    file.read_exact(&mut foot)?;
    let tail_magic = u32::from_le_bytes(foot[8..12].try_into().unwrap());
    if tail_magic != MAGIC {
        return Err(torn_tail(
            path,
            format!("bad footer magic 0x{tail_magic:08x}"),
        ));
    }
    let meta_off = u64::from_le_bytes(foot[0..8].try_into().unwrap());
    if meta_off < PREAMBLE_LEN as u64 || meta_off > len - FOOTER_LEN as u64 {
        return Err(torn_tail(
            path,
            format!("footer metadata offset {meta_off} outside file of {len} bytes"),
        ));
    }
    file.seek(SeekFrom::Start(meta_off))?;
    let mut meta = vec![0u8; (len - FOOTER_LEN as u64 - meta_off) as usize];
    file.read_exact(&mut meta)?;
    let canon = std::fs::canonicalize(path)?;
    let source = Arc::new(PayloadSource::for_file(file, canon));
    Ok(Some((Bytes::from(meta), meta_off, source)))
}

/// Serializes all tables of a catalog as one current-format image. Each
/// distinct (`Arc`-shared) segment is stored once, however many table
/// versions reference it.
///
/// # Panics
/// See [`encode_table`].
pub fn encode_catalog(cat: &crate::catalog::Catalog) -> Bytes {
    let (image, _) = build_image(&Content::Catalog(cat.snapshot()))
        .unwrap_or_else(|e| panic!("encode_catalog: cannot re-read segment payloads: {e}"));
    image
}

/// Deserializes a catalog (any supported format version). In a v6 image,
/// records with identical heap locations come back as one shared slot, so
/// columns shared across table versions stay shared — and cached once.
pub fn decode_catalog(buf: Bytes) -> Result<crate::catalog::Catalog, StorageError> {
    let mut cursor = buf.clone();
    let version = check_header(&mut cursor)?;
    if version < 6 {
        if cursor.remaining() < 4 {
            return Err(eof());
        }
        let count = cursor.get_u32_le();
        let cat = crate::catalog::Catalog::new();
        for _ in 0..count {
            cat.create(decode_table_body(&mut cursor, version)?)?;
        }
        return Ok(cat);
    }
    let (mut meta, heap_end) = v6_regions(&buf)?;
    let source = Arc::new(PayloadSource::Bytes(buf));
    decode_catalog_meta(&mut meta, heap_end, &source)
}

fn decode_catalog_meta(
    meta: &mut Bytes,
    heap_end: u64,
    source: &Arc<PayloadSource>,
) -> Result<crate::catalog::Catalog, StorageError> {
    if meta.remaining() < 4 {
        return Err(eof());
    }
    let count = meta.get_u32_le();
    let cat = crate::catalog::Catalog::new();
    let mut dedup = SlotDedup::new();
    for _ in 0..count {
        cat.create(get_table_v6(meta, source, heap_end, &mut dedup)?)?;
    }
    if meta.remaining() != 0 {
        return Err(StorageError::PersistError(
            "trailing bytes after catalog metadata".into(),
        ));
    }
    Ok(cat)
}

/// Writes a catalog to a file (append-save semantics — see [`save_table`]).
/// This is what makes the CLI's `save` O(new data + metadata) instead of
/// O(catalog).
pub fn save_catalog(
    cat: &crate::catalog::Catalog,
    path: impl AsRef<Path>,
) -> Result<(), StorageError> {
    save_content(&Content::Catalog(cat.snapshot()), path.as_ref())
}

/// Reads a catalog from a file (lazily for v6 — see [`read_table`]).
/// Detects an interrupted save first and rolls the file back to its last
/// committed footer.
pub fn read_catalog(path: impl AsRef<Path>) -> Result<crate::catalog::Catalog, StorageError> {
    let path = path.as_ref();
    recover_before_read(path)?;
    read_catalog_raw(path)
}

/// [`read_catalog`] without the recovery step — for callers (vacuum) that
/// already hold the file's save lock and have recovered it.
pub(crate) fn read_catalog_raw(path: &Path) -> Result<crate::catalog::Catalog, StorageError> {
    match open_v6_file(path)? {
        None => {
            let bytes = std::fs::read(path)?;
            decode_catalog(Bytes::from(bytes))
        }
        Some((mut meta, heap_end, source)) => decode_catalog_meta(&mut meta, heap_end, &source),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::encoded::Encoding;
    use crate::segment::DEFAULT_SEGMENT_ROWS;
    use crate::store::budget_guard;

    fn sample() -> Table {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("score", ValueType::Float),
                ("active", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::int(i),
                    Value::str(format!("user{}", i % 10)),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::float(i as f64 / 3.0)
                    },
                    Value::Bool(i % 2 == 0),
                ]
            })
            .collect();
        Table::from_rows("users", schema, &rows).unwrap()
    }

    /// A table whose columns span several segments.
    fn multi_segment() -> Table {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000)
            .map(|i| vec![Value::int(i % 17), Value::int(i / 250)])
            .collect();
        Table::from_rows_with_segment_rows("multi", schema, &rows, 128).unwrap()
    }

    /// `multi_segment` with one column uniformly re-encoded RLE.
    fn mixed_encoding() -> Table {
        multi_segment()
            .with_column_encoding("v", Encoding::Rle)
            .unwrap()
    }

    /// `multi_segment` with a *mixed directory*: half of `k`'s segments
    /// recoded (and pinned) RLE, the other half left bitmap.
    fn mixed_directory() -> Table {
        let t = multi_segment();
        let segs = t.column_by_name("k").unwrap().segment_count();
        t.with_column_segment_range_encoding("k", Encoding::Rle, 0..segs / 2)
            .unwrap()
    }

    /// A unique temp path per test so parallel tests never collide.
    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cods_v6_{name}_{}.tbl", std::process::id()))
    }

    /// Total `(resident, on_disk)` over every column of a table.
    fn residency(t: &Table) -> (usize, usize) {
        t.columns().iter().fold((0, 0), |(r, d), c| {
            let (cr, cd) = c.residency_counts();
            (r + cr, d + cd)
        })
    }

    fn footer_meta_off(path: &Path) -> u64 {
        let raw = std::fs::read(path).unwrap();
        let n = raw.len();
        u64::from_le_bytes(raw[n - 12..n - 4].try_into().unwrap())
    }

    #[test]
    fn table_round_trip() {
        let t = sample();
        let bytes = encode_table(&t);
        let back = decode_table(bytes).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.to_rows(), t.to_rows());
    }

    #[test]
    fn multi_segment_round_trip_preserves_directory() {
        let t = multi_segment();
        let back = decode_table(encode_table(&t)).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        let col = back.column(0);
        assert_eq!(col.segment_count(), t.column(0).segment_count());
        assert_eq!(col.nominal_segment_rows(), 128);
        col.check_invariants().unwrap();
    }

    #[test]
    fn v6_open_is_metadata_only() {
        let t = mixed_directory()
            .with_column_encoding_pinned("v", Encoding::Rle)
            .unwrap();
        let back = decode_table(encode_table(&t)).unwrap();
        // Nothing resident until something touches a payload...
        let (resident, on_disk) = residency(&back);
        assert_eq!(resident, 0, "a v6 decode must not fault payloads in");
        assert!(on_disk > 0);
        // ...yet the full metadata surface is there: zones, pins,
        // per-segment encodings, stats.
        for (a, b) in t.columns().iter().zip(back.columns()) {
            assert_eq!(a.zones(), b.zones());
            assert_eq!(a.encoding_counts(), b.encoding_counts());
            assert_eq!(a.encoding_pinned(), b.encoding_pinned());
            for i in 0..a.segment_count() {
                assert_eq!(a.segment_encoding(i), b.segment_encoding(i));
                assert_eq!(a.segment_pinned(i), b.segment_pinned(i), "segment {i} pin");
                assert_eq!(a.segments()[i].present_ids(), b.segments()[i].present_ids());
                assert_eq!(a.segments()[i].ones(), b.segments()[i].ones());
                assert_eq!(
                    a.segments()[i].compressed_bytes(),
                    b.segments()[i].compressed_bytes()
                );
                assert_eq!(a.segments()[i].run_count(), b.segments()[i].run_count());
            }
        }
        // Touching the data faults in and matches byte for byte.
        assert_eq!(back.to_rows(), t.to_rows());
        back.check_invariants().unwrap();
    }

    #[test]
    fn mixed_directory_round_trips() {
        let t = mixed_directory();
        let before = t.column_by_name("k").unwrap();
        assert_eq!(before.uniform_encoding(), None, "directory must be mixed");
        let back = decode_table(encode_table(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        let col = back.column_by_name("k").unwrap();
        assert_eq!(col.encoding_counts(), before.encoding_counts());
        for i in 0..col.segment_count() {
            assert_eq!(col.segment_encoding(i), before.segment_encoding(i));
            assert_eq!(
                col.segment_pinned(i),
                before.segment_pinned(i),
                "segment {i} pin"
            );
        }
        assert_eq!(col.zones(), before.zones());
    }

    #[test]
    fn v1_file_still_decodes() {
        let t = multi_segment();
        let legacy = encode_table_v1(&t);
        let back = decode_table(legacy).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        back.check_invariants().unwrap();
        // Re-segmented at the default size on load.
        assert_eq!(back.column(0).nominal_segment_rows(), DEFAULT_SEGMENT_ROWS);
    }

    fn put_bitmap_segment(buf: &mut BytesMut, seg: &Segment) {
        buf.put_u64_le(seg.rows());
        buf.put_u32_le(seg.distinct_count() as u32);
        for &id in seg.present_ids() {
            buf.put_u32_le(id);
        }
        for bm in seg.bitmaps() {
            bm.encode(buf);
        }
    }

    /// Writes the version-2 layout (bitmap segment directory, no encoding
    /// byte) so the upgrade path stays covered now that the writer emits
    /// version 6.
    fn encode_table_v2(t: &Table) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(2);
        put_str(&mut buf, t.name());
        put_schema(&mut buf, t.schema());
        buf.put_u64_le(t.rows());
        for c in t.columns() {
            put_dict(&mut buf, c.ty(), c.dict());
            buf.put_u64_le(c.nominal_segment_rows());
            buf.put_u32_le(c.segment_count() as u32);
            for seg in c.segments() {
                let enc = seg.enc();
                put_bitmap_segment(&mut buf, enc.as_bitmap().expect("v2 writer is bitmap-only"));
            }
        }
        buf.freeze()
    }

    /// Writes the eager tagless directory shared by the v3/v4 test writers.
    fn put_uniform_directory(buf: &mut BytesMut, c: &EncodedColumn) {
        buf.put_u64_le(c.nominal_segment_rows());
        buf.put_u32_le(c.segment_count() as u32);
        for seg in c.segments() {
            match seg.enc() {
                SegmentEnc::Bitmap(s) => put_bitmap_segment(buf, &s),
                SegmentEnc::Rle(s) => s.seq().encode(buf),
            }
        }
    }

    fn uniform_enc_byte(c: &EncodedColumn) -> u8 {
        match c.uniform_encoding().expect("legacy writers are uniform") {
            Encoding::Bitmap => ENC_BITMAP,
            Encoding::Rle => ENC_RLE,
        }
    }

    /// Writes the version-3 layout (per-encoding segment directories, no
    /// flags byte, no zones) so the v3 upgrade path stays covered.
    fn encode_table_v3(t: &Table) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(3);
        put_str(&mut buf, t.name());
        put_schema(&mut buf, t.schema());
        buf.put_u64_le(t.rows());
        for c in t.columns() {
            put_dict(&mut buf, c.ty(), c.dict());
            buf.put_u8(uniform_enc_byte(c));
            put_uniform_directory(&mut buf, c);
        }
        buf.freeze()
    }

    /// Writes the version-4 layout (one column-wide `enc` byte + flags +
    /// zones — homogeneous directories only) so the v4 upgrade path stays
    /// covered.
    fn encode_table_v4(t: &Table) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(4);
        put_str(&mut buf, t.name());
        put_schema(&mut buf, t.schema());
        buf.put_u64_le(t.rows());
        for c in t.columns() {
            put_dict(&mut buf, c.ty(), c.dict());
            buf.put_u8(uniform_enc_byte(c));
            buf.put_u8(if c.encoding_pinned() { FLAG_PINNED } else { 0 });
            put_uniform_directory(&mut buf, c);
            put_zones(&mut buf, c.zones());
        }
        buf.freeze()
    }

    /// Writes the version-5 layout (eager payloads behind per-segment
    /// encoding tags) so the v5 → v6 upgrade path stays covered.
    fn encode_table_v5(t: &Table) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(5);
        put_str(&mut buf, t.name());
        put_schema(&mut buf, t.schema());
        buf.put_u64_le(t.rows());
        for c in t.columns() {
            put_dict(&mut buf, c.ty(), c.dict());
            buf.put_u8(if c.encoding_pinned() { FLAG_PINNED } else { 0 });
            buf.put_u64_le(c.nominal_segment_rows());
            buf.put_u32_le(c.segment_count() as u32);
            for (i, slot) in c.segments().iter().enumerate() {
                let enc = slot.enc();
                let mut tag = match &enc {
                    SegmentEnc::Bitmap(_) => ENC_BITMAP,
                    SegmentEnc::Rle(_) => ENC_RLE,
                };
                if c.segment_pin_raw(i) {
                    tag |= SEG_FLAG_PINNED;
                }
                buf.put_u8(tag);
                match &enc {
                    SegmentEnc::Bitmap(s) => put_bitmap_segment(&mut buf, s),
                    SegmentEnc::Rle(s) => s.seq().encode(&mut buf),
                }
            }
            put_zones(&mut buf, c.zones());
        }
        buf.freeze()
    }

    #[test]
    fn v3_file_upgrades_with_reconstructed_zones() {
        let t = mixed_encoding();
        let back = decode_table(encode_table_v3(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        for (a, b) in t.columns().iter().zip(back.columns()) {
            // Zones are reconstructed from stats on upgrade and must equal
            // the natively maintained ones; nothing is pinned in v3.
            assert_eq!(a.zones(), b.zones());
            assert_eq!(a.uniform_encoding(), b.uniform_encoding());
            assert!(!b.encoding_pinned());
        }
    }

    #[test]
    fn v4_file_upgrades_to_uniform_directories() {
        let t = mixed_encoding()
            .with_column_encoding_pinned("k", Encoding::Bitmap)
            .unwrap();
        let back = decode_table(encode_table_v4(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        for (a, b) in t.columns().iter().zip(back.columns()) {
            // A homogeneous v4 column decodes to a uniform directory with
            // its zones byte-exact and its pin preserved.
            assert_eq!(a.uniform_encoding(), b.uniform_encoding());
            assert!(b.uniform_encoding().is_some());
            assert_eq!(a.zones(), b.zones());
            assert_eq!(a.encoding_pinned(), b.encoding_pinned());
        }
        assert!(back.column_by_name("k").unwrap().encoding_pinned());
    }

    #[test]
    fn v5_file_upgrades_preserving_zones_and_pins() {
        let t = mixed_encoding()
            .with_column_encoding_pinned("k", Encoding::Bitmap)
            .unwrap();
        assert!(t.column_by_name("k").unwrap().encoding_pinned());
        assert!(!t.column_by_name("v").unwrap().encoding_pinned());
        let back = decode_table(encode_table_v5(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        // Eager formats decode fully resident.
        let (resident, on_disk) = residency(&back);
        assert_eq!(on_disk, 0, "v5 files carry no payload index");
        assert!(resident > 0);
        for (a, b) in t.columns().iter().zip(back.columns()) {
            assert_eq!(a.zones(), b.zones(), "zones round-trip byte-exactly");
            assert_eq!(a.encoding_pinned(), b.encoding_pinned());
        }
        // Corrupt zone ids are rejected, not silently accepted (the v5
        // layout ends with the final column's last zone).
        let bytes = encode_table_v5(&t);
        let mut raw = bytes.as_slice().to_vec();
        let n = raw.len();
        raw[n - 8..n].copy_from_slice(&u32::MAX.to_le_bytes().repeat(2));
        assert!(decode_table(Bytes::from(raw)).is_err());
    }

    #[test]
    fn v6_round_trip_preserves_zones_and_pins() {
        let t = mixed_encoding()
            .with_column_encoding_pinned("k", Encoding::Bitmap)
            .unwrap();
        let back = decode_table(encode_table(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        for (a, b) in t.columns().iter().zip(back.columns()) {
            assert_eq!(a.zones(), b.zones(), "zones round-trip byte-exactly");
            assert_eq!(a.encoding_pinned(), b.encoding_pinned());
        }
    }

    /// Finds the first segment record of the first column in a v6 image's
    /// metadata region, returning the offset of its `segtag` byte. The
    /// record is located by its distinctive `(off, len)` pair.
    fn first_seg_record(raw: &[u8], t: &Table) -> usize {
        let n = raw.len();
        let meta_off = u64::from_le_bytes(raw[n - 12..n - 4].try_into().unwrap()) as usize;
        let first = &t.column(0).segments()[0];
        let len0 = payload_encoded_len(&first.enc()) as u64;
        let mut pat = Vec::new();
        pat.extend_from_slice(&(PREAMBLE_LEN as u64).to_le_bytes());
        pat.extend_from_slice(&len0.to_le_bytes());
        let pos = raw[meta_off..]
            .windows(16)
            .position(|w| w == pat.as_slice())
            .expect("first segment record");
        meta_off + pos - 1
    }

    #[test]
    fn corrupt_segment_tag_is_rejected() {
        // A v6 record whose segment tag carries unknown bits must fail
        // decode with a PersistError, not be misread as some encoding.
        let t = multi_segment();
        let bytes = encode_table(&t);
        let mut raw = bytes.as_slice().to_vec();
        let tag_off = first_seg_record(&raw, &t);
        assert!(raw[tag_off] & !(ENC_RLE | SEG_FLAG_PINNED) == 0, "sanity");
        raw[tag_off] = 0xFC;
        let err = decode_table(Bytes::from(raw));
        assert!(
            matches!(err, Err(StorageError::PersistError(_))),
            "expected PersistError, got {err:?}"
        );
    }

    #[test]
    fn out_of_bounds_segment_offset_is_rejected() {
        // A record whose payload location falls outside the heap (or
        // overflows) must fail at open, never at fault time.
        let t = multi_segment();
        let bytes = encode_table(&t);
        for (field_at, bad) in [
            (1usize, u64::MAX - 8), // off: overflows off + len
            (1, 1u64 << 40),        // off: beyond the heap
            (9, 1u64 << 40),        // len: runs past the heap end
            (9, 0u64),              // len: empty payload
        ] {
            let mut raw = bytes.as_slice().to_vec();
            let tag_off = first_seg_record(&raw, &t);
            let at = tag_off + field_at;
            raw[at..at + 8].copy_from_slice(&bad.to_le_bytes());
            let err = decode_table(Bytes::from(raw));
            assert!(
                matches!(err, Err(StorageError::PersistError(_))),
                "field at +{field_at} = {bad}: expected PersistError, got {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_footer_is_rejected() {
        let bytes = encode_table(&multi_segment());
        let n = bytes.len();
        // Footer magic flipped.
        let mut raw = bytes.as_slice().to_vec();
        raw[n - 1] ^= 0xFF;
        assert!(decode_table(Bytes::from(raw)).is_err());
        // Metadata offset beyond the file.
        let mut raw = bytes.as_slice().to_vec();
        raw[n - 12..n - 4].copy_from_slice(&(n as u64).to_le_bytes());
        assert!(decode_table(Bytes::from(raw)).is_err());
        // Metadata offset inside the preamble.
        let mut raw = bytes.as_slice().to_vec();
        raw[n - 12..n - 4].copy_from_slice(&0u64.to_le_bytes());
        assert!(decode_table(Bytes::from(raw)).is_err());
    }

    #[test]
    fn corrupt_segment_ids_are_rejected_not_panicked() {
        // A v3 file whose segment references an id beyond the dictionary
        // must fail decode with a PersistError — zone derivation indexes
        // rank tables by id, so this used to be panic territory.
        let t = multi_segment();
        let bytes = encode_table_v3(&t);
        let mut raw = bytes.as_slice().to_vec();
        let pat = 128u64.to_le_bytes();
        let pos = raw
            .windows(8)
            .position(|w| w == pat)
            .expect("first segment header");
        // srows(8) + present(4) → first id.
        let id_off = pos + 12;
        raw[id_off..id_off + 4].copy_from_slice(&9_999u32.to_le_bytes());
        let err = decode_table(Bytes::from(raw));
        assert!(
            matches!(err, Err(StorageError::PersistError(_))),
            "expected PersistError, got {err:?}"
        );
    }

    #[test]
    fn in_range_but_wrong_zone_is_rejected_by_invariants() {
        // Zone ids that are valid dictionary indices but name the wrong
        // extremes must still fail decode: the metadata invariants
        // re-derive every zone from the segment's present ids and compare
        // — without faulting any payload in.
        let t = mixed_encoding();
        let bytes = encode_table(&t);
        let mut raw = bytes.as_slice().to_vec();
        // The metadata region ends with the last column's zones, right
        // before the 12-byte footer; its final segment holds only v = 3,
        // so zone (0, 0) is in-range but wrong.
        let n = raw.len();
        raw[n - 20..n - 12].copy_from_slice(&[0u8; 8]);
        let err = decode_table(Bytes::from(raw));
        assert!(
            matches!(err, Err(StorageError::Corrupt(_))),
            "expected zone mismatch, got {err:?}"
        );
    }

    #[test]
    fn mixed_directories_still_downgrade_to_v1() {
        let t = mixed_directory()
            .with_column_encoding_pinned("v", Encoding::Rle)
            .unwrap();
        let back = decode_table(encode_table_v1(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        // v1 carries neither zones nor pins nor per-segment encodings:
        // fresh bitmap defaults on decode, zones re-derived.
        assert!(back.columns().iter().all(|c| !c.encoding_pinned()));
        assert!(back
            .columns()
            .iter()
            .all(|c| c.uniform_encoding() == Some(Encoding::Bitmap)));
        assert!(back
            .columns()
            .iter()
            .all(|c| c.zones().len() == c.segment_count()));
    }

    #[test]
    fn lazily_opened_tables_downgrade_to_v1_by_faulting_in() {
        let _g = budget_guard();
        let t = mixed_encoding();
        let path = temp("downgrade");
        save_table(&t, &path).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(residency(&back).0, 0, "opened lazily");
        // The monolithic layout needs every payload: the downgrade faults
        // the whole table in, and the result decodes to equal rows.
        let legacy = encode_table_v1(&back);
        assert_eq!(residency(&back).1, 0, "downgrade faults everything in");
        let again = decode_table(legacy).unwrap();
        assert_eq!(again.to_rows(), t.to_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_file_still_decodes() {
        let t = multi_segment();
        let back = decode_table(encode_table_v2(&t)).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        back.check_invariants().unwrap();
        // v2 preserves the segment directory exactly.
        assert_eq!(back.column(0).segment_count(), t.column(0).segment_count());
        assert_eq!(back.column(0).nominal_segment_rows(), 128);
    }

    #[test]
    fn rle_columns_round_trip() {
        let t = mixed_encoding();
        let back = decode_table(encode_table(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        let col = back.column_by_name("v").unwrap();
        assert_eq!(col.uniform_encoding(), Some(Encoding::Rle));
        assert_eq!(
            col.segment_count(),
            t.column_by_name("v").unwrap().segment_count()
        );
        assert_eq!(col.nominal_segment_rows(), 128);
        assert_eq!(
            back.column_by_name("k").unwrap().uniform_encoding(),
            Some(Encoding::Bitmap)
        );
    }

    #[test]
    fn rle_columns_downgrade_to_v1() {
        let t = mixed_encoding();
        let legacy = encode_table_v1(&t);
        let back = decode_table(legacy).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        // The v1 layout is bitmap-only: the RLE column comes back bitmap
        // encoded with identical values.
        assert_eq!(
            back.column_by_name("v").unwrap().uniform_encoding(),
            Some(Encoding::Bitmap)
        );
    }

    #[test]
    fn table_file_round_trip_is_lazy() {
        let _g = budget_guard();
        let t = sample();
        let path = temp("file_round_trip");
        save_table(&t, &path).unwrap();
        let back = read_table(&path).unwrap();
        let (resident, on_disk) = residency(&back);
        assert_eq!(resident, 0, "read_table must open metadata-only");
        assert!(on_disk > 0);
        assert_eq!(back.to_rows(), t.to_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_save_adopts_slots_into_the_cache() {
        let _g = budget_guard();
        let store = segment_cache();
        let t = multi_segment();
        assert!(t
            .columns()
            .iter()
            .all(|c| c.segments().iter().all(|s| s.disk_loc().is_none())));
        let path = temp("adopt");
        save_table(&t, &path).unwrap();
        // Every slot now knows where it lives on disk...
        assert!(t
            .columns()
            .iter()
            .all(|c| c.segments().iter().all(|s| s.disk_loc().is_some())));
        // ...and is evictable under pressure, reloading from the file.
        store.set_budget(0);
        assert!(
            residency(&t).1 > 0,
            "adopted slots page out under a zero budget"
        );
        store.set_budget(u64::MAX);
        assert_eq!(t.to_rows(), multi_segment().to_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resaving_a_lazily_opened_table_appends_only_metadata() {
        let _g = budget_guard();
        let t = multi_segment();
        let path = temp("append_noop");
        save_table(&t, &path).unwrap();
        let meta_off = footer_meta_off(&path);
        let back = read_table(&path).unwrap();
        // Re-saving the unchanged table reuses every payload: the heap
        // does not grow and nothing faults in — O(metadata), not O(data).
        save_table(&back, &path).unwrap();
        assert_eq!(footer_meta_off(&path), meta_off, "heap must not grow");
        assert_eq!(residency(&back).0, 0, "append-save must not fault");
        let again = read_table(&path).unwrap();
        assert_eq!(again.to_rows(), t.to_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evolving_then_saving_appends_only_new_segments() {
        let _g = budget_guard();
        let t = multi_segment();
        let path = temp("append_grow");
        save_table(&t, &path).unwrap();
        let meta_off = footer_meta_off(&path);
        let back = read_table(&path).unwrap();
        // Recode two segments: two fresh payloads, the rest reused.
        let evolved = back
            .with_column_segment_range_encoding("k", Encoding::Rle, 0..2)
            .unwrap();
        save_table(&evolved, &path).unwrap();
        let new_meta_off = footer_meta_off(&path);
        assert!(new_meta_off > meta_off, "new payloads are appended");
        let appended = new_meta_off - meta_off;
        let expected: u64 = evolved
            .column_by_name("k")
            .unwrap()
            .segments()
            .iter()
            .take(2)
            .map(|s| payload_encoded_len(&s.enc()) as u64)
            .sum();
        assert_eq!(appended, expected, "only the recoded payloads");
        // The untouched segments were never read during the save.
        let (_, on_disk) = residency(&back);
        assert!(on_disk > 0, "reused segments stay on disk");
        let again = read_table(&path).unwrap();
        assert_eq!(again.to_rows(), evolved.to_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saving_a_lazy_table_elsewhere_raw_copies_without_faulting() {
        let _g = budget_guard();
        let t = mixed_directory();
        let a = temp("copy_a");
        let b = temp("copy_b");
        save_table(&t, &a).unwrap();
        let back = read_table(&a).unwrap();
        save_table(&back, &b).unwrap();
        assert_eq!(
            residency(&back).0,
            0,
            "payloads are raw-copied between files, never decoded"
        );
        let from_b = read_table(&b).unwrap();
        assert_eq!(from_b.to_rows(), t.to_rows());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn catalog_round_trip() {
        let cat = Catalog::new();
        cat.create(sample()).unwrap();
        cat.create(sample().renamed("users2")).unwrap();
        let bytes = encode_catalog(&cat);
        let back = decode_catalog(bytes).unwrap();
        assert_eq!(back.table_names(), vec!["users", "users2"]);
        assert_eq!(
            back.get("users").unwrap().to_rows(),
            cat.get("users").unwrap().to_rows()
        );
    }

    #[test]
    fn shared_columns_are_stored_once_and_reshared_on_decode() {
        let cat = Catalog::new();
        let t = multi_segment();
        cat.create(t.clone()).unwrap();
        cat.create(t.renamed("multi2")).unwrap();
        let bytes = encode_catalog(&cat);
        // Both tables reference the same slots, so the heap stores each
        // payload once: the catalog image is far smaller than two tables.
        let single = encode_table(&cat.get("multi").unwrap()).len();
        assert!(
            bytes.len() < 2 * single,
            "catalog of two shared tables ({}) must dedup against 2 × {single}",
            bytes.len()
        );
        // And the decode re-shares: identical heap locations become one
        // slot, cached once for every snapshot.
        let back = decode_catalog(bytes).unwrap();
        let c1 = back.get("multi").unwrap();
        let c2 = back.get("multi2").unwrap();
        for (a, b) in c1.columns().iter().zip(c2.columns()) {
            for (sa, sb) in a.segments().iter().zip(b.segments()) {
                assert!(sa.ptr_eq(sb), "shared columns must come back shared");
            }
        }
        assert_eq!(c1.to_rows(), c2.to_rows());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(VERSION);
        assert!(decode_table(buf.freeze()).is_err());
    }

    #[test]
    fn future_version_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION + 1);
        assert!(decode_table(buf.freeze()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_table(&sample());
        for cut in [0, 3, 6, 10, bytes.len() / 2, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode_table(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn empty_table_round_trip() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows("empty", schema, &[]).unwrap();
        let back = decode_table(encode_table(&t)).unwrap();
        assert_eq!(back.rows(), 0);
        assert_eq!(back.name(), "empty");
    }
}
