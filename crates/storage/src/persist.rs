//! Binary persistence of tables and catalogs.
//!
//! Version 5 layout (all little-endian) stores each column as the unified
//! segment directory it is in memory: one dictionary, then every segment
//! tagged with **its own** encoding (and pin), then the per-segment zone
//! maps:
//!
//! ```text
//! file       := magic:u32 version:u16 table
//! catalog    := magic:u32 version:u16 table_count:u32 table*
//! table      := name:str schema rows:u64 column*
//! schema     := arity:u16 (name:str tag:u8)* key_len:u16 key_idx:u16*
//! column     := tag:u8 dict_len:u32 value* flags:u8 seg_rows:u64
//!               seg_count:u32 (segtag:u8 segment)* zone*
//! flags      := bit 0: whole column pinned by explicit recode
//! segtag     := bit 0: encoding (0 bitmap, 1 rle); bit 1: segment pinned
//! bitmap-seg := rows:u64 present:u32 (id:u32)* bitmap*
//! rle-seg    := rle-seq encoding
//! zone       := min_id:u32 max_id:u32         (one per segment)
//! value      := kind:u8 payload
//! str        := len:u32 utf8-bytes
//! ```
//!
//! Version 4 (one column-wide `enc` byte — homogeneous directories only),
//! version 3 (no flags byte, no zones), version 2 (bitmap-only segment
//! directory) and version 1 (the monolithic format: one full-length bitmap
//! per dictionary value) are still decoded transparently — homogeneous
//! columns come back as uniform directories, zone maps and choice metadata
//! are reconstructed from segment stats where the file carries none, and
//! v1 decoding re-segments at the default segment size. [`encode_table_v1`]
//! writes the legacy layout for compatibility tests and downgrades —
//! including for RLE or mixed columns, whose per-value bitmaps are
//! materialized from their payloads.

use crate::dictionary::Dictionary;
use crate::encoded::{EncodedColumn, SegmentEnc};
use crate::error::StorageError;
use crate::rle_segment::RleSegment;
use crate::schema::{ColumnDef, Schema};
use crate::segment::{Segment, Zone};
use crate::table::Table;
use crate::value::{Value, ValueType};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cods_bitmap::{RleSeq, Wah};
use std::path::Path;
use std::sync::Arc;

const MAGIC: u32 = 0xC0D5_0001;
/// Current on-disk format version (per-segment encoding tags).
pub const VERSION: u16 = 5;
/// Oldest format version this build can read.
pub const MIN_VERSION: u16 = 1;

const ENC_BITMAP: u8 = 0;
const ENC_RLE: u8 = 1;
/// Column flag bit: whole column pinned by an explicit recode.
const FLAG_PINNED: u8 = 1;
/// Segment tag bit: this segment pinned by a segment-range recode.
const SEG_FLAG_PINNED: u8 = 2;

fn put_str<B: BufMut>(buf: &mut B, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str<B: Buf>(buf: &mut B) -> Result<String, StorageError> {
    if buf.remaining() < 4 {
        return Err(eof());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(eof());
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| StorageError::PersistError(format!("invalid UTF-8: {e}")))
}

fn eof() -> StorageError {
    StorageError::PersistError("unexpected end of buffer".into())
}

fn put_value<B: BufMut>(buf: &mut B, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64_le(f.0);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
    }
}

fn get_value<B: Buf>(buf: &mut B) -> Result<Value, StorageError> {
    if buf.remaining() < 1 {
        return Err(eof());
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => {
            if buf.remaining() < 1 {
                return Err(eof());
            }
            Value::Bool(buf.get_u8() != 0)
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(eof());
            }
            Value::Int(buf.get_i64_le())
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(eof());
            }
            Value::float(buf.get_f64_le())
        }
        4 => Value::Str(get_str(buf)?.into()),
        k => {
            return Err(StorageError::PersistError(format!(
                "unknown value kind {k}"
            )))
        }
    })
}

fn put_schema<B: BufMut>(buf: &mut B, s: &Schema) {
    buf.put_u16_le(s.arity() as u16);
    for c in s.columns() {
        put_str(buf, &c.name);
        buf.put_u8(c.ty.tag());
    }
    buf.put_u16_le(s.key().len() as u16);
    for &k in s.key() {
        buf.put_u16_le(k as u16);
    }
}

fn get_schema<B: Buf>(buf: &mut B) -> Result<Schema, StorageError> {
    if buf.remaining() < 2 {
        return Err(eof());
    }
    let arity = buf.get_u16_le() as usize;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = get_str(buf)?;
        if buf.remaining() < 1 {
            return Err(eof());
        }
        let ty = ValueType::from_tag(buf.get_u8())
            .ok_or_else(|| StorageError::PersistError("bad type tag".into()))?;
        cols.push(ColumnDef::new(name, ty));
    }
    if buf.remaining() < 2 {
        return Err(eof());
    }
    let key_len = buf.get_u16_le() as usize;
    let mut key = Vec::with_capacity(key_len);
    for _ in 0..key_len {
        if buf.remaining() < 2 {
            return Err(eof());
        }
        key.push(buf.get_u16_le() as usize);
    }
    Schema::with_key(cols, key).map_err(|e| StorageError::PersistError(e.to_string()))
}

fn put_dict<B: BufMut>(buf: &mut B, ty: ValueType, dict: &Dictionary) {
    buf.put_u8(ty.tag());
    buf.put_u32_le(dict.len() as u32);
    for v in dict.values() {
        put_value(buf, v);
    }
}

fn put_bitmap_segment<B: BufMut>(buf: &mut B, seg: &Segment) {
    buf.put_u64_le(seg.rows());
    buf.put_u32_le(seg.distinct_count() as u32);
    for &id in seg.present_ids() {
        buf.put_u32_le(id);
    }
    for bm in seg.bitmaps() {
        bm.encode(buf);
    }
}

/// Writes one column in the current (version-5) layout: per-segment
/// encoding tags over one unified directory.
fn put_column<B: BufMut>(buf: &mut B, c: &EncodedColumn) {
    put_dict(buf, c.ty(), c.dict());
    let flags = if c.encoding_pinned() { FLAG_PINNED } else { 0 };
    buf.put_u8(flags);
    buf.put_u64_le(c.nominal_segment_rows());
    buf.put_u32_le(c.segment_count() as u32);
    for (i, seg) in c.segments().iter().enumerate() {
        let mut tag = match seg {
            SegmentEnc::Bitmap(_) => ENC_BITMAP,
            SegmentEnc::Rle(_) => ENC_RLE,
        };
        // Bit 1 records the *segment-range* pin only; the whole-column pin
        // lives in the column flags byte, so the two survive independently.
        if c.segment_pin_raw(i) {
            tag |= SEG_FLAG_PINNED;
        }
        buf.put_u8(tag);
        match seg {
            SegmentEnc::Bitmap(s) => put_bitmap_segment(buf, s),
            SegmentEnc::Rle(s) => s.seq().encode(buf),
        }
    }
    put_zones(buf, c.zones());
}

fn put_zones<B: BufMut>(buf: &mut B, zones: &[Zone]) {
    for z in zones {
        buf.put_u32_le(z.min_id);
        buf.put_u32_le(z.max_id);
    }
}

fn get_zones<B: Buf>(
    buf: &mut B,
    count: usize,
    dict_len: usize,
) -> Result<Vec<Zone>, StorageError> {
    let mut zones = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(eof());
        }
        let min_id = buf.get_u32_le();
        let max_id = buf.get_u32_le();
        if min_id as usize >= dict_len || max_id as usize >= dict_len {
            return Err(StorageError::PersistError(format!(
                "zone ids ({min_id}, {max_id}) beyond dictionary of {dict_len}"
            )));
        }
        zones.push(Zone { min_id, max_id });
    }
    Ok(zones)
}

/// Writes a column in the legacy monolithic (version-1) layout: one
/// full-length bitmap per dictionary value, whatever the in-memory
/// per-segment encodings (the downgrade path).
fn put_column_v1<B: BufMut>(buf: &mut B, c: &EncodedColumn) {
    put_dict(buf, c.ty(), c.dict());
    for id in 0..c.dict().len() as u32 {
        c.value_bitmap(id).encode(buf);
    }
}

fn get_dict<B: Buf>(buf: &mut B) -> Result<(ValueType, Dictionary), StorageError> {
    if buf.remaining() < 5 {
        return Err(eof());
    }
    let ty = ValueType::from_tag(buf.get_u8())
        .ok_or_else(|| StorageError::PersistError("bad column type tag".into()))?;
    let dict_len = buf.get_u32_le() as usize;
    let mut values = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        values.push(get_value(buf)?);
    }
    let dict = Dictionary::from_values(values).map_err(StorageError::PersistError)?;
    Ok((ty, dict))
}

/// Reads the `seg_rows`/`seg_count` directory header shared by v2–v5.
fn get_dir_header<B: Buf>(buf: &mut B) -> Result<(u64, usize), StorageError> {
    if buf.remaining() < 12 {
        return Err(eof());
    }
    let seg_rows = buf.get_u64_le();
    if seg_rows == 0 {
        return Err(StorageError::PersistError(
            "zero nominal segment size".into(),
        ));
    }
    Ok((seg_rows, buf.get_u32_le() as usize))
}

/// Reads one bitmap segment, validating present ids against the dictionary
/// up front — zone derivation indexes the rank table by id, so a corrupt
/// file must be rejected here with an error, never by a panic downstream.
fn get_bitmap_segment<B: Buf>(buf: &mut B, dict_len: usize) -> Result<Arc<Segment>, StorageError> {
    if buf.remaining() < 12 {
        return Err(eof());
    }
    let srows = buf.get_u64_le();
    let present = buf.get_u32_le() as usize;
    if present == 0 && srows > 0 {
        return Err(StorageError::PersistError(format!(
            "segment of {srows} rows with no present values"
        )));
    }
    let mut ids = Vec::with_capacity(present);
    for _ in 0..present {
        if buf.remaining() < 4 {
            return Err(eof());
        }
        let id = buf.get_u32_le();
        if id as usize >= dict_len {
            return Err(StorageError::PersistError(format!(
                "segment id {id} beyond dictionary of {dict_len}"
            )));
        }
        ids.push(id);
    }
    let mut pairs = Vec::with_capacity(present);
    for id in ids {
        let bm = Wah::decode(buf)?;
        if bm.len() != srows {
            return Err(StorageError::PersistError(format!(
                "segment bitmap of id {id} has length {}, segment has {srows} rows",
                bm.len()
            )));
        }
        if !bm.any() {
            return Err(StorageError::PersistError(format!(
                "empty segment bitmap for id {id}"
            )));
        }
        pairs.push((id, bm));
    }
    Ok(Arc::new(Segment::new(srows, pairs)))
}

/// Reads one RLE segment, validating run ids against the dictionary (see
/// [`get_bitmap_segment`]).
fn get_rle_segment<B: Buf>(buf: &mut B, dict_len: usize) -> Result<Arc<RleSegment>, StorageError> {
    let seq =
        RleSeq::decode(buf).map_err(|e| StorageError::PersistError(format!("rle segment: {e}")))?;
    if seq.is_empty() {
        return Err(StorageError::PersistError("empty rle segment".into()));
    }
    if let Some(&(id, _)) = seq.runs().iter().find(|&&(id, _)| id as usize >= dict_len) {
        return Err(StorageError::PersistError(format!(
            "rle run id {id} beyond dictionary of {dict_len}"
        )));
    }
    Ok(Arc::new(RleSegment::new(seq)))
}

/// Reads the homogeneous directory of a v2–v4 column (one encoding for
/// every segment).
fn get_uniform_segments<B: Buf>(
    buf: &mut B,
    dict_len: usize,
    enc: u8,
) -> Result<(Vec<SegmentEnc>, u64), StorageError> {
    let (seg_rows, seg_count) = get_dir_header(buf)?;
    let mut segments = Vec::with_capacity(seg_count);
    for _ in 0..seg_count {
        segments.push(match enc {
            ENC_BITMAP => SegmentEnc::Bitmap(get_bitmap_segment(buf, dict_len)?),
            ENC_RLE => SegmentEnc::Rle(get_rle_segment(buf, dict_len)?),
            e => {
                return Err(StorageError::PersistError(format!(
                    "unknown column encoding {e}"
                )))
            }
        });
    }
    Ok((segments, seg_rows))
}

fn get_column<B: Buf>(buf: &mut B, rows: u64, version: u16) -> Result<EncodedColumn, StorageError> {
    let (ty, dict) = get_dict(buf)?;
    let col = match version {
        1 => {
            let mut bitmaps = Vec::with_capacity(dict.len());
            for _ in 0..dict.len() {
                bitmaps.push(Wah::decode(buf)?);
            }
            EncodedColumn::from_parts(ty, dict, bitmaps, rows)?
        }
        2 => {
            let (segments, seg_rows) = get_uniform_segments(buf, dict.len(), ENC_BITMAP)?;
            EncodedColumn::from_segments(ty, dict, segments, seg_rows)
        }
        3 => {
            if buf.remaining() < 1 {
                return Err(eof());
            }
            // v3 stores no zones: reconstructed from segment stats below
            // (from_segments derives them).
            let enc = buf.get_u8();
            let (segments, seg_rows) = get_uniform_segments(buf, dict.len(), enc)?;
            EncodedColumn::from_segments(ty, dict, segments, seg_rows)
        }
        4 => {
            if buf.remaining() < 2 {
                return Err(eof());
            }
            let enc = buf.get_u8();
            let flags = buf.get_u8();
            let dict_len = dict.len();
            let (segments, seg_rows) = get_uniform_segments(buf, dict_len, enc)?;
            let zones = get_zones(buf, segments.len(), dict_len)?;
            let mut col = EncodedColumn::from_segments_zoned(ty, dict, segments, zones, seg_rows);
            col.set_encoding_pinned(flags & FLAG_PINNED != 0);
            col
        }
        _ => {
            // v5: flags byte, then one tagged segment after another.
            if buf.remaining() < 1 {
                return Err(eof());
            }
            let flags = buf.get_u8();
            let dict_len = dict.len();
            let (seg_rows, seg_count) = get_dir_header(buf)?;
            let mut segments = Vec::with_capacity(seg_count);
            let mut pins = Vec::with_capacity(seg_count);
            for _ in 0..seg_count {
                if buf.remaining() < 1 {
                    return Err(eof());
                }
                let tag = buf.get_u8();
                if tag & !(ENC_RLE | SEG_FLAG_PINNED) != 0 {
                    return Err(StorageError::PersistError(format!(
                        "unknown segment tag {tag:#04x}"
                    )));
                }
                pins.push(tag & SEG_FLAG_PINNED != 0);
                segments.push(if tag & ENC_RLE != 0 {
                    SegmentEnc::Rle(get_rle_segment(buf, dict_len)?)
                } else {
                    SegmentEnc::Bitmap(get_bitmap_segment(buf, dict_len)?)
                });
            }
            let zones = get_zones(buf, segments.len(), dict_len)?;
            let mut col = EncodedColumn::from_segments_zoned(ty, dict, segments, zones, seg_rows);
            col.set_segment_pins(pins);
            col.set_encoding_pinned(flags & FLAG_PINNED != 0);
            col
        }
    };
    if col.rows() != rows {
        return Err(StorageError::PersistError(format!(
            "column covers {} rows, table claims {rows}",
            col.rows()
        )));
    }
    col.check_invariants()?;
    Ok(col)
}

/// Serializes one table (current format version).
pub fn encode_table(t: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    encode_table_body(&mut buf, t);
    buf.freeze()
}

/// Serializes one table in the legacy monolithic version-1 layout (one
/// full-length bitmap per dictionary value). Kept for downgrade paths and
/// the cross-version round-trip tests.
pub fn encode_table_v1(t: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(1);
    put_str(&mut buf, t.name());
    put_schema(&mut buf, t.schema());
    buf.put_u64_le(t.rows());
    for c in t.columns() {
        put_column_v1(&mut buf, c);
    }
    buf.freeze()
}

fn encode_table_body(buf: &mut BytesMut, t: &Table) {
    put_str(buf, t.name());
    put_schema(buf, t.schema());
    buf.put_u64_le(t.rows());
    for c in t.columns() {
        put_column(buf, c);
    }
}

/// Deserializes one table (any supported format version).
pub fn decode_table(mut buf: impl Buf) -> Result<Table, StorageError> {
    let version = check_header(&mut buf)?;
    decode_table_body(&mut buf, version)
}

fn check_header(buf: &mut impl Buf) -> Result<u16, StorageError> {
    if buf.remaining() < 6 {
        return Err(eof());
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(StorageError::PersistError(format!(
            "bad magic 0x{magic:08x}"
        )));
    }
    let version = buf.get_u16_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(StorageError::PersistError(format!(
            "unsupported version {version}"
        )));
    }
    Ok(version)
}

fn decode_table_body(buf: &mut impl Buf, version: u16) -> Result<Table, StorageError> {
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    if buf.remaining() < 8 {
        return Err(eof());
    }
    let rows = buf.get_u64_le();
    let mut columns = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        columns.push(Arc::new(get_column(buf, rows, version)?));
    }
    Table::new(name, schema, columns)
}

/// Writes a table to a file.
pub fn save_table(t: &Table, path: impl AsRef<Path>) -> Result<(), StorageError> {
    std::fs::write(path, encode_table(t))?;
    Ok(())
}

/// Reads a table from a file.
pub fn read_table(path: impl AsRef<Path>) -> Result<Table, StorageError> {
    let bytes = std::fs::read(path)?;
    decode_table(Bytes::from(bytes))
}

/// Serializes all tables of a catalog.
pub fn encode_catalog(cat: &crate::catalog::Catalog) -> Bytes {
    let tables = cat.snapshot();
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(tables.len() as u32);
    for t in &tables {
        encode_table_body(&mut buf, t);
    }
    buf.freeze()
}

/// Deserializes a catalog (any supported format version).
pub fn decode_catalog(mut buf: impl Buf) -> Result<crate::catalog::Catalog, StorageError> {
    let version = check_header(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(eof());
    }
    let count = buf.get_u32_le();
    let cat = crate::catalog::Catalog::new();
    for _ in 0..count {
        cat.create(decode_table_body(&mut buf, version)?)?;
    }
    Ok(cat)
}

/// Writes a catalog to a file.
pub fn save_catalog(
    cat: &crate::catalog::Catalog,
    path: impl AsRef<Path>,
) -> Result<(), StorageError> {
    std::fs::write(path, encode_catalog(cat))?;
    Ok(())
}

/// Reads a catalog from a file.
pub fn read_catalog(path: impl AsRef<Path>) -> Result<crate::catalog::Catalog, StorageError> {
    let bytes = std::fs::read(path)?;
    decode_catalog(Bytes::from(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::encoded::Encoding;
    use crate::segment::DEFAULT_SEGMENT_ROWS;

    fn sample() -> Table {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("score", ValueType::Float),
                ("active", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::int(i),
                    Value::str(format!("user{}", i % 10)),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::float(i as f64 / 3.0)
                    },
                    Value::Bool(i % 2 == 0),
                ]
            })
            .collect();
        Table::from_rows("users", schema, &rows).unwrap()
    }

    /// A table whose columns span several segments.
    fn multi_segment() -> Table {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000)
            .map(|i| vec![Value::int(i % 17), Value::int(i / 250)])
            .collect();
        Table::from_rows_with_segment_rows("multi", schema, &rows, 128).unwrap()
    }

    /// `multi_segment` with one column uniformly re-encoded RLE.
    fn mixed_encoding() -> Table {
        multi_segment()
            .with_column_encoding("v", Encoding::Rle)
            .unwrap()
    }

    /// `multi_segment` with a *mixed directory*: half of `k`'s segments
    /// recoded (and pinned) RLE, the other half left bitmap.
    fn mixed_directory() -> Table {
        let t = multi_segment();
        let segs = t.column_by_name("k").unwrap().segment_count();
        t.with_column_segment_range_encoding("k", Encoding::Rle, 0..segs / 2)
            .unwrap()
    }

    #[test]
    fn table_round_trip() {
        let t = sample();
        let bytes = encode_table(&t);
        let back = decode_table(bytes).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.to_rows(), t.to_rows());
    }

    #[test]
    fn multi_segment_round_trip_preserves_directory() {
        let t = multi_segment();
        let back = decode_table(encode_table(&t)).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        let col = back.column(0);
        assert_eq!(col.segment_count(), t.column(0).segment_count());
        assert_eq!(col.nominal_segment_rows(), 128);
        col.check_invariants().unwrap();
    }

    #[test]
    fn mixed_directory_round_trips_v5() {
        let t = mixed_directory();
        let before = t.column_by_name("k").unwrap();
        assert_eq!(before.uniform_encoding(), None, "directory must be mixed");
        let back = decode_table(encode_table(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        let col = back.column_by_name("k").unwrap();
        assert_eq!(col.encoding_counts(), before.encoding_counts());
        for i in 0..col.segment_count() {
            assert_eq!(col.segment_encoding(i), before.segment_encoding(i));
            assert_eq!(
                col.segment_pinned(i),
                before.segment_pinned(i),
                "segment {i} pin"
            );
        }
        assert_eq!(col.zones(), before.zones());
    }

    #[test]
    fn v1_file_still_decodes() {
        let t = multi_segment();
        let legacy = encode_table_v1(&t);
        let back = decode_table(legacy).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        back.check_invariants().unwrap();
        // Re-segmented at the default size on load.
        assert_eq!(back.column(0).nominal_segment_rows(), DEFAULT_SEGMENT_ROWS);
    }

    /// Writes the version-2 layout (bitmap segment directory, no encoding
    /// byte) so the upgrade path stays covered now that the writer emits
    /// version 5.
    fn encode_table_v2(t: &Table) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(2);
        put_str(&mut buf, t.name());
        put_schema(&mut buf, t.schema());
        buf.put_u64_le(t.rows());
        for c in t.columns() {
            put_dict(&mut buf, c.ty(), c.dict());
            buf.put_u64_le(c.nominal_segment_rows());
            buf.put_u32_le(c.segment_count() as u32);
            for seg in c.segments() {
                put_bitmap_segment(&mut buf, seg.as_bitmap().expect("v2 writer is bitmap-only"));
            }
        }
        buf.freeze()
    }

    /// Writes the homogeneous directory shared by the v3/v4 test writers.
    fn put_uniform_directory(buf: &mut BytesMut, c: &EncodedColumn) -> u8 {
        let enc = match c.uniform_encoding().expect("legacy writers are uniform") {
            Encoding::Bitmap => ENC_BITMAP,
            Encoding::Rle => ENC_RLE,
        };
        buf.put_u64_le(c.nominal_segment_rows());
        buf.put_u32_le(c.segment_count() as u32);
        for seg in c.segments() {
            match seg {
                SegmentEnc::Bitmap(s) => put_bitmap_segment(buf, s),
                SegmentEnc::Rle(s) => s.seq().encode(buf),
            }
        }
        enc
    }

    /// Writes the version-3 layout (per-encoding segment directories, no
    /// flags byte, no zones) so the v3 upgrade path stays covered.
    fn encode_table_v3(t: &Table) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(3);
        put_str(&mut buf, t.name());
        put_schema(&mut buf, t.schema());
        buf.put_u64_le(t.rows());
        for c in t.columns() {
            put_dict(&mut buf, c.ty(), c.dict());
            let enc = match c.uniform_encoding().expect("v3 writer is uniform") {
                Encoding::Bitmap => ENC_BITMAP,
                Encoding::Rle => ENC_RLE,
            };
            buf.put_u8(enc);
            put_uniform_directory(&mut buf, c);
        }
        buf.freeze()
    }

    /// Writes the version-4 layout (one column-wide `enc` byte + flags +
    /// zones — homogeneous directories only) so the v4 → v5 upgrade path
    /// stays covered now that the writer emits version 5.
    fn encode_table_v4(t: &Table) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(4);
        put_str(&mut buf, t.name());
        put_schema(&mut buf, t.schema());
        buf.put_u64_le(t.rows());
        for c in t.columns() {
            put_dict(&mut buf, c.ty(), c.dict());
            let enc = match c.uniform_encoding().expect("v4 writer is uniform") {
                Encoding::Bitmap => ENC_BITMAP,
                Encoding::Rle => ENC_RLE,
            };
            buf.put_u8(enc);
            buf.put_u8(if c.encoding_pinned() { FLAG_PINNED } else { 0 });
            put_uniform_directory(&mut buf, c);
            put_zones(&mut buf, c.zones());
        }
        buf.freeze()
    }

    #[test]
    fn v3_file_upgrades_with_reconstructed_zones() {
        let t = mixed_encoding();
        let back = decode_table(encode_table_v3(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        for (a, b) in t.columns().iter().zip(back.columns()) {
            // Zones are reconstructed from stats on upgrade and must equal
            // the natively maintained ones; nothing is pinned in v3.
            assert_eq!(a.zones(), b.zones());
            assert_eq!(a.uniform_encoding(), b.uniform_encoding());
            assert!(!b.encoding_pinned());
        }
    }

    #[test]
    fn v4_file_upgrades_to_uniform_directories() {
        let t = mixed_encoding()
            .with_column_encoding_pinned("k", Encoding::Bitmap)
            .unwrap();
        let back = decode_table(encode_table_v4(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        for (a, b) in t.columns().iter().zip(back.columns()) {
            // A homogeneous v4 column decodes to a uniform v5 directory
            // with its zones byte-exact and its pin preserved.
            assert_eq!(a.uniform_encoding(), b.uniform_encoding());
            assert!(b.uniform_encoding().is_some());
            assert_eq!(a.zones(), b.zones());
            assert_eq!(a.encoding_pinned(), b.encoding_pinned());
        }
        assert!(back.column_by_name("k").unwrap().encoding_pinned());
    }

    #[test]
    fn v5_round_trip_preserves_zones_and_pins() {
        let t = mixed_encoding()
            .with_column_encoding_pinned("k", Encoding::Bitmap)
            .unwrap();
        assert!(t.column_by_name("k").unwrap().encoding_pinned());
        assert!(!t.column_by_name("v").unwrap().encoding_pinned());
        let back = decode_table(encode_table(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        for (a, b) in t.columns().iter().zip(back.columns()) {
            assert_eq!(a.zones(), b.zones(), "zones round-trip byte-exactly");
            assert_eq!(a.encoding_pinned(), b.encoding_pinned());
        }
        // Corrupt zone ids are rejected, not silently accepted.
        let bytes = encode_table(&t);
        let mut raw = bytes.to_vec();
        // The last 8 bytes of the table are the final column's last zone.
        let n = raw.len();
        raw[n - 8..n].copy_from_slice(&u32::MAX.to_le_bytes().repeat(2));
        assert!(decode_table(Bytes::from(raw)).is_err());
    }

    #[test]
    fn corrupt_segment_tag_is_rejected() {
        // A v5 file whose per-segment tag carries unknown bits must fail
        // decode with a PersistError, not be misread as some encoding.
        let t = multi_segment();
        let bytes = encode_table(&t);
        let mut raw = bytes.to_vec();
        // Locate the first directory header (seg_rows = 128 as u64 LE);
        // the first segment tag sits right after seg_rows + seg_count.
        let pat = 128u64.to_le_bytes();
        let pos = raw
            .windows(8)
            .position(|w| w == pat)
            .expect("first directory header");
        let tag_off = pos + 12;
        assert!(raw[tag_off] & !(ENC_RLE | SEG_FLAG_PINNED) == 0, "sanity");
        raw[tag_off] = 0xFC;
        let err = decode_table(Bytes::from(raw));
        assert!(
            matches!(err, Err(StorageError::PersistError(_))),
            "expected PersistError, got {err:?}"
        );
    }

    #[test]
    fn corrupt_segment_ids_are_rejected_not_panicked() {
        // A v3 file whose segment references an id beyond the dictionary
        // must fail decode with a PersistError — zone derivation indexes
        // rank tables by id, so this used to be panic territory.
        let t = multi_segment();
        let bytes = encode_table_v3(&t);
        let mut raw = bytes.to_vec();
        let pat = 128u64.to_le_bytes();
        let pos = raw
            .windows(8)
            .position(|w| w == pat)
            .expect("first segment header");
        // srows(8) + present(4) → first id.
        let id_off = pos + 12;
        raw[id_off..id_off + 4].copy_from_slice(&9_999u32.to_le_bytes());
        let err = decode_table(Bytes::from(raw));
        assert!(
            matches!(err, Err(StorageError::PersistError(_))),
            "expected PersistError, got {err:?}"
        );
    }

    #[test]
    fn in_range_but_wrong_zone_is_rejected_by_invariants() {
        // Zone ids that are valid dictionary indices but name the wrong
        // extremes must still fail decode: check_invariants re-derives
        // every zone from the segment's present ids and compares.
        let t = mixed_encoding();
        let bytes = encode_table(&t);
        let mut raw = bytes.to_vec();
        // The file ends with the last column's zones; its final segment
        // holds only v = 3, so zone (0, 0) is in-range but wrong.
        let n = raw.len();
        raw[n - 8..n].copy_from_slice(&[0u8; 8]);
        let err = decode_table(Bytes::from(raw));
        assert!(
            matches!(err, Err(StorageError::Corrupt(_))),
            "expected zone mismatch, got {err:?}"
        );
    }

    #[test]
    fn mixed_directories_still_downgrade_to_v1() {
        let t = mixed_directory()
            .with_column_encoding_pinned("v", Encoding::Rle)
            .unwrap();
        let back = decode_table(encode_table_v1(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        // v1 carries neither zones nor pins nor per-segment encodings:
        // fresh bitmap defaults on decode, zones re-derived.
        assert!(back.columns().iter().all(|c| !c.encoding_pinned()));
        assert!(back
            .columns()
            .iter()
            .all(|c| c.uniform_encoding() == Some(Encoding::Bitmap)));
        assert!(back
            .columns()
            .iter()
            .all(|c| c.zones().len() == c.segment_count()));
    }

    #[test]
    fn v2_file_still_decodes() {
        let t = multi_segment();
        let back = decode_table(encode_table_v2(&t)).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        back.check_invariants().unwrap();
        // v2 preserves the segment directory exactly.
        assert_eq!(back.column(0).segment_count(), t.column(0).segment_count());
        assert_eq!(back.column(0).nominal_segment_rows(), 128);
    }

    #[test]
    fn rle_columns_round_trip() {
        let t = mixed_encoding();
        let back = decode_table(encode_table(&t)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        let col = back.column_by_name("v").unwrap();
        assert_eq!(col.uniform_encoding(), Some(Encoding::Rle));
        assert_eq!(
            col.segment_count(),
            t.column_by_name("v").unwrap().segment_count()
        );
        assert_eq!(col.nominal_segment_rows(), 128);
        assert_eq!(
            back.column_by_name("k").unwrap().uniform_encoding(),
            Some(Encoding::Bitmap)
        );
    }

    #[test]
    fn rle_columns_downgrade_to_v1() {
        let t = mixed_encoding();
        let legacy = encode_table_v1(&t);
        let back = decode_table(legacy).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        // The v1 layout is bitmap-only: the RLE column comes back bitmap
        // encoded with identical values.
        assert_eq!(
            back.column_by_name("v").unwrap().uniform_encoding(),
            Some(Encoding::Bitmap)
        );
    }

    #[test]
    fn table_file_round_trip() {
        let t = sample();
        let path = std::env::temp_dir().join("cods_persist_test.tbl");
        save_table(&t, &path).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn catalog_round_trip() {
        let cat = Catalog::new();
        cat.create(sample()).unwrap();
        cat.create(sample().renamed("users2")).unwrap();
        let bytes = encode_catalog(&cat);
        let back = decode_catalog(bytes).unwrap();
        assert_eq!(back.table_names(), vec!["users", "users2"]);
        assert_eq!(
            back.get("users").unwrap().to_rows(),
            cat.get("users").unwrap().to_rows()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(VERSION);
        assert!(decode_table(buf.freeze()).is_err());
    }

    #[test]
    fn future_version_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION + 1);
        assert!(decode_table(buf.freeze()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_table(&sample());
        for cut in [0, 3, 6, 10, bytes.len() / 2, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode_table(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn empty_table_round_trip() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows("empty", schema, &[]).unwrap();
        let back = decode_table(encode_table(&t)).unwrap();
        assert_eq!(back.rows(), 0);
        assert_eq!(back.name(), "empty");
    }
}
