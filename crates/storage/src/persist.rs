//! Binary persistence of tables and catalogs.
//!
//! Layout (all little-endian):
//!
//! ```text
//! file      := magic:u32 version:u16 table
//! catalog   := magic:u32 version:u16 table_count:u32 table*
//! table     := name:str schema rows:u64 column*
//! schema    := arity:u16 (name:str tag:u8)* key_len:u16 key_idx:u16*
//! column    := tag:u8 dict_len:u32 value* bitmap*      (one bitmap per value)
//! value     := kind:u8 payload
//! str       := len:u32 utf8-bytes
//! ```

use crate::column::Column;
use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::value::{Value, ValueType};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cods_bitmap::Wah;
use std::path::Path;
use std::sync::Arc;

const MAGIC: u32 = 0xC0D5_0001;
const VERSION: u16 = 1;

fn put_str<B: BufMut>(buf: &mut B, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str<B: Buf>(buf: &mut B) -> Result<String, StorageError> {
    if buf.remaining() < 4 {
        return Err(eof());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(eof());
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes)
        .map_err(|e| StorageError::PersistError(format!("invalid UTF-8: {e}")))
}

fn eof() -> StorageError {
    StorageError::PersistError("unexpected end of buffer".into())
}

fn put_value<B: BufMut>(buf: &mut B, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64_le(f.0);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
    }
}

fn get_value<B: Buf>(buf: &mut B) -> Result<Value, StorageError> {
    if buf.remaining() < 1 {
        return Err(eof());
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => {
            if buf.remaining() < 1 {
                return Err(eof());
            }
            Value::Bool(buf.get_u8() != 0)
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(eof());
            }
            Value::Int(buf.get_i64_le())
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(eof());
            }
            Value::float(buf.get_f64_le())
        }
        4 => Value::Str(get_str(buf)?.into()),
        k => {
            return Err(StorageError::PersistError(format!(
                "unknown value kind {k}"
            )))
        }
    })
}

fn put_schema<B: BufMut>(buf: &mut B, s: &Schema) {
    buf.put_u16_le(s.arity() as u16);
    for c in s.columns() {
        put_str(buf, &c.name);
        buf.put_u8(c.ty.tag());
    }
    buf.put_u16_le(s.key().len() as u16);
    for &k in s.key() {
        buf.put_u16_le(k as u16);
    }
}

fn get_schema<B: Buf>(buf: &mut B) -> Result<Schema, StorageError> {
    if buf.remaining() < 2 {
        return Err(eof());
    }
    let arity = buf.get_u16_le() as usize;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = get_str(buf)?;
        if buf.remaining() < 1 {
            return Err(eof());
        }
        let ty = ValueType::from_tag(buf.get_u8())
            .ok_or_else(|| StorageError::PersistError("bad type tag".into()))?;
        cols.push(ColumnDef::new(name, ty));
    }
    if buf.remaining() < 2 {
        return Err(eof());
    }
    let key_len = buf.get_u16_le() as usize;
    let mut key = Vec::with_capacity(key_len);
    for _ in 0..key_len {
        if buf.remaining() < 2 {
            return Err(eof());
        }
        key.push(buf.get_u16_le() as usize);
    }
    Schema::with_key(cols, key).map_err(|e| StorageError::PersistError(e.to_string()))
}

fn put_column<B: BufMut>(buf: &mut B, c: &Column) {
    buf.put_u8(c.ty().tag());
    buf.put_u32_le(c.dict().len() as u32);
    for v in c.dict().values() {
        put_value(buf, v);
    }
    for bm in c.bitmaps() {
        bm.encode(buf);
    }
}

fn get_column<B: Buf>(buf: &mut B, rows: u64) -> Result<Column, StorageError> {
    if buf.remaining() < 5 {
        return Err(eof());
    }
    let ty = ValueType::from_tag(buf.get_u8())
        .ok_or_else(|| StorageError::PersistError("bad column type tag".into()))?;
    let dict_len = buf.get_u32_le() as usize;
    let mut values = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        values.push(get_value(buf)?);
    }
    let dict =
        Dictionary::from_values(values).map_err(StorageError::PersistError)?;
    let mut bitmaps = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        bitmaps.push(Wah::decode(buf)?);
    }
    let col = Column::from_parts(ty, dict, bitmaps, rows)?;
    col.check_invariants()?;
    Ok(col)
}

/// Serializes one table (with its magic header).
pub fn encode_table(t: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    encode_table_body(&mut buf, t);
    buf.freeze()
}

fn encode_table_body(buf: &mut BytesMut, t: &Table) {
    put_str(buf, t.name());
    put_schema(buf, t.schema());
    buf.put_u64_le(t.rows());
    for c in t.columns() {
        put_column(buf, c);
    }
}

/// Deserializes one table.
pub fn decode_table(mut buf: impl Buf) -> Result<Table, StorageError> {
    check_header(&mut buf)?;
    decode_table_body(&mut buf)
}

fn check_header(buf: &mut impl Buf) -> Result<(), StorageError> {
    if buf.remaining() < 6 {
        return Err(eof());
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(StorageError::PersistError(format!(
            "bad magic 0x{magic:08x}"
        )));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StorageError::PersistError(format!(
            "unsupported version {version}"
        )));
    }
    Ok(())
}

fn decode_table_body(buf: &mut impl Buf) -> Result<Table, StorageError> {
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    if buf.remaining() < 8 {
        return Err(eof());
    }
    let rows = buf.get_u64_le();
    let mut columns = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        columns.push(Arc::new(get_column(buf, rows)?));
    }
    Table::new(name, schema, columns)
}

/// Writes a table to a file.
pub fn save_table(t: &Table, path: impl AsRef<Path>) -> Result<(), StorageError> {
    std::fs::write(path, encode_table(t))?;
    Ok(())
}

/// Reads a table from a file.
pub fn read_table(path: impl AsRef<Path>) -> Result<Table, StorageError> {
    let bytes = std::fs::read(path)?;
    decode_table(Bytes::from(bytes))
}

/// Serializes all tables of a catalog.
pub fn encode_catalog(cat: &crate::catalog::Catalog) -> Bytes {
    let tables = cat.snapshot();
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(tables.len() as u32);
    for t in &tables {
        encode_table_body(&mut buf, t);
    }
    buf.freeze()
}

/// Deserializes a catalog.
pub fn decode_catalog(mut buf: impl Buf) -> Result<crate::catalog::Catalog, StorageError> {
    check_header(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(eof());
    }
    let count = buf.get_u32_le();
    let cat = crate::catalog::Catalog::new();
    for _ in 0..count {
        cat.create(decode_table_body(&mut buf)?)?;
    }
    Ok(cat)
}

/// Writes a catalog to a file.
pub fn save_catalog(
    cat: &crate::catalog::Catalog,
    path: impl AsRef<Path>,
) -> Result<(), StorageError> {
    std::fs::write(path, encode_catalog(cat))?;
    Ok(())
}

/// Reads a catalog from a file.
pub fn read_catalog(path: impl AsRef<Path>) -> Result<crate::catalog::Catalog, StorageError> {
    let bytes = std::fs::read(path)?;
    decode_catalog(Bytes::from(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn sample() -> Table {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("score", ValueType::Float),
                ("active", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::int(i),
                    Value::str(format!("user{}", i % 10)),
                    if i % 7 == 0 { Value::Null } else { Value::float(i as f64 / 3.0) },
                    Value::Bool(i % 2 == 0),
                ]
            })
            .collect();
        Table::from_rows("users", schema, &rows).unwrap()
    }

    #[test]
    fn table_round_trip() {
        let t = sample();
        let bytes = encode_table(&t);
        let back = decode_table(bytes).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.to_rows(), t.to_rows());
    }

    #[test]
    fn table_file_round_trip() {
        let t = sample();
        let path = std::env::temp_dir().join("cods_persist_test.tbl");
        save_table(&t, &path).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(back.to_rows(), t.to_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn catalog_round_trip() {
        let cat = Catalog::new();
        cat.create(sample()).unwrap();
        cat.create(sample().renamed("users2")).unwrap();
        let bytes = encode_catalog(&cat);
        let back = decode_catalog(bytes).unwrap();
        assert_eq!(back.table_names(), vec!["users", "users2"]);
        assert_eq!(
            back.get("users").unwrap().to_rows(),
            cat.get("users").unwrap().to_rows()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(VERSION);
        assert!(decode_table(buf.freeze()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_table(&sample());
        for cut in [0, 3, 6, 10, bytes.len() / 2, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode_table(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn empty_table_round_trip() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let t = Table::from_rows("empty", schema, &[]).unwrap();
        let back = decode_table(encode_table(&t)).unwrap();
        assert_eq!(back.rows(), 0);
        assert_eq!(back.name(), "empty");
    }
}
