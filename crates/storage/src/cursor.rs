//! Row cursors: streaming `row → value id` access over a compressed column
//! without materializing anything column-wide.
//!
//! The cursor walks the unified segment directory in order, faulting in one
//! segment at a time (so a scan over a lazily opened column touches the
//! buffer cache segment by segment, never all at once) and decoding it into
//! a reusable segment-local id buffer: bitmap segments through the sparse
//! per-value fill, RLE segments by expanding the run sequence. Peak extra
//! memory is one segment's worth of ids — independent of column size. The
//! CODS sequential-scan passes (distinction, mergence) use either this
//! cursor or the materialized [`EncodedColumn::value_ids`] array depending
//! on how many passes they need.

use crate::encoded::{EncodedColumn, SegmentEnc};

/// Streaming cursor yielding `(row, value_id)` in ascending row order.
pub struct RowIdCursor<'a> {
    column: &'a EncodedColumn,
    seg_idx: usize,
    /// Global row of `buf[0]` (the current segment's start).
    base: u64,
    /// Decoded ids of the current segment, reused across segments.
    buf: Vec<u32>,
    /// Next index into `buf` to emit.
    pos: usize,
    rows: u64,
    emitted: u64,
}

impl<'a> RowIdCursor<'a> {
    /// Opens a cursor over `column`.
    pub fn new(column: &'a EncodedColumn) -> Self {
        let mut cur = RowIdCursor {
            column,
            seg_idx: 0,
            base: 0,
            buf: Vec::new(),
            pos: 0,
            rows: column.rows(),
            emitted: 0,
        };
        cur.open_segment(0);
        cur
    }

    /// Faults segment `idx` in and decodes it into the id buffer; leaves
    /// the buffer empty when the directory is exhausted.
    fn open_segment(&mut self, idx: usize) {
        self.seg_idx = idx;
        self.pos = 0;
        self.buf.clear();
        let Some(slot) = self.column.segments().get(idx) else {
            return;
        };
        self.base = self.column.segment_start(idx);
        self.buf.resize(slot.rows() as usize, u32::MAX);
        match slot.enc() {
            SegmentEnc::Bitmap(seg) => seg.fill_ids(&mut self.buf),
            SegmentEnc::Rle(seg) => {
                let mut at = 0usize;
                for &(id, n) in seg.seq().runs() {
                    self.buf[at..at + n as usize].fill(id);
                    at += n as usize;
                }
            }
        }
    }
}

impl Iterator for RowIdCursor<'_> {
    type Item = (u64, u32);

    fn next(&mut self) -> Option<(u64, u32)> {
        while self.pos == self.buf.len() {
            if self.seg_idx >= self.column.segment_count() {
                return None;
            }
            let next_idx = self.seg_idx + 1;
            if next_idx >= self.column.segment_count() {
                self.seg_idx = next_idx;
                return None;
            }
            self.open_segment(next_idx);
        }
        let row = self.base + self.pos as u64;
        let id = self.buf[self.pos];
        self.pos += 1;
        debug_assert_eq!(row, self.emitted, "partition invariant violated");
        self.emitted += 1;
        Some((row, id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.rows - self.emitted) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIdCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::{ColumnBuilder, Encoding};
    use crate::value::{Value, ValueType};

    #[test]
    fn cursor_yields_rows_in_order() {
        let vals: Vec<Value> = [3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3]
            .iter()
            .map(|&i| Value::int(i))
            .collect();
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let expected = col.value_ids();
        let streamed: Vec<(u64, u32)> = RowIdCursor::new(&col).collect();
        assert_eq!(streamed.len(), 10);
        for (i, &(row, id)) in streamed.iter().enumerate() {
            assert_eq!(row, i as u64);
            assert_eq!(id, expected[i]);
        }
    }

    #[test]
    fn cursor_crosses_segment_boundaries_in_any_encoding_mix() {
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 37);
        for i in 0..500 {
            b.push(Value::int(i % 11)).unwrap();
        }
        let bitmap = b.finish();
        assert!(bitmap.segment_count() > 1);
        let rle = bitmap.recode(Encoding::Rle).unwrap();
        let mut mixed = bitmap.clone();
        for i in (1..mixed.segment_count()).step_by(2) {
            mixed = mixed.recode_segments(i..i + 1, Encoding::Rle).unwrap();
        }
        let expected = bitmap.value_ids();
        for col in [&bitmap, &rle, &mixed] {
            for (i, (row, id)) in RowIdCursor::new(col).enumerate() {
                assert_eq!(row, i as u64);
                assert_eq!(id, expected[i]);
            }
            assert_eq!(RowIdCursor::new(col).count(), 500);
        }
    }

    #[test]
    fn cursor_on_empty_column() {
        let col = EncodedColumn::from_values(ValueType::Int, &[]).unwrap();
        assert_eq!(RowIdCursor::new(&col).count(), 0);
    }

    #[test]
    fn cursor_exact_size() {
        let vals: Vec<Value> = (0..100).map(|i| Value::int(i % 7)).collect();
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let mut cur = RowIdCursor::new(&col);
        assert_eq!(cur.len(), 100);
        cur.next();
        assert_eq!(cur.len(), 99);
    }

    #[test]
    fn cursor_single_value_column() {
        let vals: Vec<Value> = vec![Value::str("only"); 1000];
        let col = EncodedColumn::from_values(ValueType::Str, &vals)
            .unwrap()
            .recode(Encoding::Rle)
            .unwrap();
        let ids: Vec<u32> = RowIdCursor::new(&col).map(|(_, id)| id).collect();
        assert!(ids.iter().all(|&id| id == 0));
        assert_eq!(ids.len(), 1000);
    }
}
