//! Row cursors: streaming `row → value id` access over a compressed column
//! without materializing anything per row.
//!
//! The cursor is a k-way merge over the per-value set-bit iterators. Thanks
//! to the partition invariant exactly one bitmap fires per row, so the merge
//! yields every row exactly once, in order. The CODS sequential-scan passes
//! (distinction, mergence) use either this cursor or the materialized
//! [`crate::Column::value_ids`] array depending on how many passes they need.

use crate::column::Column;
use cods_bitmap::OnesIter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Streaming cursor yielding `(row, value_id)` in ascending row order.
pub struct RowIdCursor<'a> {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    iters: Vec<OnesIter<'a>>,
    rows: u64,
    emitted: u64,
}

impl<'a> RowIdCursor<'a> {
    /// Opens a cursor over `column`.
    pub fn new(column: &'a Column) -> Self {
        let mut iters: Vec<OnesIter<'a>> = column
            .bitmaps()
            .iter()
            .map(|bm| bm.iter_ones())
            .collect();
        let mut heap = BinaryHeap::with_capacity(iters.len());
        for (id, it) in iters.iter_mut().enumerate() {
            if let Some(pos) = it.next() {
                heap.push(Reverse((pos, id as u32)));
            }
        }
        RowIdCursor {
            heap,
            iters,
            rows: column.rows(),
            emitted: 0,
        }
    }
}

impl Iterator for RowIdCursor<'_> {
    type Item = (u64, u32);

    fn next(&mut self) -> Option<(u64, u32)> {
        let Reverse((pos, id)) = self.heap.pop()?;
        debug_assert_eq!(pos, self.emitted, "partition invariant violated");
        self.emitted += 1;
        if let Some(next) = self.iters[id as usize].next() {
            self.heap.push(Reverse((next, id)));
        }
        Some((pos, id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.rows - self.emitted) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIdCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    #[test]
    fn cursor_yields_rows_in_order() {
        let vals: Vec<Value> = [3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3]
            .iter()
            .map(|&i| Value::int(i))
            .collect();
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let expected = col.value_ids();
        let streamed: Vec<(u64, u32)> = RowIdCursor::new(&col).collect();
        assert_eq!(streamed.len(), 10);
        for (i, &(row, id)) in streamed.iter().enumerate() {
            assert_eq!(row, i as u64);
            assert_eq!(id, expected[i]);
        }
    }

    #[test]
    fn cursor_on_empty_column() {
        let col = Column::from_values(ValueType::Int, &[]).unwrap();
        assert_eq!(RowIdCursor::new(&col).count(), 0);
    }

    #[test]
    fn cursor_exact_size() {
        let vals: Vec<Value> = (0..100).map(|i| Value::int(i % 7)).collect();
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let mut cur = RowIdCursor::new(&col);
        assert_eq!(cur.len(), 100);
        cur.next();
        assert_eq!(cur.len(), 99);
    }

    #[test]
    fn cursor_single_value_column() {
        let vals: Vec<Value> = vec![Value::str("only"); 1000];
        let col = Column::from_values(ValueType::Str, &vals).unwrap();
        let ids: Vec<u32> = RowIdCursor::new(&col).map(|(_, id)| id).collect();
        assert!(ids.iter().all(|&id| id == 0));
        assert_eq!(ids.len(), 1000);
    }
}
