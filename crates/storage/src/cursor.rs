//! Row cursors: streaming `row → value id` access over a compressed column
//! without materializing anything per row.
//!
//! The cursor walks the segment directory in order; within a segment it is
//! a k-way merge over the *present* values' set-bit iterators — thanks to
//! the partition invariant exactly one bitmap fires per row, so the merge
//! yields every row exactly once, in order. Because a segment only carries
//! the values occurring in its range, the heap is sized by per-segment
//! cardinality, not column cardinality. The CODS sequential-scan passes
//! (distinction, mergence) use either this cursor or the materialized
//! [`crate::Column::value_ids`] array depending on how many passes they
//! need.

use crate::column::Column;
use cods_bitmap::OnesIter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Streaming cursor yielding `(row, value_id)` in ascending row order.
pub struct RowIdCursor<'a> {
    column: &'a Column,
    /// Index of the segment currently being merged.
    seg_idx: usize,
    /// Global start row of the current segment.
    base: u64,
    /// Min-heap of `(local_row, slot)` where `slot` indexes the segment's
    /// present-id list.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    iters: Vec<OnesIter<'a>>,
    rows: u64,
    emitted: u64,
}

impl<'a> RowIdCursor<'a> {
    /// Opens a cursor over `column`.
    pub fn new(column: &'a Column) -> Self {
        let mut cur = RowIdCursor {
            column,
            seg_idx: 0,
            base: 0,
            heap: BinaryHeap::new(),
            iters: Vec::new(),
            rows: column.rows(),
            emitted: 0,
        };
        cur.open_segment(0);
        cur
    }

    fn open_segment(&mut self, idx: usize) {
        self.seg_idx = idx;
        self.heap.clear();
        self.iters.clear();
        let Some(seg) = self.column.segments().get(idx) else {
            return;
        };
        self.base = self.column.segment_start(idx);
        self.iters = seg.bitmaps().iter().map(|bm| bm.iter_ones()).collect();
        for (slot, it) in self.iters.iter_mut().enumerate() {
            if let Some(pos) = it.next() {
                self.heap.push(Reverse((pos, slot as u32)));
            }
        }
    }
}

impl Iterator for RowIdCursor<'_> {
    type Item = (u64, u32);

    fn next(&mut self) -> Option<(u64, u32)> {
        loop {
            if let Some(Reverse((pos, slot))) = self.heap.pop() {
                if let Some(next) = self.iters[slot as usize].next() {
                    self.heap.push(Reverse((next, slot)));
                }
                let seg = &self.column.segments()[self.seg_idx];
                let row = self.base + pos;
                debug_assert_eq!(row, self.emitted, "partition invariant violated");
                self.emitted += 1;
                return Some((row, seg.present_ids()[slot as usize]));
            }
            if self.seg_idx + 1 >= self.column.segment_count() {
                return None;
            }
            let next_idx = self.seg_idx + 1;
            self.open_segment(next_idx);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.rows - self.emitted) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIdCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::value::{Value, ValueType};

    #[test]
    fn cursor_yields_rows_in_order() {
        let vals: Vec<Value> = [3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3]
            .iter()
            .map(|&i| Value::int(i))
            .collect();
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let expected = col.value_ids();
        let streamed: Vec<(u64, u32)> = RowIdCursor::new(&col).collect();
        assert_eq!(streamed.len(), 10);
        for (i, &(row, id)) in streamed.iter().enumerate() {
            assert_eq!(row, i as u64);
            assert_eq!(id, expected[i]);
        }
    }

    #[test]
    fn cursor_crosses_segment_boundaries() {
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 37);
        for i in 0..500 {
            b.push(Value::int(i % 11)).unwrap();
        }
        let col = b.finish();
        assert!(col.segment_count() > 1);
        let expected = col.value_ids();
        for (i, (row, id)) in RowIdCursor::new(&col).enumerate() {
            assert_eq!(row, i as u64);
            assert_eq!(id, expected[i]);
        }
        assert_eq!(RowIdCursor::new(&col).count(), 500);
    }

    #[test]
    fn cursor_on_empty_column() {
        let col = Column::from_values(ValueType::Int, &[]).unwrap();
        assert_eq!(RowIdCursor::new(&col).count(), 0);
    }

    #[test]
    fn cursor_exact_size() {
        let vals: Vec<Value> = (0..100).map(|i| Value::int(i % 7)).collect();
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let mut cur = RowIdCursor::new(&col);
        assert_eq!(cur.len(), 100);
        cur.next();
        assert_eq!(cur.len(), 99);
    }

    #[test]
    fn cursor_single_value_column() {
        let vals: Vec<Value> = vec![Value::str("only"); 1000];
        let col = Column::from_values(ValueType::Str, &vals).unwrap();
        let ids: Vec<u32> = RowIdCursor::new(&col).map(|(_, id)| id).collect();
        assert!(ids.iter().all(|&id| id == 0));
        assert_eq!(ids.len(), 1000);
    }
}
