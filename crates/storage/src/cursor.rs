//! Row cursors: streaming `row → value id` access over a compressed column
//! without materializing anything per row.
//!
//! The cursor walks the unified segment directory in order, dispatching on
//! each segment's encoding. Within a bitmap segment it is a k-way merge
//! over the *present* values' set-bit iterators — thanks to the partition
//! invariant exactly one bitmap fires per row, so the merge yields every
//! row exactly once, in order; the heap is sized by per-segment
//! cardinality, not column cardinality. Within an RLE segment it simply
//! expands the run sequence. The CODS sequential-scan passes (distinction,
//! mergence) use either this cursor or the materialized
//! [`EncodedColumn::value_ids`] array depending on how many passes they
//! need.

use crate::encoded::{EncodedColumn, SegmentEnc};
use cods_bitmap::OnesIter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-segment iteration state.
enum SegState<'a> {
    /// Bitmap segment: min-heap of `(local_row, slot)` where `slot`
    /// indexes the segment's present-id list.
    Bitmap {
        heap: BinaryHeap<Reverse<(u64, u32)>>,
        iters: Vec<OnesIter<'a>>,
        ids: &'a [u32],
    },
    /// RLE segment: current run index and offset within it.
    Rle {
        runs: &'a [(u32, u64)],
        run_idx: usize,
        within: u64,
    },
    /// No more segments.
    Done,
}

/// Streaming cursor yielding `(row, value_id)` in ascending row order.
pub struct RowIdCursor<'a> {
    column: &'a EncodedColumn,
    seg_idx: usize,
    /// Next global row to emit. Opens at the current segment's start; the
    /// bitmap state leaves it fixed there (rows come out as `base + pos`),
    /// while the RLE state advances it row by row.
    base: u64,
    state: SegState<'a>,
    rows: u64,
    emitted: u64,
}

impl<'a> RowIdCursor<'a> {
    /// Opens a cursor over `column`.
    pub fn new(column: &'a EncodedColumn) -> Self {
        let mut cur = RowIdCursor {
            column,
            seg_idx: 0,
            base: 0,
            state: SegState::Done,
            rows: column.rows(),
            emitted: 0,
        };
        cur.open_segment(0);
        cur
    }

    fn open_segment(&mut self, idx: usize) {
        self.seg_idx = idx;
        let Some(seg) = self.column.segments().get(idx) else {
            self.state = SegState::Done;
            return;
        };
        self.base = self.column.segment_start(idx);
        self.state = match seg {
            SegmentEnc::Bitmap(seg) => {
                let mut iters: Vec<OnesIter<'a>> =
                    seg.bitmaps().iter().map(|bm| bm.iter_ones()).collect();
                let mut heap = BinaryHeap::with_capacity(iters.len());
                for (slot, it) in iters.iter_mut().enumerate() {
                    if let Some(pos) = it.next() {
                        heap.push(Reverse((pos, slot as u32)));
                    }
                }
                SegState::Bitmap {
                    heap,
                    iters,
                    ids: seg.present_ids(),
                }
            }
            SegmentEnc::Rle(seg) => SegState::Rle {
                runs: seg.seq().runs(),
                run_idx: 0,
                within: 0,
            },
        };
    }
}

impl Iterator for RowIdCursor<'_> {
    type Item = (u64, u32);

    fn next(&mut self) -> Option<(u64, u32)> {
        loop {
            match &mut self.state {
                SegState::Bitmap { heap, iters, ids } => {
                    if let Some(Reverse((pos, slot))) = heap.pop() {
                        if let Some(next) = iters[slot as usize].next() {
                            heap.push(Reverse((next, slot)));
                        }
                        let row = self.base + pos;
                        debug_assert_eq!(row, self.emitted, "partition invariant violated");
                        self.emitted += 1;
                        return Some((row, ids[slot as usize]));
                    }
                }
                SegState::Rle {
                    runs,
                    run_idx,
                    within,
                } => {
                    if let Some(&(id, len)) = runs.get(*run_idx) {
                        let row = self.base;
                        self.base += 1;
                        *within += 1;
                        if *within == len {
                            *run_idx += 1;
                            *within = 0;
                        }
                        debug_assert_eq!(row, self.emitted);
                        self.emitted += 1;
                        return Some((row, id));
                    }
                }
                SegState::Done => return None,
            }
            if self.seg_idx + 1 >= self.column.segment_count() {
                self.state = SegState::Done;
                return None;
            }
            let next_idx = self.seg_idx + 1;
            self.open_segment(next_idx);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.rows - self.emitted) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIdCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::{ColumnBuilder, Encoding};
    use crate::value::{Value, ValueType};

    #[test]
    fn cursor_yields_rows_in_order() {
        let vals: Vec<Value> = [3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3]
            .iter()
            .map(|&i| Value::int(i))
            .collect();
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let expected = col.value_ids();
        let streamed: Vec<(u64, u32)> = RowIdCursor::new(&col).collect();
        assert_eq!(streamed.len(), 10);
        for (i, &(row, id)) in streamed.iter().enumerate() {
            assert_eq!(row, i as u64);
            assert_eq!(id, expected[i]);
        }
    }

    #[test]
    fn cursor_crosses_segment_boundaries_in_any_encoding_mix() {
        let mut b = ColumnBuilder::with_segment_rows(ValueType::Int, 37);
        for i in 0..500 {
            b.push(Value::int(i % 11)).unwrap();
        }
        let bitmap = b.finish();
        assert!(bitmap.segment_count() > 1);
        let rle = bitmap.recode(Encoding::Rle).unwrap();
        let mut mixed = bitmap.clone();
        for i in (1..mixed.segment_count()).step_by(2) {
            mixed = mixed.recode_segments(i..i + 1, Encoding::Rle).unwrap();
        }
        let expected = bitmap.value_ids();
        for col in [&bitmap, &rle, &mixed] {
            for (i, (row, id)) in RowIdCursor::new(col).enumerate() {
                assert_eq!(row, i as u64);
                assert_eq!(id, expected[i]);
            }
            assert_eq!(RowIdCursor::new(col).count(), 500);
        }
    }

    #[test]
    fn cursor_on_empty_column() {
        let col = EncodedColumn::from_values(ValueType::Int, &[]).unwrap();
        assert_eq!(RowIdCursor::new(&col).count(), 0);
    }

    #[test]
    fn cursor_exact_size() {
        let vals: Vec<Value> = (0..100).map(|i| Value::int(i % 7)).collect();
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let mut cur = RowIdCursor::new(&col);
        assert_eq!(cur.len(), 100);
        cur.next();
        assert_eq!(cur.len(), 99);
    }

    #[test]
    fn cursor_single_value_column() {
        let vals: Vec<Value> = vec![Value::str("only"); 1000];
        let col = EncodedColumn::from_values(ValueType::Str, &vals)
            .unwrap()
            .recode(Encoding::Rle)
            .unwrap();
        let ids: Vec<u32> = RowIdCursor::new(&col).map(|(_, id)| id).collect();
        assert!(ids.iter().all(|&id| id == 0));
        assert_eq!(ids.len(), 1000);
    }
}
