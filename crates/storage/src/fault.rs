//! Crash-point fault injection for the durability test-suite.
//!
//! Every filesystem *mutation* on the save / journal / vacuum paths goes
//! through the wrappers in this module. When the layer is disarmed (the
//! default) each wrapper is a thread-local read plus the real syscall, so
//! production cost is negligible. A test arms the layer with a **unit
//! budget** — writes cost one unit per byte, every other mutating
//! operation (`set_len`, `sync_all`, `rename`, `remove_file`, file
//! creation) costs one unit — and the first unit past the budget "crashes
//! the process": the offending write stops mid-buffer, and every later
//! mutation fails. Sweeping the budget from 0 to the total unit count of a
//! save therefore simulates a power cut at every byte boundary *and* at
//! every boundary between syscalls.
//!
//! The state is thread-local on purpose: a crash test arms only its own
//! thread, so concurrently running tests (and background vacuum threads)
//! keep saving normally. Reads are deliberately not faulted: a crash
//! destroys in-flight writes, not the ability of the *next* process to
//! read what reached the disk.

use std::cell::Cell;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Sentinel budget meaning "no fault injection".
const UNLIMITED: i64 = i64::MAX;

thread_local! {
    /// Units remaining before the simulated crash ([`UNLIMITED`] = disarmed).
    static BUDGET: Cell<i64> = const { Cell::new(UNLIMITED) };
    /// Set once the budget is exhausted: the modeled process is "dead" and
    /// every further mutation fails.
    static DEAD: Cell<bool> = const { Cell::new(false) };
    /// Units consumed since the last [`arm`] — used by tests to size a sweep.
    static UNITS: Cell<u64> = const { Cell::new(0) };
}

/// Arm the layer on this thread: the next `budget` units of filesystem
/// mutation succeed, everything after fails. Resets the [`units`] counter.
pub fn arm(budget: u64) {
    UNITS.with(|u| u.set(0));
    DEAD.with(|d| d.set(false));
    BUDGET.with(|b| b.set(budget.min(UNLIMITED as u64 - 1) as i64));
}

/// Disarm the layer on this thread: all wrappers become passthroughs again.
pub fn disarm() {
    BUDGET.with(|b| b.set(UNLIMITED));
    DEAD.with(|d| d.set(false));
}

/// Units consumed since the last [`arm`] on this thread. Arm with
/// `u64::MAX`, run the operation under test, and read this to learn how
/// many crash points a sweep must cover.
pub fn units() -> u64 {
    UNITS.with(|u| u.get())
}

fn armed() -> bool {
    BUDGET.with(|b| b.get()) != UNLIMITED
}

fn injected() -> io::Error {
    io::Error::other("injected crash (fault budget exhausted)")
}

/// Charge `n` units against the budget. Returns how many of them fit;
/// marks the modeled process dead if any did not.
fn charge(n: u64) -> u64 {
    if DEAD.with(|d| d.get()) {
        return 0;
    }
    let before = BUDGET.with(|b| {
        let v = b.get();
        b.set(v.saturating_sub(n as i64));
        v
    });
    let granted = (before.max(0) as u64).min(n);
    if granted < n {
        DEAD.with(|d| d.set(true));
    }
    UNITS.with(|u| u.set(u.get() + granted));
    granted
}

/// Faultable `write_all`: on a mid-buffer crash the granted prefix still
/// reaches the file (as it could on real hardware) before the error.
pub(crate) fn write_all(f: &mut File, buf: &[u8]) -> io::Result<()> {
    if !armed() {
        return f.write_all(buf);
    }
    let granted = charge(buf.len() as u64) as usize;
    f.write_all(&buf[..granted])?;
    if granted < buf.len() {
        return Err(injected());
    }
    Ok(())
}

/// Charge one unit for a non-write mutation, failing if the budget is gone.
fn mutation() -> io::Result<()> {
    if !armed() {
        return Ok(());
    }
    if charge(1) == 1 {
        Ok(())
    } else {
        Err(injected())
    }
}

/// Faultable `File::set_len`.
pub(crate) fn set_len(f: &File, len: u64) -> io::Result<()> {
    mutation()?;
    f.set_len(len)
}

/// Faultable `File::sync_all`.
pub(crate) fn sync(f: &File) -> io::Result<()> {
    mutation()?;
    f.sync_all()
}

/// Faultable `fs::rename`.
pub(crate) fn rename(from: &Path, to: &Path) -> io::Result<()> {
    mutation()?;
    std::fs::rename(from, to)
}

/// Faultable `fs::remove_file`.
pub(crate) fn remove_file(path: &Path) -> io::Result<()> {
    mutation()?;
    std::fs::remove_file(path)
}

/// Faultable `File::create` (creation truncates, so it is a mutation).
pub(crate) fn create(path: &Path) -> io::Result<File> {
    mutation()?;
    File::create(path)
}

/// Faultable `fs::create_dir_all` (directory creation is a mutation).
pub(crate) fn create_dir_all(path: &Path) -> io::Result<()> {
    mutation()?;
    std::fs::create_dir_all(path)
}

/// Open an existing file for read+write. Opening mutates nothing, but a
/// dead modeled process cannot issue new syscalls either.
pub(crate) fn open_rw(path: &Path) -> io::Result<File> {
    if armed() && DEAD.with(|d| d.get()) {
        return Err(injected());
    }
    std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sweep_crashes_mid_buffer_then_everything_fails() {
        let dir = std::env::temp_dir().join(format!(
            "cods-fault-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");

        arm(u64::MAX);
        let mut f = create(&path).unwrap();
        write_all(&mut f, b"hello world").unwrap();
        sync(&f).unwrap();
        let total = units();
        assert_eq!(total, 1 + 11 + 1); // create + bytes + sync

        arm(1 + 4); // crash 4 bytes into the payload
        let mut f = create(&path).unwrap();
        assert!(write_all(&mut f, b"hello world").is_err());
        assert!(sync(&f).is_err());
        assert!(set_len(&f, 0).is_err());
        disarm();
        assert_eq!(std::fs::read(&path).unwrap(), b"hell");
        std::fs::remove_dir_all(&dir).ok();
    }
}
