//! Typed values stored in CODS tables.

use std::fmt;
use std::sync::Arc;

/// A totally ordered, hashable wrapper around `f64` (orders via
/// `f64::total_cmp`, hashes via the bit pattern), so floats can live in
/// dictionaries and B-tree indexes.
#[derive(Clone, Copy, Debug)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (total order).
    Float,
    /// UTF-8 string.
    Str,
}

impl ValueType {
    /// Short tag used by the binary persistence format.
    pub fn tag(self) -> u8 {
        match self {
            ValueType::Bool => 0,
            ValueType::Int => 1,
            ValueType::Float => 2,
            ValueType::Str => 3,
        }
    }

    /// Inverse of [`ValueType::tag`].
    pub fn from_tag(tag: u8) -> Option<ValueType> {
        Some(match tag {
            0 => ValueType::Bool,
            1 => ValueType::Int,
            2 => ValueType::Float,
            3 => ValueType::Str,
            _ => return None,
        })
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        };
        write!(f, "{name}")
    }
}

/// A single cell value.
///
/// Strings are reference-counted so that dictionary entries, query results
/// and row materializations share one allocation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(OrderedF64),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for integers.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Convenience constructor for floats.
    pub fn float(f: f64) -> Value {
        Value::Float(OrderedF64(f))
    }

    /// The value's type, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        Some(match self {
            Value::Null => return None,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
        })
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` if the value is NULL or matches `ty`.
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        self.value_type().is_none_or(|t| t == ty)
    }

    /// Parses a textual field into a value of type `ty`. Empty strings and
    /// the literal `NULL` parse as [`Value::Null`].
    pub fn parse(text: &str, ty: ValueType) -> Result<Value, String> {
        let t = text.trim();
        if t.is_empty() || t.eq_ignore_ascii_case("null") {
            return Ok(Value::Null);
        }
        Ok(match ty {
            ValueType::Bool => match t.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Value::Bool(true),
                "false" | "f" | "0" => Value::Bool(false),
                _ => return Err(format!("cannot parse {t:?} as bool")),
            },
            ValueType::Int => Value::Int(
                t.parse::<i64>()
                    .map_err(|e| format!("cannot parse {t:?} as int: {e}"))?,
            ),
            ValueType::Float => Value::float(
                t.parse::<f64>()
                    .map_err(|e| format!("cannot parse {t:?} as float: {e}"))?,
            ),
            ValueType::Str => Value::str(t),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ordering_is_total() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::int(-5),
            Value::int(7),
            Value::float(1.5),
            Value::float(f64::NAN),
            Value::str("abc"),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(sorted[0], Value::Null);
        // Sorting must be deterministic even with NaN present.
        let mut again = vals;
        again.sort();
        assert_eq!(sorted, again);
    }

    #[test]
    fn nan_is_hashable_and_equal_to_itself() {
        let mut set = HashSet::new();
        set.insert(Value::float(f64::NAN));
        assert!(set.contains(&Value::float(f64::NAN)));
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(Value::parse("42", ValueType::Int).unwrap(), Value::int(42));
        assert_eq!(
            Value::parse("hello", ValueType::Str).unwrap(),
            Value::str("hello")
        );
        assert_eq!(
            Value::parse("true", ValueType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::parse("2.5", ValueType::Float).unwrap(),
            Value::float(2.5)
        );
        assert_eq!(Value::parse("", ValueType::Int).unwrap(), Value::Null);
        assert_eq!(Value::parse("NULL", ValueType::Str).unwrap(), Value::Null);
        assert!(Value::parse("abc", ValueType::Int).is_err());
    }

    #[test]
    fn conformance() {
        assert!(Value::Null.conforms_to(ValueType::Int));
        assert!(Value::int(1).conforms_to(ValueType::Int));
        assert!(!Value::int(1).conforms_to(ValueType::Str));
    }

    #[test]
    fn type_tags_round_trip() {
        for ty in [
            ValueType::Bool,
            ValueType::Int,
            ValueType::Float,
            ValueType::Str,
        ] {
            assert_eq!(ValueType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(ValueType::from_tag(99), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::int(3).to_string(), "3");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(ValueType::Int.to_string(), "int");
    }
}
