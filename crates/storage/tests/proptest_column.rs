//! Property tests of the column store against a plain `Vec<Value>` model,
//! of the segmented layout against a single-segment (monolithic) column,
//! and of the RLE encoding against the bitmap encoding: every data-level
//! primitive must be bit-identical regardless of how the rows are chunked
//! or which physical encoding holds them.

use cods_storage::{Column, RleColumn, RowIdCursor, Value, ValueType};
use proptest::prelude::*;

/// A segment size so large the column degenerates to one segment — the
/// monolithic oracle.
const MONO: u64 = 1 << 40;

/// Small segment sizes that force boundary handling.
fn seg_sizes() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(1u64),
        Just(2u64),
        Just(7u64),
        Just(63u64),
        Just(64u64),
        Just(100u64),
    ]
}

fn values() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![(0i64..12).prop_map(Value::int), Just(Value::Null),],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn column_round_trips(vals in values()) {
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        col.check_invariants().unwrap();
        prop_assert_eq!(col.values(), vals);
    }

    #[test]
    fn filter_positions_matches_model(vals in values(), seed in prop::collection::vec(any::<u16>(), 0..100)) {
        prop_assume!(!vals.is_empty());
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let filtered = col.filter_positions(&positions);
        filtered.check_invariants().unwrap();
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(filtered.values(), expect);
    }

    #[test]
    fn gather_matches_model_with_unsorted_positions(
        vals in values(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let gathered = col.gather(&positions);
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(gathered.values(), expect);
    }

    #[test]
    fn concat_matches_model(a in values(), b in values()) {
        let ca = Column::from_values(ValueType::Int, &a).unwrap();
        let cb = Column::from_values(ValueType::Int, &b).unwrap();
        let joined = ca.concat(&cb).unwrap();
        joined.check_invariants().unwrap();
        let mut expect = a;
        expect.extend(b);
        prop_assert_eq!(joined.values(), expect);
    }

    #[test]
    fn slice_matches_model(vals in values(), a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let sliced = col.slice(lo, hi);
        prop_assert_eq!(sliced.values(), vals[lo as usize..hi as usize].to_vec());
    }

    #[test]
    fn rle_agrees_with_bitmap_encoding(vals in values()) {
        let bitmap = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        prop_assert_eq!(rle.values(), bitmap.values());
        prop_assert_eq!(rle.to_column().unwrap(), bitmap);
    }

    #[test]
    fn value_ids_partition_every_row(vals in values()) {
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let ids = col.value_ids();
        prop_assert_eq!(ids.len(), vals.len());
        for (row, id) in ids.iter().enumerate() {
            prop_assert_eq!(col.dict().value(*id), &vals[row]);
        }
    }

    // ---- Segmented vs monolithic equivalence ----

    #[test]
    fn segmented_filter_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        prop_assert!(mono.segment_count() <= 1);
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let a = segmented.filter_positions(&positions);
        let b = mono.filter_positions(&positions);
        a.check_invariants().unwrap();
        prop_assert_eq!(a.values(), b.values());
        prop_assert_eq!(a.dict(), b.dict());
    }

    #[test]
    fn segmented_concat_matches_monolithic(a in values(), b in values(), seg in seg_sizes()) {
        let sa = Column::from_values_with(ValueType::Int, &a, seg).unwrap();
        let sb = Column::from_values_with(ValueType::Int, &b, seg).unwrap();
        let ma = Column::from_values_with(ValueType::Int, &a, MONO).unwrap();
        let mb = Column::from_values_with(ValueType::Int, &b, MONO).unwrap();
        let joined_seg = sa.concat(&sb).unwrap();
        let joined_mono = ma.concat(&mb).unwrap();
        joined_seg.check_invariants().unwrap();
        prop_assert_eq!(joined_seg.values(), joined_mono.values());
        prop_assert_eq!(joined_seg.dict(), joined_mono.dict());
    }

    #[test]
    fn segmented_slice_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        let ss = segmented.slice(lo, hi);
        let ms = mono.slice(lo, hi);
        ss.check_invariants().unwrap();
        prop_assert_eq!(ss.values(), ms.values());
        prop_assert_eq!(ss.dict(), ms.dict());
    }

    #[test]
    fn segmented_cursor_matches_monolithic(vals in values(), seg in seg_sizes()) {
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        let a: Vec<(u64, u32)> = RowIdCursor::new(&segmented).collect();
        let b: Vec<(u64, u32)> = RowIdCursor::new(&mono).collect();
        // Dictionaries are built in the same first-appearance order, so the
        // id streams must be literally identical.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn segmented_value_bitmap_matches_monolithic(vals in values(), seg in seg_sizes()) {
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        for id in 0..segmented.distinct_count() as u32 {
            prop_assert_eq!(segmented.value_bitmap(id), mono.value_bitmap(id));
            prop_assert_eq!(segmented.value_count(id), mono.value_count(id));
        }
    }

    #[test]
    fn segmented_gather_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        prop_assert_eq!(
            segmented.gather(&positions).values(),
            mono.gather(&positions).values()
        );
    }

    #[test]
    fn persist_round_trip_across_versions(vals in values(), seg in seg_sizes()) {
        use cods_storage::persist::{decode_table, encode_table, encode_table_v1};
        use cods_storage::{EncodedColumn, Schema, Table};
        use std::sync::Arc;
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let col = Arc::new(EncodedColumn::Bitmap(
            Column::from_values_with(ValueType::Int, &vals, seg).unwrap(),
        ));
        let t = Table::new("t", schema, vec![col]).unwrap();
        // Current (segment directory) round trip.
        let now = decode_table(encode_table(&t)).unwrap();
        prop_assert_eq!(now.to_rows(), t.to_rows());
        now.check_invariants().unwrap();
        // Legacy (v1, monolithic) writer → current reader.
        let v1 = decode_table(encode_table_v1(&t)).unwrap();
        prop_assert_eq!(v1.to_rows(), t.to_rows());
        v1.check_invariants().unwrap();
    }

    // ---- RLE vs bitmap differential: every primitive bit-identical ----

    #[test]
    fn rle_filter_positions_matches_bitmap(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let bitmap = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        rle.check_invariants().unwrap();
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let fb = bitmap.filter_positions(&positions);
        let fr = rle.filter_positions(&positions);
        fr.check_invariants().unwrap();
        prop_assert_eq!(fr.values(), fb.values());
        prop_assert_eq!(fr.dict(), fb.dict());
        prop_assert_eq!(fr.value_ids(), fb.value_ids());
    }

    #[test]
    fn rle_gather_matches_bitmap(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let bitmap = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        prop_assert_eq!(
            rle.gather(&positions).values(),
            bitmap.gather(&positions).values()
        );
    }

    #[test]
    fn rle_concat_matches_bitmap(a in values(), b in values(), seg in seg_sizes()) {
        let ba = Column::from_values_with(ValueType::Int, &a, seg).unwrap();
        let bb = Column::from_values_with(ValueType::Int, &b, seg).unwrap();
        let ra = RleColumn::from_column(&ba);
        let rb = RleColumn::from_column(&bb);
        let joined_b = ba.concat(&bb).unwrap();
        let joined_r = ra.concat(&rb).unwrap();
        joined_r.check_invariants().unwrap();
        prop_assert_eq!(joined_r.values(), joined_b.values());
        prop_assert_eq!(joined_r.dict(), joined_b.dict());
    }

    #[test]
    fn rle_slice_matches_bitmap(
        vals in values(),
        seg in seg_sizes(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let bitmap = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        let sb = bitmap.slice(lo, hi);
        let sr = rle.slice(lo, hi);
        sr.check_invariants().unwrap();
        prop_assert_eq!(sr.values(), sb.values());
        prop_assert_eq!(sr.dict(), sb.dict());
    }

    #[test]
    fn rle_cursor_matches_bitmap(vals in values(), seg in seg_sizes()) {
        let bitmap = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        let a: Vec<(u64, u32)> = RowIdCursor::new(&bitmap).collect();
        let b: Vec<(u64, u32)> = rle.id_cursor().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rle_value_bitmaps_match_bitmap(vals in values(), seg in seg_sizes()) {
        let bitmap = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        for id in 0..bitmap.distinct_count() as u32 {
            prop_assert_eq!(rle.value_bitmap(id), bitmap.value_bitmap(id));
            prop_assert_eq!(rle.value_count(id), bitmap.value_count(id));
        }
        prop_assert_eq!(rle.to_column().unwrap(), bitmap);
    }

    #[test]
    fn rle_segmented_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let segmented = RleColumn::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = RleColumn::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        prop_assert!(mono.segment_count() <= 1);
        prop_assert_eq!(segmented.values(), mono.values());
        prop_assert_eq!(segmented.dict(), mono.dict());
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        prop_assert_eq!(
            segmented.filter_positions(&positions).values(),
            mono.filter_positions(&positions).values()
        );
    }

    #[test]
    fn compaction_preserves_results_both_encodings(
        slices in prop::collection::vec((any::<prop::sample::Index>(), 1u64..20), 1..40),
        seg in seg_sizes(),
    ) {
        // Build fragmented directories from a UNION chain of small slices,
        // then check compaction changes neither values nor dictionaries.
        let base_vals: Vec<Value> = (0..200).map(|i| Value::int(i % 9)).collect();
        let bitmap_base = Column::from_values_with(ValueType::Int, &base_vals, seg).unwrap();
        let rle_base = RleColumn::from_column(&bitmap_base);
        let mut bitmap_acc: Option<Column> = None;
        let mut rle_acc: Option<RleColumn> = None;
        for (start, len) in &slices {
            let lo = start.index(200) as u64;
            let hi = (lo + len).min(200);
            let bs = bitmap_base.slice(lo, hi);
            let rs = rle_base.slice(lo, hi);
            bitmap_acc = Some(match bitmap_acc {
                None => bs,
                Some(acc) => acc.concat(&bs).unwrap(),
            });
            rle_acc = Some(match rle_acc {
                None => rs,
                Some(acc) => acc.concat(&rs).unwrap(),
            });
        }
        let bitmap_acc = bitmap_acc.unwrap();
        let rle_acc = rle_acc.unwrap();
        let bc = bitmap_acc.compacted();
        let rc = rle_acc.compacted();
        bc.check_invariants().unwrap();
        rc.check_invariants().unwrap();
        prop_assert_eq!(bc.values(), bitmap_acc.values());
        prop_assert_eq!(rc.values(), rle_acc.values());
        prop_assert_eq!(bc.values(), rc.values());
        prop_assert_eq!(bc.dict(), bitmap_acc.dict());
        prop_assert_eq!(rc.dict(), rle_acc.dict());
        // Compacted directories agree on boundaries across encodings too.
        let b_sizes: Vec<u64> = bc.segments().iter().map(|s| s.rows()).collect();
        let r_sizes: Vec<u64> = rc.segments().iter().map(|s| s.rows()).collect();
        prop_assert_eq!(b_sizes, r_sizes);
    }

    #[test]
    fn rle_persist_round_trip(vals in values(), seg in seg_sizes()) {
        use cods_storage::persist::{decode_table, encode_table, encode_table_v1};
        use cods_storage::{EncodedColumn, Encoding, Schema, Table};
        use std::sync::Arc;
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let rle = RleColumn::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let t = Table::new("t", schema, vec![Arc::new(EncodedColumn::Rle(rle))]).unwrap();
        let now = decode_table(encode_table(&t)).unwrap();
        now.check_invariants().unwrap();
        prop_assert_eq!(now.to_rows(), t.to_rows());
        prop_assert_eq!(now.column(0).encoding(), Encoding::Rle);
        // Downgrade to v1 re-encodes as bitmaps with identical values.
        let v1 = decode_table(encode_table_v1(&t)).unwrap();
        v1.check_invariants().unwrap();
        prop_assert_eq!(v1.to_rows(), t.to_rows());
        prop_assert_eq!(v1.column(0).encoding(), Encoding::Bitmap);
    }
}
