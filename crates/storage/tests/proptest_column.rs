//! Property tests of the column store against a plain `Vec<Value>` model,
//! and of the segmented layout against a single-segment (monolithic)
//! column: every data-level primitive must be bit-identical regardless of
//! how the rows are chunked.

use cods_storage::{Column, RleColumn, RowIdCursor, Value, ValueType};
use proptest::prelude::*;

/// A segment size so large the column degenerates to one segment — the
/// monolithic oracle.
const MONO: u64 = 1 << 40;

/// Small segment sizes that force boundary handling.
fn seg_sizes() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(1u64),
        Just(2u64),
        Just(7u64),
        Just(63u64),
        Just(64u64),
        Just(100u64),
    ]
}

fn values() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![(0i64..12).prop_map(Value::int), Just(Value::Null),],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn column_round_trips(vals in values()) {
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        col.check_invariants().unwrap();
        prop_assert_eq!(col.values(), vals);
    }

    #[test]
    fn filter_positions_matches_model(vals in values(), seed in prop::collection::vec(any::<u16>(), 0..100)) {
        prop_assume!(!vals.is_empty());
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let filtered = col.filter_positions(&positions);
        filtered.check_invariants().unwrap();
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(filtered.values(), expect);
    }

    #[test]
    fn gather_matches_model_with_unsorted_positions(
        vals in values(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let gathered = col.gather(&positions);
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(gathered.values(), expect);
    }

    #[test]
    fn concat_matches_model(a in values(), b in values()) {
        let ca = Column::from_values(ValueType::Int, &a).unwrap();
        let cb = Column::from_values(ValueType::Int, &b).unwrap();
        let joined = ca.concat(&cb).unwrap();
        joined.check_invariants().unwrap();
        let mut expect = a;
        expect.extend(b);
        prop_assert_eq!(joined.values(), expect);
    }

    #[test]
    fn slice_matches_model(vals in values(), a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let sliced = col.slice(lo, hi);
        prop_assert_eq!(sliced.values(), vals[lo as usize..hi as usize].to_vec());
    }

    #[test]
    fn rle_agrees_with_bitmap_encoding(vals in values()) {
        let bitmap = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        prop_assert_eq!(rle.values(), bitmap.values());
        prop_assert_eq!(rle.to_column().unwrap(), bitmap);
    }

    #[test]
    fn value_ids_partition_every_row(vals in values()) {
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let ids = col.value_ids();
        prop_assert_eq!(ids.len(), vals.len());
        for (row, id) in ids.iter().enumerate() {
            prop_assert_eq!(col.dict().value(*id), &vals[row]);
        }
    }

    // ---- Segmented vs monolithic equivalence ----

    #[test]
    fn segmented_filter_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        prop_assert!(mono.segment_count() <= 1);
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let a = segmented.filter_positions(&positions);
        let b = mono.filter_positions(&positions);
        a.check_invariants().unwrap();
        prop_assert_eq!(a.values(), b.values());
        prop_assert_eq!(a.dict(), b.dict());
    }

    #[test]
    fn segmented_concat_matches_monolithic(a in values(), b in values(), seg in seg_sizes()) {
        let sa = Column::from_values_with(ValueType::Int, &a, seg).unwrap();
        let sb = Column::from_values_with(ValueType::Int, &b, seg).unwrap();
        let ma = Column::from_values_with(ValueType::Int, &a, MONO).unwrap();
        let mb = Column::from_values_with(ValueType::Int, &b, MONO).unwrap();
        let joined_seg = sa.concat(&sb).unwrap();
        let joined_mono = ma.concat(&mb).unwrap();
        joined_seg.check_invariants().unwrap();
        prop_assert_eq!(joined_seg.values(), joined_mono.values());
        prop_assert_eq!(joined_seg.dict(), joined_mono.dict());
    }

    #[test]
    fn segmented_slice_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        let ss = segmented.slice(lo, hi);
        let ms = mono.slice(lo, hi);
        ss.check_invariants().unwrap();
        prop_assert_eq!(ss.values(), ms.values());
        prop_assert_eq!(ss.dict(), ms.dict());
    }

    #[test]
    fn segmented_cursor_matches_monolithic(vals in values(), seg in seg_sizes()) {
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        let a: Vec<(u64, u32)> = RowIdCursor::new(&segmented).collect();
        let b: Vec<(u64, u32)> = RowIdCursor::new(&mono).collect();
        // Dictionaries are built in the same first-appearance order, so the
        // id streams must be literally identical.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn segmented_value_bitmap_matches_monolithic(vals in values(), seg in seg_sizes()) {
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        for id in 0..segmented.distinct_count() as u32 {
            prop_assert_eq!(segmented.value_bitmap(id), mono.value_bitmap(id));
            prop_assert_eq!(segmented.value_count(id), mono.value_count(id));
        }
    }

    #[test]
    fn segmented_gather_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let segmented = Column::from_values_with(ValueType::Int, &vals, seg).unwrap();
        let mono = Column::from_values_with(ValueType::Int, &vals, MONO).unwrap();
        prop_assert_eq!(
            segmented.gather(&positions).values(),
            mono.gather(&positions).values()
        );
    }

    #[test]
    fn persist_round_trip_across_versions(vals in values(), seg in seg_sizes()) {
        use cods_storage::persist::{decode_table, encode_table, encode_table_v1};
        use cods_storage::{Schema, Table};
        use std::sync::Arc;
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let col = Arc::new(Column::from_values_with(ValueType::Int, &vals, seg).unwrap());
        let t = Table::new("t", schema, vec![col]).unwrap();
        // Current (v2, segment directory) round trip.
        let v2 = decode_table(encode_table(&t)).unwrap();
        prop_assert_eq!(v2.to_rows(), t.to_rows());
        v2.check_invariants().unwrap();
        // Legacy (v1, monolithic) writer → current reader.
        let v1 = decode_table(encode_table_v1(&t)).unwrap();
        prop_assert_eq!(v1.to_rows(), t.to_rows());
        v1.check_invariants().unwrap();
    }
}
