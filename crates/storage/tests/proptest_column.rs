//! Property tests of the column store against a plain `Vec<Value>` model.

use cods_storage::{Column, RleColumn, Value, ValueType};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..12).prop_map(Value::int),
            Just(Value::Null),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn column_round_trips(vals in values()) {
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        col.check_invariants().unwrap();
        prop_assert_eq!(col.values(), vals);
    }

    #[test]
    fn filter_positions_matches_model(vals in values(), seed in prop::collection::vec(any::<u16>(), 0..100)) {
        prop_assume!(!vals.is_empty());
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let filtered = col.filter_positions(&positions);
        filtered.check_invariants().unwrap();
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(filtered.values(), expect);
    }

    #[test]
    fn gather_matches_model_with_unsorted_positions(
        vals in values(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let gathered = col.gather(&positions);
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(gathered.values(), expect);
    }

    #[test]
    fn concat_matches_model(a in values(), b in values()) {
        let ca = Column::from_values(ValueType::Int, &a).unwrap();
        let cb = Column::from_values(ValueType::Int, &b).unwrap();
        let joined = ca.concat(&cb).unwrap();
        joined.check_invariants().unwrap();
        let mut expect = a;
        expect.extend(b);
        prop_assert_eq!(joined.values(), expect);
    }

    #[test]
    fn slice_matches_model(vals in values(), a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let sliced = col.slice(lo, hi);
        prop_assert_eq!(sliced.values(), vals[lo as usize..hi as usize].to_vec());
    }

    #[test]
    fn rle_agrees_with_bitmap_encoding(vals in values()) {
        let bitmap = Column::from_values(ValueType::Int, &vals).unwrap();
        let rle = RleColumn::from_column(&bitmap);
        prop_assert_eq!(rle.values(), bitmap.values());
        prop_assert_eq!(rle.to_column().unwrap(), bitmap);
    }

    #[test]
    fn value_ids_partition_every_row(vals in values()) {
        let col = Column::from_values(ValueType::Int, &vals).unwrap();
        let ids = col.value_ids();
        prop_assert_eq!(ids.len(), vals.len());
        for (row, id) in ids.iter().enumerate() {
            prop_assert_eq!(col.dict().value(*id), &vals[row]);
        }
    }
}
