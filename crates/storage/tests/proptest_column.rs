//! Property tests of the column store against a plain `Vec<Value>` model,
//! of the segmented layout against a single-segment (monolithic) column,
//! and of the per-segment encodings against each other: every data-level
//! primitive must be bit-identical regardless of how the rows are chunked
//! or which physical encoding holds each segment — including **randomly
//! mixed** directories where bitmap and RLE segments interleave within one
//! column.

use cods_storage::{EncodedColumn, Encoding, RowIdCursor, Value, ValueType};
use proptest::prelude::*;

/// A segment size so large the column degenerates to one segment — the
/// monolithic oracle.
const MONO: u64 = 1 << 40;

/// Small segment sizes that force boundary handling.
fn seg_sizes() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(1u64),
        Just(2u64),
        Just(7u64),
        Just(63u64),
        Just(64u64),
        Just(100u64),
    ]
}

fn values() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![(0i64..12).prop_map(Value::int), Just(Value::Null),],
        0..300,
    )
}

fn bitmap_col(vals: &[Value], seg: u64) -> EncodedColumn {
    EncodedColumn::from_values_with(ValueType::Int, vals, seg).unwrap()
}

/// Recodes segments to RLE wherever `pattern` has a set bit — a random
/// per-segment encoding assignment.
fn mix(col: &EncodedColumn, pattern: u64) -> EncodedColumn {
    let mut out = col.clone();
    for i in 0..col.segment_count() {
        if pattern & (1 << (i % 64)) != 0 {
            out = out.recode_segments(i..i + 1, Encoding::Rle).unwrap();
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn column_round_trips(vals in values()) {
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        col.check_invariants().unwrap();
        prop_assert_eq!(col.values(), vals);
    }

    #[test]
    fn filter_positions_matches_model(vals in values(), seed in prop::collection::vec(any::<u16>(), 0..100)) {
        prop_assume!(!vals.is_empty());
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let filtered = col.filter_positions(&positions);
        filtered.check_invariants().unwrap();
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(filtered.values(), expect);
    }

    #[test]
    fn gather_matches_model_with_unsorted_positions(
        vals in values(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let gathered = col.gather(&positions);
        let expect: Vec<Value> = positions.iter().map(|&p| vals[p as usize].clone()).collect();
        prop_assert_eq!(gathered.values(), expect);
    }

    #[test]
    fn concat_matches_model(a in values(), b in values()) {
        let ca = EncodedColumn::from_values(ValueType::Int, &a).unwrap();
        let cb = EncodedColumn::from_values(ValueType::Int, &b).unwrap();
        let joined = ca.concat(&cb).unwrap();
        joined.check_invariants().unwrap();
        let mut expect = a;
        expect.extend(b);
        prop_assert_eq!(joined.values(), expect);
    }

    #[test]
    fn slice_matches_model(vals in values(), a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let sliced = col.slice(lo, hi);
        prop_assert_eq!(sliced.values(), vals[lo as usize..hi as usize].to_vec());
    }

    #[test]
    fn rle_agrees_with_bitmap_encoding(vals in values()) {
        let bitmap = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let rle = bitmap.recode(Encoding::Rle).unwrap();
        rle.check_invariants().unwrap();
        prop_assert_eq!(rle.values(), bitmap.values());
        prop_assert_eq!(rle.recode(Encoding::Bitmap).unwrap(), bitmap);
    }

    #[test]
    fn value_ids_partition_every_row(vals in values()) {
        let col = EncodedColumn::from_values(ValueType::Int, &vals).unwrap();
        let ids = col.value_ids();
        prop_assert_eq!(ids.len(), vals.len());
        for (row, id) in ids.iter().enumerate() {
            prop_assert_eq!(col.dict().value(*id), &vals[row]);
        }
    }

    // ---- Segmented vs monolithic equivalence ----

    #[test]
    fn segmented_filter_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let segmented = bitmap_col(&vals, seg);
        let mono = bitmap_col(&vals, MONO);
        prop_assert!(mono.segment_count() <= 1);
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        positions.sort_unstable();
        let a = segmented.filter_positions(&positions);
        let b = mono.filter_positions(&positions);
        a.check_invariants().unwrap();
        prop_assert_eq!(a.values(), b.values());
        prop_assert_eq!(a.dict(), b.dict());
    }

    #[test]
    fn segmented_concat_matches_monolithic(a in values(), b in values(), seg in seg_sizes()) {
        let sa = bitmap_col(&a, seg);
        let sb = bitmap_col(&b, seg);
        let ma = bitmap_col(&a, MONO);
        let mb = bitmap_col(&b, MONO);
        let joined_seg = sa.concat(&sb).unwrap();
        let joined_mono = ma.concat(&mb).unwrap();
        joined_seg.check_invariants().unwrap();
        prop_assert_eq!(joined_seg.values(), joined_mono.values());
        prop_assert_eq!(joined_seg.dict(), joined_mono.dict());
    }

    #[test]
    fn segmented_slice_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let segmented = bitmap_col(&vals, seg);
        let mono = bitmap_col(&vals, MONO);
        let ss = segmented.slice(lo, hi);
        let ms = mono.slice(lo, hi);
        ss.check_invariants().unwrap();
        prop_assert_eq!(ss.values(), ms.values());
        prop_assert_eq!(ss.dict(), ms.dict());
    }

    #[test]
    fn segmented_cursor_matches_monolithic(vals in values(), seg in seg_sizes()) {
        let segmented = bitmap_col(&vals, seg);
        let mono = bitmap_col(&vals, MONO);
        let a: Vec<(u64, u32)> = RowIdCursor::new(&segmented).collect();
        let b: Vec<(u64, u32)> = RowIdCursor::new(&mono).collect();
        // Dictionaries are built in the same first-appearance order, so the
        // id streams must be literally identical.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn segmented_value_bitmap_matches_monolithic(vals in values(), seg in seg_sizes()) {
        let segmented = bitmap_col(&vals, seg);
        let mono = bitmap_col(&vals, MONO);
        for id in 0..segmented.distinct_count() as u32 {
            prop_assert_eq!(segmented.value_bitmap(id), mono.value_bitmap(id));
            prop_assert_eq!(segmented.value_count(id), mono.value_count(id));
        }
    }

    #[test]
    fn segmented_gather_matches_monolithic(
        vals in values(),
        seg in seg_sizes(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let segmented = bitmap_col(&vals, seg);
        let mono = bitmap_col(&vals, MONO);
        prop_assert_eq!(
            segmented.gather(&positions).values(),
            mono.gather(&positions).values()
        );
    }

    #[test]
    fn persist_round_trip_across_versions(vals in values(), seg in seg_sizes()) {
        use cods_storage::persist::{decode_table, encode_table, encode_table_v1};
        use cods_storage::{Schema, Table};
        use std::sync::Arc;
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let col = Arc::new(bitmap_col(&vals, seg));
        let t = Table::new("t", schema, vec![col]).unwrap();
        // Current (unified directory) round trip.
        let now = decode_table(encode_table(&t)).unwrap();
        prop_assert_eq!(now.to_rows(), t.to_rows());
        now.check_invariants().unwrap();
        // Legacy (v1, monolithic) writer → current reader.
        let v1 = decode_table(encode_table_v1(&t)).unwrap();
        prop_assert_eq!(v1.to_rows(), t.to_rows());
        v1.check_invariants().unwrap();
    }

    // ---- Mixed-directory differential: every primitive bit-identical ----

    #[test]
    fn mixed_directory_matches_uniform_primitives(
        vals in values(),
        seg in seg_sizes(),
        pattern in any::<u64>(),
        seed in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        prop_assume!(!vals.is_empty());
        let bitmap = bitmap_col(&vals, seg);
        let mixed = mix(&bitmap, pattern);
        mixed.check_invariants().unwrap();
        prop_assert_eq!(mixed.values(), bitmap.values());
        prop_assert_eq!(mixed.value_ids(), bitmap.value_ids());
        prop_assert_eq!(mixed.dict(), bitmap.dict());
        // Filter (sorted) and gather (unsorted).
        let mut positions: Vec<u64> = seed
            .iter()
            .map(|&s| u64::from(s) % vals.len() as u64)
            .collect();
        let unsorted = positions.clone();
        positions.sort_unstable();
        let fm = mixed.filter_positions(&positions);
        fm.check_invariants().unwrap();
        prop_assert_eq!(fm.values(), bitmap.filter_positions(&positions).values());
        prop_assert_eq!(
            mixed.gather(&unsorted).values(),
            bitmap.gather(&unsorted).values()
        );
        // Cursor and value bitmaps.
        let ca: Vec<(u64, u32)> = RowIdCursor::new(&mixed).collect();
        let cb: Vec<(u64, u32)> = RowIdCursor::new(&bitmap).collect();
        prop_assert_eq!(ca, cb);
        for id in 0..bitmap.distinct_count() as u32 {
            prop_assert_eq!(mixed.value_bitmap(id), bitmap.value_bitmap(id));
            prop_assert_eq!(mixed.value_count(id), bitmap.value_count(id));
        }
    }

    #[test]
    fn mixed_slice_and_concat_match_uniform(
        vals in values(),
        seg in seg_sizes(),
        pattern in any::<u64>(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        prop_assume!(!vals.is_empty());
        let (mut lo, mut hi) = (a.index(vals.len() + 1) as u64, b.index(vals.len() + 1) as u64);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let bitmap = bitmap_col(&vals, seg);
        let mixed = mix(&bitmap, pattern);
        let sm = mixed.slice(lo, hi);
        sm.check_invariants().unwrap();
        prop_assert_eq!(sm.values(), bitmap.slice(lo, hi).values());
        // Concat of two differently mixed halves.
        let other = mix(&bitmap, pattern.rotate_left(17));
        let joined = mixed.concat(&other).unwrap();
        joined.check_invariants().unwrap();
        let mut expect = vals.clone();
        expect.extend(vals);
        prop_assert_eq!(joined.values(), expect);
    }

    #[test]
    fn mixed_compaction_preserves_results(
        slices in prop::collection::vec((any::<prop::sample::Index>(), 1u64..20), 1..40),
        seg in seg_sizes(),
        pattern in any::<u64>(),
    ) {
        // Build fragmented directories — uniform bitmap, uniform RLE, and
        // randomly mixed — from a UNION chain of small slices, then check
        // compaction changes neither values nor dictionaries, transcoding
        // mixed merge groups as needed.
        let base_vals: Vec<Value> = (0..200).map(|i| Value::int(i % 9)).collect();
        let bitmap_base = bitmap_col(&base_vals, seg);
        let rle_base = bitmap_base.recode(Encoding::Rle).unwrap();
        let mixed_base = mix(&bitmap_base, pattern);
        for base in [&bitmap_base, &rle_base, &mixed_base] {
            let mut acc: Option<EncodedColumn> = None;
            for (start, len) in &slices {
                let lo = start.index(200) as u64;
                let hi = (lo + len).min(200);
                let piece = base.slice(lo, hi);
                acc = Some(match acc {
                    None => piece,
                    Some(acc) => acc.concat(&piece).unwrap(),
                });
            }
            let acc = acc.unwrap();
            let compacted = acc.compacted();
            compacted.check_invariants().unwrap();
            prop_assert_eq!(compacted.values(), acc.values());
            prop_assert_eq!(compacted.dict(), acc.dict());
        }
    }

    #[test]
    fn auto_recode_keeps_data_and_respects_range_pins(
        vals in values(),
        seg in seg_sizes(),
        pattern in any::<u64>(),
    ) {
        let bitmap = bitmap_col(&vals, seg);
        let mixed = mix(&bitmap, pattern);
        let auto = mixed.auto_recoded().unwrap();
        auto.check_invariants().unwrap();
        prop_assert_eq!(auto.values(), bitmap.values());
        // Per-segment chooser picks are what the directory now holds.
        for i in 0..auto.segment_count() {
            if !auto.segment_pinned(i) {
                prop_assert_eq!(auto.segment_encoding(i), auto.choose_segment_encoding(i));
            }
        }
        // Pinned ranges (the RLE segments were range-recoded, hence
        // pinned) must keep their encoding through auto.
        for i in 0..mixed.segment_count() {
            if mixed.segment_pinned(i) {
                prop_assert_eq!(auto.segment_encoding(i), mixed.segment_encoding(i));
            }
        }
    }

    #[test]
    fn mixed_persist_round_trip(vals in values(), seg in seg_sizes(), pattern in any::<u64>()) {
        use cods_storage::persist::{decode_table, encode_table, encode_table_v1};
        use cods_storage::{Schema, Table};
        use std::sync::Arc;
        let schema = Schema::build(&[("c", ValueType::Int)], &[]).unwrap();
        let mixed = mix(&bitmap_col(&vals, seg), pattern);
        let t = Table::new("t", schema, vec![Arc::new(mixed.clone())]).unwrap();
        let now = decode_table(encode_table(&t)).unwrap();
        now.check_invariants().unwrap();
        prop_assert_eq!(now.to_rows(), t.to_rows());
        // Per-segment encodings and pins survive the v5 round trip.
        let col = now.column(0);
        prop_assert_eq!(col.encoding_counts(), mixed.encoding_counts());
        for i in 0..col.segment_count() {
            prop_assert_eq!(col.segment_encoding(i), mixed.segment_encoding(i));
            prop_assert_eq!(col.segment_pinned(i), mixed.segment_pinned(i));
        }
        // Downgrade to v1 re-encodes as bitmaps with identical values.
        let v1 = decode_table(encode_table_v1(&t)).unwrap();
        v1.check_invariants().unwrap();
        prop_assert_eq!(v1.to_rows(), t.to_rows());
        prop_assert_eq!(v1.column(0).uniform_encoding(), Some(Encoding::Bitmap));
    }
}
