//! # cods-bench
//!
//! Benchmark harness reproducing the CODS evaluation. The `fig3` binary
//! regenerates both panels of the paper's Figure 3 (decomposition and
//! mergence time vs. number of distinct values, for systems D / C / C+I /
//! S / M) plus per-SMO timings and ablations; the Criterion benches under
//! `benches/` cover the same ground at statistically robust micro scale.
//!
//! Row count defaults to 1M (the paper uses 10M); override with
//! `--rows` or the `CODS_BENCH_ROWS` environment variable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod runner;

pub use runner::{
    decomposed_rows, experiment_spec, median_duration, s_schema, t_schema, time_decompose,
    time_merge, CHANGED_COLS, COMMON_COLS, UNCHANGED_COLS,
};
