//! Shared measurement runners for the Figure 3 harness and the Criterion
//! benches: each function performs the *untimed* setup (loading the input
//! into the engine under test) and times only the evolution itself, exactly
//! as the paper measures.

use cods::{decompose, merge, DecomposeSpec, MergeStrategy};
use cods_query::{
    decompose_column_level, decompose_row_level, merge_column_level, merge_row_level,
};
use cods_rowstore::{InsertPolicy, RowDb};
use cods_storage::{Catalog, Schema, Table, Value};
use cods_workload::gen::r_schema;
use cods_workload::System;
use std::time::{Duration, Instant};

/// Column names of the generated evaluation table.
pub const UNCHANGED_COLS: [&str; 2] = ["entity", "attr"];
/// Columns of the changed (distinct) side.
pub const CHANGED_COLS: [&str; 2] = ["entity", "detail"];
/// The join/key column.
pub const COMMON_COLS: [&str; 1] = ["entity"];

/// The decomposition spec of the experiment
/// (`R(entity, attr, detail) → S(entity, attr), T(entity, detail)`).
pub fn experiment_spec(verify_fd: bool) -> DecomposeSpec {
    let spec = DecomposeSpec::new("S", &UNCHANGED_COLS, "T", &CHANGED_COLS);
    if verify_fd {
        spec
    } else {
        spec.trusted()
    }
}

fn load_row_db(rows: &[Vec<Value>], policy: InsertPolicy) -> RowDb {
    let mut db = RowDb::new(policy);
    db.create_table("R", r_schema()).unwrap();
    // Input loading is setup, not the measured evolution: insert directly
    // into the heap (batch semantics) so journaled engines do not pay their
    // per-row transaction cost for data that exists before the experiment.
    let table = db.table_mut("R").unwrap();
    for r in rows {
        table.insert(r).unwrap();
    }
    db
}

/// Times a decomposition of `rows` under `system`. The column `table` (if
/// provided) avoids rebuilding the bitmap-encoded input for the CODS and M
/// runs.
pub fn time_decompose(system: System, rows: &[Vec<Value>], table: Option<&Table>) -> Duration {
    match system {
        System::Cods => {
            let owned;
            let t = match table {
                Some(t) => t,
                None => {
                    owned = Table::from_rows("R", r_schema(), rows).unwrap();
                    &owned
                }
            };
            let spec = experiment_spec(false);
            let start = Instant::now();
            let out = decompose(t, &spec).unwrap();
            let elapsed = start.elapsed();
            std::hint::black_box(&out.changed);
            elapsed
        }
        System::ColumnQueryLevel => {
            let catalog = Catalog::new();
            match table {
                Some(t) => catalog.create(t.renamed("R")).unwrap(),
                None => catalog
                    .create(Table::from_rows("R", r_schema(), rows).unwrap())
                    .unwrap(),
            }
            let start = Instant::now();
            decompose_column_level(
                &catalog,
                "R",
                "S",
                &UNCHANGED_COLS,
                "T",
                &CHANGED_COLS,
                &COMMON_COLS,
            )
            .unwrap();
            start.elapsed()
        }
        System::CommercialRow | System::CommercialRowIndexed | System::SqliteLike => {
            let (policy, with_indexes) = match system {
                System::CommercialRow => (InsertPolicy::Batch, false),
                System::CommercialRowIndexed => (InsertPolicy::Indexed, true),
                System::SqliteLike => (InsertPolicy::JournaledAutocommit, false),
                _ => unreachable!(),
            };
            let mut db = load_row_db(rows, policy);
            let start = Instant::now();
            decompose_row_level(
                &mut db,
                "R",
                "S",
                &UNCHANGED_COLS,
                "T",
                &CHANGED_COLS,
                &COMMON_COLS,
                with_indexes,
            )
            .unwrap();
            start.elapsed()
        }
    }
}

/// Builds the decomposed inputs `(S, T)` as raw rows (setup for mergence).
pub fn decomposed_rows(rows: &[Vec<Value>]) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let s: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| vec![r[0].clone(), r[1].clone()])
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut t = Vec::new();
    for r in rows {
        if seen.insert(r[0].clone()) {
            t.push(vec![r[0].clone(), r[2].clone()]);
        }
    }
    (s, t)
}

/// Schema of the unchanged side `S(entity, attr)`.
pub fn s_schema() -> Schema {
    r_schema().project(&UNCHANGED_COLS, &[]).unwrap()
}

/// Schema of the changed side `T(entity, detail)` keyed by entity.
pub fn t_schema() -> Schema {
    r_schema().project(&CHANGED_COLS, &COMMON_COLS).unwrap()
}

/// Times the mergence of the decomposed inputs under `system`.
pub fn time_merge(
    system: System,
    s_rows: &[Vec<Value>],
    t_rows: &[Vec<Value>],
    s_table: Option<&Table>,
    t_table: Option<&Table>,
) -> Duration {
    match system {
        System::Cods => {
            let (s_owned, t_owned);
            let s = match s_table {
                Some(t) => t,
                None => {
                    s_owned = Table::from_rows("S", s_schema(), s_rows).unwrap();
                    &s_owned
                }
            };
            let t = match t_table {
                Some(t) => t,
                None => {
                    t_owned = Table::from_rows("T", t_schema(), t_rows).unwrap();
                    &t_owned
                }
            };
            let start = Instant::now();
            let out = merge(
                s,
                t,
                "R",
                &MergeStrategy::KeyForeignKey { keyed: "T".into() },
            )
            .unwrap();
            let elapsed = start.elapsed();
            std::hint::black_box(&out.output);
            elapsed
        }
        System::ColumnQueryLevel => {
            let catalog = Catalog::new();
            match (s_table, t_table) {
                (Some(s), Some(t)) => {
                    catalog.create(s.renamed("S")).unwrap();
                    catalog.create(t.renamed("T")).unwrap();
                }
                _ => {
                    catalog
                        .create(Table::from_rows("S", s_schema(), s_rows).unwrap())
                        .unwrap();
                    catalog
                        .create(Table::from_rows("T", t_schema(), t_rows).unwrap())
                        .unwrap();
                }
            }
            let start = Instant::now();
            merge_column_level(&catalog, "S", "T", "R", &COMMON_COLS).unwrap();
            start.elapsed()
        }
        System::CommercialRow | System::CommercialRowIndexed | System::SqliteLike => {
            let (policy, with_indexes) = match system {
                System::CommercialRow => (InsertPolicy::Batch, false),
                System::CommercialRowIndexed => (InsertPolicy::Indexed, true),
                System::SqliteLike => (InsertPolicy::JournaledAutocommit, false),
                _ => unreachable!(),
            };
            let mut db = RowDb::new(policy);
            db.create_table("S", s_schema()).unwrap();
            db.create_table("T", t_schema()).unwrap();
            // Setup loads bypass the per-row transaction policy (see
            // load_row_db).
            let s_t = db.table_mut("S").unwrap();
            for r in s_rows {
                s_t.insert(r).unwrap();
            }
            let t_t = db.table_mut("T").unwrap();
            for r in t_rows {
                t_t.insert(r).unwrap();
            }
            let start = Instant::now();
            merge_row_level(&mut db, "S", "T", "R", &COMMON_COLS, with_indexes).unwrap();
            start.elapsed()
        }
    }
}

/// Median of several runs of `f` (CODS runs are microsecond-scale, so the
/// harness repeats them; second-scale baselines run once).
pub fn median_duration(mut runs: Vec<Duration>) -> Duration {
    runs.sort();
    runs[runs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_workload::GenConfig;

    #[test]
    fn all_systems_run_decompose() {
        let rows = cods_workload::generate_rows(&GenConfig::sweep_point(2_000, 50));
        let table = Table::from_rows("R", r_schema(), &rows).unwrap();
        for &sys in System::decomposition_systems() {
            let d = time_decompose(sys, &rows, Some(&table));
            assert!(d.as_nanos() > 0, "{sys:?} reported zero time");
        }
    }

    #[test]
    fn all_systems_run_merge() {
        let rows = cods_workload::generate_rows(&GenConfig::sweep_point(2_000, 50));
        let (s_rows, t_rows) = decomposed_rows(&rows);
        assert_eq!(t_rows.len(), 50);
        let s = Table::from_rows("S", s_schema(), &s_rows).unwrap();
        let t = Table::from_rows("T", t_schema(), &t_rows).unwrap();
        for &sys in System::mergence_systems() {
            let d = time_merge(sys, &s_rows, &t_rows, Some(&s), Some(&t));
            assert!(d.as_nanos() > 0, "{sys:?} reported zero time");
        }
    }

    #[test]
    fn median_is_middle() {
        let d = median_duration(vec![
            Duration::from_millis(5),
            Duration::from_millis(1),
            Duration::from_millis(3),
        ]);
        assert_eq!(d, Duration::from_millis(3));
    }
}
