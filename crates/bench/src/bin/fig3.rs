//! `fig3` — regenerates the paper's evaluation.
//!
//! ```text
//! fig3 [decompose|merge|smos|ablation|all] [--rows N] [--distinct a,b,c] [--repeat K]
//! ```
//!
//! * `decompose` — Figure 3(a): decomposition time vs. #distinct values for
//!   D (CODS), C, C+I, S, M.
//! * `merge` — Figure 3(b): mergence time vs. #distinct values for D, C,
//!   C+I, M.
//! * `smos` — per-operator timing for the whole Table 1 catalogue.
//! * `ablation` — design-choice ablations (WAH vs. plain filtering, FD
//!   verification cost, key-FK vs. general mergence, compression ratio).
//!
//! Row count defaults to `CODS_BENCH_ROWS` or 1,000,000; pass
//! `--rows 10000000` for the paper's full scale.

use cods::{decompose, merge_general, merge_key_fk, Cods, ColumnFill, MergeStrategy, Smo};
use cods_bench::*;
use cods_bitmap::PlainBitmap;
use cods_query::Predicate;
use cods_storage::{ColumnDef, Table, TableStats, Value, ValueType};
use cods_workload::gen::r_schema;
use cods_workload::{GenConfig, SweepSpec, System};
use std::time::{Duration, Instant};

struct Args {
    command: String,
    rows: u64,
    distinct: Option<Vec<u64>>,
    repeat: usize,
    systems: Option<Vec<System>>,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        rows: std::env::var("CODS_BENCH_ROWS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1_000_000),
        distinct: None,
        repeat: 3,
        systems: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "decompose" | "merge" | "smos" | "ablation" | "all" => args.command = a,
            "--rows" => {
                args.rows = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rows needs a number");
            }
            "--distinct" => {
                let list = it.next().expect("--distinct needs a,b,c");
                args.distinct = Some(
                    list.split(',')
                        .map(|s| s.trim().parse().expect("distinct values are numbers"))
                        .collect(),
                );
            }
            "--systems" => {
                let list = it.next().expect("--systems needs D,C,C+I,S,M");
                args.systems = Some(
                    list.split(',')
                        .map(|s| match s.trim() {
                            "D" => System::Cods,
                            "C" => System::CommercialRow,
                            "C+I" => System::CommercialRowIndexed,
                            "S" => System::SqliteLike,
                            "M" => System::ColumnQueryLevel,
                            other => panic!("unknown system {other:?}"),
                        })
                        .collect(),
                );
            }
            "--repeat" => {
                args.repeat = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeat needs a number");
            }
            "--help" | "-h" => {
                println!("fig3 [decompose|merge|smos|ablation|all] [--rows N] [--distinct a,b,c] [--repeat K] [--systems D,C,C+I,S,M]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:9.3}s")
    } else if s >= 1e-3 {
        format!("{:8.3}ms", s * 1e3)
    } else {
        format!("{:8.1}us", s * 1e6)
    }
}

fn sweep(args: &Args) -> Vec<u64> {
    args.distinct
        .clone()
        .unwrap_or_else(|| SweepSpec::scaled(args.rows).distinct_values)
}

fn figure3a(args: &Args) {
    println!("\n=== Figure 3(a): Decomposition — time vs. #distinct values ===");
    println!(
        "rows = {}, repeat = {} (D/M medians; row stores single-shot)\n",
        args.rows, args.repeat
    );
    let default_systems = System::decomposition_systems().to_vec();
    let systems: Vec<System> = args.systems.clone().unwrap_or(default_systems);
    let systems = &systems[..];
    print!("{:>10}", "#distinct");
    for s in systems {
        print!("{:>12}", s.label());
    }
    println!();
    for &d in &sweep(args) {
        let rows = cods_workload::generate_rows(&GenConfig::sweep_point(args.rows, d));
        let table = Table::from_rows("R", r_schema(), &rows).unwrap();
        print!("{d:>10}");
        for &sys in systems {
            let reps = match sys {
                System::SqliteLike => 1,
                _ => args.repeat,
            };
            let times: Vec<Duration> = (0..reps)
                .map(|_| time_decompose(sys, &rows, Some(&table)))
                .collect();
            print!("{:>12}", fmt_dur(median_duration(times)));
        }
        println!();
    }
    println!("\n(shape check: D orders of magnitude below every query-level system;");
    println!(" S slowest, C+I above C, M between D and the row stores)");
}

fn figure3b(args: &Args) {
    println!("\n=== Figure 3(b): Mergence — time vs. #distinct values ===");
    println!("rows = {}, repeat = {}\n", args.rows, args.repeat);
    let default_systems = System::mergence_systems().to_vec();
    let systems: Vec<System> = args
        .systems
        .clone()
        .map(|v| v.into_iter().filter(|s| *s != System::SqliteLike).collect())
        .unwrap_or(default_systems);
    let systems = &systems[..];
    print!("{:>10}", "#distinct");
    for s in systems {
        print!("{:>12}", s.label());
    }
    println!();
    for &d in &sweep(args) {
        let rows = cods_workload::generate_rows(&GenConfig::sweep_point(args.rows, d));
        let (s_rows, t_rows) = decomposed_rows(&rows);
        let s_table = Table::from_rows("S", s_schema(), &s_rows).unwrap();
        let t_table = Table::from_rows("T", t_schema(), &t_rows).unwrap();
        print!("{d:>10}");
        for &sys in systems {
            let reps = match sys {
                System::SqliteLike => 1,
                _ => args.repeat,
            };
            let times: Vec<Duration> = (0..reps)
                .map(|_| time_merge(sys, &s_rows, &t_rows, Some(&s_table), Some(&t_table)))
                .collect();
            print!("{:>12}", fmt_dur(median_duration(times)));
        }
        println!();
    }
}

fn smo_catalogue(args: &Args) {
    let rows_n = args.rows.min(200_000);
    println!("\n=== Table 1 operator catalogue — data-level timings ===");
    println!("rows = {rows_n}\n");
    let cfg = GenConfig::sweep_point(rows_n, 1_000.min(rows_n));
    let base = cods_workload::generate_table("R", &cfg);

    let run = |name: &str, f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        println!("  {name:<18} {}", fmt_dur(start.elapsed()));
    };

    // CREATE / COPY / RENAME / DROP TABLE.
    let cods = Cods::new();
    cods.catalog().create(base.renamed("R")).unwrap();
    run("CREATE TABLE", &mut || {
        cods.execute(Smo::CreateTable {
            name: "fresh".into(),
            schema: r_schema(),
        })
        .unwrap();
    });
    run("COPY TABLE", &mut || {
        cods.execute(Smo::CopyTable {
            from: "R".into(),
            to: "R_copy".into(),
        })
        .unwrap();
    });
    run("RENAME TABLE", &mut || {
        cods.execute(Smo::RenameTable {
            from: "R_copy".into(),
            to: "R_copy2".into(),
        })
        .unwrap();
    });
    run("DROP TABLE", &mut || {
        cods.execute(Smo::DropTable {
            name: "R_copy2".into(),
        })
        .unwrap();
    });

    // Column SMOs.
    run("ADD COLUMN", &mut || {
        cods.execute(Smo::AddColumn {
            table: "R".into(),
            column: ColumnDef::new("flag", ValueType::Int),
            fill: ColumnFill::Default(Value::int(0)),
        })
        .unwrap();
    });
    run("RENAME COLUMN", &mut || {
        cods.execute(Smo::RenameColumn {
            table: "R".into(),
            from: "flag".into(),
            to: "flag2".into(),
        })
        .unwrap();
    });
    run("DROP COLUMN", &mut || {
        cods.execute(Smo::DropColumn {
            table: "R".into(),
            column: "flag2".into(),
        })
        .unwrap();
    });

    // PARTITION / UNION.
    run("PARTITION TABLE", &mut || {
        cods.execute(Smo::PartitionTable {
            input: "R".into(),
            predicate: Predicate::lt("entity", (cfg.distinct_entities / 2) as i64),
            satisfying: "R_lo".into(),
            rest: "R_hi".into(),
        })
        .unwrap();
    });
    run("UNION TABLES", &mut || {
        cods.execute(Smo::UnionTables {
            left: "R_lo".into(),
            right: "R_hi".into(),
            output: "R".into(),
            drop_inputs: true,
        })
        .unwrap();
    });

    // DECOMPOSE / MERGE.
    run("DECOMPOSE TABLE", &mut || {
        cods.execute(Smo::DecomposeTable {
            input: "R".into(),
            spec: experiment_spec(false),
        })
        .unwrap();
    });
    run("MERGE TABLES", &mut || {
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
    });
}

fn ablations(args: &Args) {
    let rows_n = args.rows.min(500_000);
    println!("\n=== Ablations ===");
    println!("rows = {rows_n}\n");
    let cfg = GenConfig::sweep_point(rows_n, 10_000.min(rows_n / 2).max(2));
    let table = cods_workload::generate_table("R", &cfg);

    // (1) FD verification cost in decomposition.
    let t0 = Instant::now();
    decompose(&table, &experiment_spec(false)).unwrap();
    let trusted = t0.elapsed();
    let t0 = Instant::now();
    decompose(&table, &experiment_spec(true)).unwrap();
    let verified = t0.elapsed();
    println!("  decompose (trusted)      {}", fmt_dur(trusted));
    println!("  decompose (FD verified)  {}", fmt_dur(verified));

    // (2) key-FK vs. general mergence on identical inputs.
    let out = decompose(&table, &experiment_spec(false)).unwrap();
    let (s, t) = (out.unchanged, out.changed);
    let t0 = Instant::now();
    merge_key_fk(&s, &t, "R1", &["entity".into()]).unwrap();
    let kfk = t0.elapsed();
    let t0 = Instant::now();
    merge_general(&s, &t, "R2", &["entity".into()]).unwrap();
    let general = t0.elapsed();
    println!("  merge (key-foreign key)  {}", fmt_dur(kfk));
    println!("  merge (general 2-pass)   {}", fmt_dur(general));

    // (3) WAH bitmap filtering vs. naive uncompressed gather.
    let col = table.column_by_name("entity").unwrap();
    let bm = &col.value_bitmap(0);
    let positions: Vec<u64> = (0..table.rows()).step_by(7).collect();
    let t0 = Instant::now();
    let filtered = bm.filter_positions(&positions);
    let wah_time = t0.elapsed();
    let plain = PlainBitmap::from_wah(bm);
    let t0 = Instant::now();
    let plain_filtered = plain.filter_positions(&positions);
    let plain_time = t0.elapsed();
    assert_eq!(filtered.count_ones(), plain_filtered.count_ones());
    println!("  bitmap filter (WAH)      {}", fmt_dur(wah_time));
    println!("  bitmap filter (plain)    {}", fmt_dur(plain_time));

    // (4) clustering + encoding: unclustered WAH vs. clustered WAH vs. RLE.
    {
        // Pin bitmap so the timed cluster_by is the pure sort+gather —
        // the adaptive chooser skips pinned columns, keeping this
        // figure's WAH-vs-WAH comparison and its sort-cost number free of
        // chooser/re-encode time.
        let unclustered = cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(rows_n, 1_000.min(rows_n / 2).max(2)),
        )
        .recoded_pinned(cods_storage::Encoding::Bitmap)
        .unwrap();
        let t0 = Instant::now();
        let clustered = unclustered.cluster_by(&["entity"]).unwrap();
        let cluster_time = t0.elapsed();
        let col_u = unclustered.column_by_name("entity").unwrap();
        let col_c = clustered.column_by_name("entity").unwrap();
        let rle = col_c.recode(cods_storage::Encoding::Rle).unwrap();
        println!(
            "\n  clustering (rows = {rows_n}, sort cost {}):",
            fmt_dur(cluster_time)
        );
        println!(
            "  entity column, unclustered WAH: {:>10} bytes",
            col_u.payload_bytes()
        );
        println!(
            "  entity column, clustered WAH:   {:>10} bytes",
            col_c.payload_bytes()
        );
        println!(
            "  entity column, clustered RLE:   {:>10} bytes ({} runs)",
            rle.payload_bytes(),
            rle.run_count()
        );
    }

    // (5) compression ratio vs. #distinct values.
    println!("\n  compression (rows = {rows_n}):");
    println!(
        "  {:>10} {:>14} {:>14} {:>8}",
        "#distinct", "WAH bytes", "plain vxr", "ratio"
    );
    for d in [100u64, 1_000, 10_000] {
        if d > rows_n {
            break;
        }
        let t = cods_workload::generate_table("R", &GenConfig::sweep_point(rows_n, d));
        let stats = TableStats::of(&t);
        let c = &stats.columns[0];
        println!(
            "  {:>10} {:>14} {:>14} {:>7.1}x",
            d, c.payload_bytes, c.plain_matrix_bytes, c.compression_ratio
        );
    }
}

/// One untimed pass of every system at small scale, so the first measured
/// configuration does not absorb allocator / page-cache warmup.
fn warmup() {
    let rows = cods_workload::generate_rows(&GenConfig::sweep_point(5_000, 100));
    let table = Table::from_rows("R", r_schema(), &rows).unwrap();
    for &sys in System::decomposition_systems() {
        let _ = time_decompose(sys, &rows, Some(&table));
    }
    let (s_rows, t_rows) = decomposed_rows(&rows);
    for &sys in System::mergence_systems() {
        let _ = time_merge(sys, &s_rows, &t_rows, None, None);
    }
}

fn main() {
    let args = parse_args();
    println!("CODS evaluation harness (paper scale: rows = 10,000,000)");
    warmup();
    match args.command.as_str() {
        "decompose" => figure3a(&args),
        "merge" => figure3b(&args),
        "smos" => smo_catalogue(&args),
        "ablation" => ablations(&args),
        "all" => {
            figure3a(&args);
            figure3b(&args);
            smo_catalogue(&args);
            ablations(&args);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}
