//! Segment scaling: decompose + merge on a ≥1M-row table, comparing the
//! segmented directory (default 64 Ki rows → segment-parallel execution
//! across the pool) against a single-segment build of the same data (the
//! monolithic pre-refactor execution shape: one serial pass per column).
//!
//! Prints per-configuration medians and the speedup, and cross-checks that
//! both configurations produce identical evolution results before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cods::{decompose, merge, MergeStrategy};
use cods_bench::experiment_spec;
use cods_storage::Table;
use cods_workload::gen::r_schema;
use cods_workload::GenConfig;

const ROWS: u64 = 1 << 20; // 1,048,576
const DISTINCT: u64 = 10_000;
const MONO_SEG: u64 = 1 << 40;

fn median_of(mut f: impl FnMut() -> Duration, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

struct Setup {
    seg: Table,
    mono: Table,
}

fn setup() -> Setup {
    let rows = cods_workload::generate_rows(&GenConfig::sweep_point(ROWS, DISTINCT));
    let seg = Table::from_rows("R", r_schema(), &rows).unwrap();
    let mono = Table::from_rows_with_segment_rows("R", r_schema(), &rows, MONO_SEG).unwrap();
    assert!(
        seg.column(0).segment_count() >= 2,
        "segmented build must emit multiple segments"
    );
    assert_eq!(mono.column(0).segment_count(), 1);
    Setup { seg, mono }
}

fn verify_identical(s: &Setup) {
    let spec = experiment_spec(false);
    let a = decompose(&s.seg, &spec).unwrap();
    let b = decompose(&s.mono, &spec).unwrap();
    assert_eq!(a.distinct_keys, b.distinct_keys);
    assert!(
        cods::verify::same_tuples(&a.changed, &b.changed).unwrap(),
        "segmented and monolithic decompose disagree"
    );
    let ma = merge(
        &a.unchanged,
        &a.changed,
        "R1",
        &MergeStrategy::KeyForeignKey { keyed: "T".into() },
    )
    .unwrap();
    assert!(
        cods::verify::verify_lossless_round_trip(&s.seg, &a.unchanged, &a.changed).unwrap(),
        "segmented round trip lost tuples"
    );
    assert!(
        cods::verify::same_tuples(&ma.output, &s.seg).unwrap(),
        "segmented merge disagrees with input"
    );
    eprintln!("verify: segmented and single-segment results identical");
}

fn bench_segment_scaling(c: &mut Criterion) {
    let s = setup();
    verify_identical(&s);
    let spec = experiment_spec(false);

    let time_decompose = |t: &Table| {
        let start = Instant::now();
        black_box(decompose(t, &spec).unwrap());
        start.elapsed()
    };
    let d_seg = median_of(|| time_decompose(&s.seg), 5);
    let d_mono = median_of(|| time_decompose(&s.mono), 5);

    let out_seg = decompose(&s.seg, &spec).unwrap();
    let out_mono = decompose(&s.mono, &spec).unwrap();
    let time_merge = |su: &Table, tu: &Table| {
        let start = Instant::now();
        black_box(
            merge(
                su,
                tu,
                "R1",
                &MergeStrategy::KeyForeignKey { keyed: "T".into() },
            )
            .unwrap(),
        );
        start.elapsed()
    };
    let m_seg = median_of(|| time_merge(&out_seg.unchanged, &out_seg.changed), 5);
    let m_mono = median_of(|| time_merge(&out_mono.unchanged, &out_mono.changed), 5);

    eprintln!("\n== segment_scaling ({ROWS} rows, {DISTINCT} distinct keys) ==");
    eprintln!(
        "decompose   segmented {:>12?}   single-segment {:>12?}   speedup {:.2}x",
        d_seg,
        d_mono,
        d_mono.as_secs_f64() / d_seg.as_secs_f64()
    );
    eprintln!(
        "merge (kfk) segmented {:>12?}   single-segment {:>12?}   speedup {:.2}x",
        m_seg,
        m_mono,
        m_mono.as_secs_f64() / m_seg.as_secs_f64()
    );
    let total_seg = d_seg + m_seg;
    let total_mono = d_mono + m_mono;
    eprintln!(
        "decompose+merge segmented {:>12?}   single-segment {:>12?}   speedup {:.2}x",
        total_seg,
        total_mono,
        total_mono.as_secs_f64() / total_seg.as_secs_f64()
    );

    // Criterion-style groups for the harness record.
    let mut group = c.benchmark_group("segment_scaling");
    group.sample_size(5);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("decompose/segmented", |b| {
        b.iter(|| black_box(decompose(&s.seg, &spec).unwrap()));
    });
    group.bench_function("decompose/single_segment", |b| {
        b.iter(|| black_box(decompose(&s.mono, &spec).unwrap()));
    });
    group.bench_function("merge_kfk/segmented", |b| {
        b.iter(|| {
            black_box(
                merge(
                    &out_seg.unchanged,
                    &out_seg.changed,
                    "R1",
                    &MergeStrategy::KeyForeignKey { keyed: "T".into() },
                )
                .unwrap(),
            )
        });
    });
    group.bench_function("merge_kfk/single_segment", |b| {
        b.iter(|| {
            black_box(
                merge(
                    &out_mono.unchanged,
                    &out_mono.changed,
                    "R1",
                    &MergeStrategy::KeyForeignKey { keyed: "T".into() },
                )
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_segment_scaling);
criterion_main!(benches);
