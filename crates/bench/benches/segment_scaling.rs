//! Segment scaling: decompose + merge on a ≥1M-row table, comparing the
//! segmented directory (default 64 Ki rows → segment-parallel execution
//! across the pool) against a single-segment build of the same data (the
//! monolithic pre-refactor execution shape: one serial pass per column).
//!
//! Prints per-configuration medians and the speedup, and cross-checks that
//! both configurations produce identical evolution results before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cods::{decompose, merge, MergeStrategy};
use cods_bench::experiment_spec;
use cods_storage::Table;
use cods_workload::gen::r_schema;
use cods_workload::GenConfig;

const ROWS: u64 = 1 << 20; // 1,048,576
const DISTINCT: u64 = 10_000;
const MONO_SEG: u64 = 1 << 40;
/// Point scans per timed sweep of the clustered-RLE scan benchmark.
const SCANS: u64 = 64;

fn median_of(mut f: impl FnMut() -> Duration, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

struct Setup {
    seg: Table,
    mono: Table,
    /// The same data run-length encoded, segmented and single-segment.
    rle_seg: Table,
    rle_mono: Table,
    /// Clustered by entity and RLE encoded (the paper's RLE use case):
    /// each value occupies one run, concentrated in one row range.
    rle_clustered_seg: Table,
    rle_clustered_mono: Table,
}

fn setup() -> Setup {
    let rows = cods_workload::generate_rows(&GenConfig::sweep_point(ROWS, DISTINCT));
    let seg = Table::from_rows("R", r_schema(), &rows).unwrap();
    let mono = Table::from_rows_with_segment_rows("R", r_schema(), &rows, MONO_SEG).unwrap();
    assert!(
        seg.column(0).segment_count() >= 2,
        "segmented build must emit multiple segments"
    );
    assert_eq!(mono.column(0).segment_count(), 1);
    let rle_seg = seg.recoded(cods_storage::Encoding::Rle).unwrap();
    let rle_mono = mono.recoded(cods_storage::Encoding::Rle).unwrap();
    assert!(rle_seg.column(0).segment_count() >= 2);
    assert_eq!(rle_mono.column(0).segment_count(), 1);
    let clustered_seg = seg.cluster_by(&["entity"]).unwrap();
    let clustered_mono = mono.cluster_by(&["entity"]).unwrap();
    let rle_clustered_seg = clustered_seg.recoded(cods_storage::Encoding::Rle).unwrap();
    let rle_clustered_mono = clustered_mono.recoded(cods_storage::Encoding::Rle).unwrap();
    Setup {
        seg,
        mono,
        rle_seg,
        rle_mono,
        rle_clustered_seg,
        rle_clustered_mono,
    }
}

fn verify_identical(s: &Setup) {
    let spec = experiment_spec(false);
    let a = decompose(&s.seg, &spec).unwrap();
    let b = decompose(&s.mono, &spec).unwrap();
    assert_eq!(a.distinct_keys, b.distinct_keys);
    assert!(
        cods::verify::same_tuples(&a.changed, &b.changed).unwrap(),
        "segmented and monolithic decompose disagree"
    );
    let ma = merge(
        &a.unchanged,
        &a.changed,
        "R1",
        &MergeStrategy::KeyForeignKey { keyed: "T".into() },
    )
    .unwrap();
    assert!(
        cods::verify::verify_lossless_round_trip(&s.seg, &a.unchanged, &a.changed).unwrap(),
        "segmented round trip lost tuples"
    );
    assert!(
        cods::verify::same_tuples(&ma.output, &s.seg).unwrap(),
        "segmented merge disagrees with input"
    );
    // The RLE path must agree with the bitmap path bit for bit, segmented
    // and single-segment alike.
    let ra = decompose(&s.rle_seg, &spec).unwrap();
    let rb = decompose(&s.rle_mono, &spec).unwrap();
    assert_eq!(ra.distinct_keys, a.distinct_keys);
    assert_eq!(
        ra.changed.to_rows(),
        a.changed.to_rows(),
        "RLE decompose disagrees with bitmap decompose"
    );
    assert_eq!(
        ra.changed.to_rows(),
        rb.changed.to_rows(),
        "segmented and monolithic RLE decompose disagree"
    );
    // Pruned scans return identical masks on every configuration.
    for i in 0..SCANS {
        let pred = cods_query::Predicate::eq("entity", (i * 97) as i64 % DISTINCT as i64);
        let m_seg = cods_query::bitmap_scan::predicate_mask(&s.rle_clustered_seg, &pred).unwrap();
        let m_mono = cods_query::bitmap_scan::predicate_mask(&s.rle_clustered_mono, &pred).unwrap();
        let m_bitmap = cods_query::bitmap_scan::predicate_mask(
            &s.rle_clustered_seg
                .recoded(cods_storage::Encoding::Bitmap)
                .unwrap(),
            &pred,
        )
        .unwrap();
        assert_eq!(m_seg, m_mono, "RLE scan masks diverge across segmentations");
        assert_eq!(m_seg, m_bitmap, "RLE scan masks diverge from bitmap");
    }
    eprintln!("verify: segmented, single-segment, and RLE results identical");
}

fn bench_segment_scaling(c: &mut Criterion) {
    let s = setup();
    verify_identical(&s);
    let spec = experiment_spec(false);

    let time_decompose = |t: &Table| {
        let start = Instant::now();
        black_box(decompose(t, &spec).unwrap());
        start.elapsed()
    };
    let d_seg = median_of(|| time_decompose(&s.seg), 5);
    let d_mono = median_of(|| time_decompose(&s.mono), 5);

    let out_seg = decompose(&s.seg, &spec).unwrap();
    let out_mono = decompose(&s.mono, &spec).unwrap();
    let time_merge = |su: &Table, tu: &Table| {
        let start = Instant::now();
        black_box(
            merge(
                su,
                tu,
                "R1",
                &MergeStrategy::KeyForeignKey { keyed: "T".into() },
            )
            .unwrap(),
        );
        start.elapsed()
    };
    let m_seg = median_of(|| time_merge(&out_seg.unchanged, &out_seg.changed), 5);
    let m_mono = median_of(|| time_merge(&out_mono.unchanged, &out_mono.changed), 5);

    eprintln!("\n== segment_scaling ({ROWS} rows, {DISTINCT} distinct keys) ==");
    eprintln!(
        "decompose   segmented {:>12?}   single-segment {:>12?}   speedup {:.2}x",
        d_seg,
        d_mono,
        d_mono.as_secs_f64() / d_seg.as_secs_f64()
    );
    eprintln!(
        "merge (kfk) segmented {:>12?}   single-segment {:>12?}   speedup {:.2}x",
        m_seg,
        m_mono,
        m_mono.as_secs_f64() / m_seg.as_secs_f64()
    );
    let total_seg = d_seg + m_seg;
    let total_mono = d_mono + m_mono;
    eprintln!(
        "decompose+merge segmented {:>12?}   single-segment {:>12?}   speedup {:.2}x",
        total_seg,
        total_mono,
        total_mono.as_secs_f64() / total_seg.as_secs_f64()
    );

    // RLE variant: the same decompose with every column run-length
    // encoded, plus a point-scan sweep over the clustered RLE column —
    // the paper's RLE use case — where segment stats prune every row range
    // the value does not occur in. Segmented throughput must not fall
    // behind monolithic, and the pruned scans are where the directory wins
    // even on one core.
    let d_rle_seg = median_of(|| time_decompose(&s.rle_seg), 5);
    let d_rle_mono = median_of(|| time_decompose(&s.rle_mono), 5);
    eprintln!(
        "decompose (rle) segmented {:>10?}   single-segment {:>12?}   speedup {:.2}x",
        d_rle_seg,
        d_rle_mono,
        d_rle_mono.as_secs_f64() / d_rle_seg.as_secs_f64()
    );
    let time_scans = |t: &Table| {
        let start = Instant::now();
        for i in 0..SCANS {
            let pred = cods_query::Predicate::eq("entity", (i * 97) as i64 % DISTINCT as i64);
            black_box(cods_query::bitmap_scan::predicate_mask(t, &pred).unwrap());
        }
        start.elapsed()
    };
    let sc_seg = median_of(|| time_scans(&s.rle_clustered_seg), 5);
    let sc_mono = median_of(|| time_scans(&s.rle_clustered_mono), 5);
    eprintln!(
        "{SCANS} pruned point scans (clustered rle) segmented {:>10?}   single-segment {:>10?}   speedup {:.2}x",
        sc_seg,
        sc_mono,
        sc_mono.as_secs_f64() / sc_seg.as_secs_f64()
    );
    let rle_total_seg = d_rle_seg + sc_seg;
    let rle_total_mono = d_rle_mono + sc_mono;
    eprintln!(
        "rle decompose+scans segmented {:>10?}   single-segment {:>12?}   speedup {:.2}x",
        rle_total_seg,
        rle_total_mono,
        rle_total_mono.as_secs_f64() / rle_total_seg.as_secs_f64()
    );

    // Criterion-style groups for the harness record.
    let mut group = c.benchmark_group("segment_scaling");
    group.sample_size(5);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("decompose/segmented", |b| {
        b.iter(|| black_box(decompose(&s.seg, &spec).unwrap()));
    });
    group.bench_function("decompose/single_segment", |b| {
        b.iter(|| black_box(decompose(&s.mono, &spec).unwrap()));
    });
    group.bench_function("decompose_rle/segmented", |b| {
        b.iter(|| black_box(decompose(&s.rle_seg, &spec).unwrap()));
    });
    group.bench_function("decompose_rle/single_segment", |b| {
        b.iter(|| black_box(decompose(&s.rle_mono, &spec).unwrap()));
    });
    group.bench_function("scan_rle_clustered/segmented", |b| {
        b.iter(|| {
            let pred = cods_query::Predicate::eq("entity", 4_987i64);
            black_box(cods_query::bitmap_scan::predicate_mask(&s.rle_clustered_seg, &pred).unwrap())
        });
    });
    group.bench_function("scan_rle_clustered/single_segment", |b| {
        b.iter(|| {
            let pred = cods_query::Predicate::eq("entity", 4_987i64);
            black_box(
                cods_query::bitmap_scan::predicate_mask(&s.rle_clustered_mono, &pred).unwrap(),
            )
        });
    });
    group.bench_function("merge_kfk/segmented", |b| {
        b.iter(|| {
            black_box(
                merge(
                    &out_seg.unchanged,
                    &out_seg.changed,
                    "R1",
                    &MergeStrategy::KeyForeignKey { keyed: "T".into() },
                )
                .unwrap(),
            )
        });
    });
    group.bench_function("merge_kfk/single_segment", |b| {
        b.iter(|| {
            black_box(
                merge(
                    &out_mono.unchanged,
                    &out_mono.changed,
                    "R1",
                    &MergeStrategy::KeyForeignKey { keyed: "T".into() },
                )
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_segment_scaling);
criterion_main!(benches);
