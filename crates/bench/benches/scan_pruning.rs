//! Zone-map scan pruning: 1 Mi-row range scans over a clustered and a
//! uniform table, in both encodings, with zone pruning enabled
//! ([`predicate_mask`]) vs disabled ([`predicate_mask_unpruned`]).
//!
//! Before timing, every (table × predicate) pair is cross-checked for
//! byte-identical masks between the two paths — pruning must never change
//! a result, only skip work. The clustered tables are where zones pay:
//! a range predicate's satisfying values live in a handful of segments and
//! every other segment is rejected by an O(1) rank comparison instead of a
//! walk over its present-id stats. The uniform tables are the honest
//! contrast: every segment spans the whole value range, zones reject
//! nothing, and the two paths time alike.
//!
//! Also prints what the adaptive encoding chooser picks for each table —
//! RLE for the clustered column, bitmap for the uniform one.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cods_query::bitmap_scan::{predicate_mask, predicate_mask_unpruned};
use cods_query::Predicate;
use cods_storage::{Schema, Table, Value, ValueType};

const ROWS: u64 = 1 << 20; // 1,048,576
const DISTINCT: u64 = 1 << 18; // 262,144 → mean run of 4 when clustered
/// Width of each range predicate in value space (1/256 of the domain).
const RANGE: i64 = (DISTINCT / 256) as i64;
/// Range scans per timed sweep.
const SCANS: usize = 16;

fn median_of(mut f: impl FnMut() -> Duration, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

fn int_table(name: &str, values: impl Iterator<Item = i64>) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
    let rows: Vec<Vec<Value>> = values.map(|v| vec![Value::int(v)]).collect();
    Table::from_rows(name, schema, &rows).unwrap()
}

fn range_preds() -> Vec<Predicate> {
    (0..SCANS)
        .map(|i| {
            let lo = (i as i64 * 97 * RANGE) % (DISTINCT as i64 - RANGE);
            Predicate::ge("k", lo).and(Predicate::lt("k", lo + RANGE))
        })
        .collect()
}

fn sweep(t: &Table, preds: &[Predicate], pruned: bool) -> Duration {
    let start = Instant::now();
    for p in preds {
        let mask = if pruned {
            predicate_mask(t, p).unwrap()
        } else {
            predicate_mask_unpruned(t, p).unwrap()
        };
        black_box(mask);
    }
    start.elapsed()
}

fn bench_scan_pruning(c: &mut Criterion) {
    let clustered = int_table("C", (0..ROWS).map(|i| (i * DISTINCT / ROWS) as i64));
    let uniform = int_table(
        "U",
        (0..ROWS).map(|i| ((i.wrapping_mul(2_654_435_761)) % DISTINCT) as i64),
    );
    let setups = [
        ("clustered/bitmap", clustered.clone()),
        (
            "clustered/rle",
            clustered.recoded(cods_storage::Encoding::Rle).unwrap(),
        ),
        ("uniform/bitmap", uniform.clone()),
        (
            "uniform/rle",
            uniform.recoded(cods_storage::Encoding::Rle).unwrap(),
        ),
    ];
    let preds = range_preds();

    // Verified-identical results on every configuration before any timing.
    for (label, t) in &setups {
        for p in &preds {
            let a = predicate_mask(t, p).unwrap();
            let b = predicate_mask_unpruned(t, p).unwrap();
            assert_eq!(a, b, "{label}: pruned and unpruned masks diverge for {p:?}");
            assert!(a.count_ones() > 0, "{label}: degenerate predicate {p:?}");
        }
    }
    eprintln!(
        "verify: pruned == unpruned masks on all {} configurations",
        setups.len()
    );
    for (name, t) in [("clustered", &clustered), ("uniform", &uniform)] {
        let picks: Vec<String> = t
            .columns()
            .iter()
            .map(|c| c.choose_encoding().to_string())
            .collect();
        eprintln!("chooser pick for {name}: {}", picks.join(", "));
    }

    eprintln!("\n== scan_pruning ({ROWS} rows, {DISTINCT} distinct, {SCANS} range scans of width {RANGE}) ==");
    for (label, t) in &setups {
        let on = median_of(|| sweep(t, &preds, true), 5);
        let off = median_of(|| sweep(t, &preds, false), 5);
        eprintln!(
            "{label:<18} pruned {on:>12?}   unpruned {off:>12?}   speedup {:.2}x",
            off.as_secs_f64() / on.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("scan_pruning");
    group.sample_size(5);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for (label, t) in &setups {
        group.bench_function(format!("{label}/pruned"), |b| {
            b.iter(|| black_box(sweep(t, &preds, true)))
        });
        group.bench_function(format!("{label}/unpruned"), |b| {
            b.iter(|| black_box(sweep(t, &preds, false)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_pruning);
criterion_main!(benches);
