//! Micro-benchmarks of the WAH bitmap kernel: logical ops, filtering, and
//! construction — against the uncompressed `PlainBitmap` baseline where a
//! comparison is meaningful.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cods_bitmap::{PlainBitmap, Wah};

const BITS: u64 = 1_000_000;

fn sparse(seed: u64, period: u64) -> Wah {
    Wah::from_sorted_positions(
        (0..BITS).filter(|i| (i + seed).is_multiple_of(period)),
        BITS,
    )
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_ops");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for period in [2u64, 100, 10_000] {
        let a = sparse(0, period);
        let b = sparse(1, period);
        group.bench_with_input(BenchmarkId::new("wah_or", period), &period, |bch, _| {
            bch.iter(|| black_box(a.or(&b)));
        });
        group.bench_with_input(BenchmarkId::new("wah_and", period), &period, |bch, _| {
            bch.iter(|| black_box(a.and(&b)));
        });
        let pa = PlainBitmap::from_wah(&a);
        let pb = PlainBitmap::from_wah(&b);
        group.bench_with_input(BenchmarkId::new("plain_or", period), &period, |bch, _| {
            bch.iter(|| black_box(pa.or(&pb)));
        });
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_filter");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let positions: Vec<u64> = (0..BITS).step_by(5).collect();
    for period in [2u64, 1_000] {
        let a = sparse(0, period);
        group.bench_with_input(BenchmarkId::new("wah_filter", period), &period, |bch, _| {
            bch.iter(|| black_box(a.filter_positions(&positions)));
        });
        let pa = PlainBitmap::from_wah(&a);
        group.bench_with_input(
            BenchmarkId::new("plain_filter", period),
            &period,
            |bch, _| {
                bch.iter(|| black_box(pa.filter_positions(&positions)));
            },
        );
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_build");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("from_sorted_positions_1pct", |b| {
        b.iter(|| black_box(Wah::from_sorted_positions((0..BITS).step_by(100), BITS)));
    });
    group.bench_function("ones_run_synthesis", |b| {
        b.iter(|| black_box(Wah::ones_run(BITS / 4, BITS / 2, BITS)));
    });
    group.finish();
}

criterion_group!(benches, bench_ops, bench_filter, bench_build);
criterion_main!(benches);
