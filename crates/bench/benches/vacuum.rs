//! Heap compaction: append-save churn versus vacuum on a 128 Ki-row
//! catalog persisted in format v6.
//!
//! Before timing, three properties are asserted:
//!
//! 1. **Churn strands dead heap.** Re-encoding one column and append-saving
//!    it N times grows the file by ~N stale payload generations, and
//!    [`heap_stats`] accounts every stranded byte (`live + dead = heap`).
//! 2. **Vacuum shrinks the file to live size.** After [`vacuum_file`] the
//!    heap is exactly the live payload bytes — zero dead — and the file is
//!    smaller than the churned one. Scan masks over the compacted file are
//!    byte-identical to the pre-vacuum masks.
//! 3. **The background trigger fires.** Under a hair-trigger [`AutoVacuum`]
//!    policy one more churn round schedules a compaction off the save path,
//!    and after [`wait_for_auto_vacuum`] the heap is fully live again.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cods_query::bitmap_scan::predicate_mask;
use cods_query::Predicate;
use cods_storage::persist::{read_catalog, save_catalog};
use cods_storage::{
    heap_stats, set_auto_vacuum, vacuum_file, wait_for_auto_vacuum, AutoVacuum, Catalog, Encoding,
    Schema, Table, Value, ValueType,
};

const ROWS: u64 = 1 << 17; // 131,072
const CHURN_ROUNDS: usize = 6;

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!("cods_bench_vacuum_{}.catalog", std::process::id()))
}

/// One table: a clustered key (reused verbatim by every churn save) and a
/// low-cardinality payload column (the one the churn re-encodes).
fn build_catalog() -> Catalog {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::int((i / 16) as i64),
                Value::int(((i.wrapping_mul(2_654_435_761)) % 64) as i64),
            ]
        })
        .collect();
    let cat = Catalog::new();
    cat.create(Table::from_rows("C", schema, &rows).unwrap())
        .unwrap();
    cat
}

/// Transcode `v` (alternating target encodings so every round really
/// replaces its payloads) and append-save.
fn churn_once(cat: &Catalog, path: &PathBuf, round: usize) {
    let enc = if round.is_multiple_of(2) {
        Encoding::Rle
    } else {
        Encoding::Bitmap
    };
    let t = cat.get("C").unwrap();
    cat.put(t.with_column_encoding("v", enc).unwrap());
    save_catalog(cat, path).unwrap();
}

fn preds() -> Vec<Predicate> {
    vec![
        Predicate::eq("v", 7),
        Predicate::ge("k", 1000).and(Predicate::lt("k", 2000)),
        Predicate::eq("v", 32).and(Predicate::ge("k", 4000)),
    ]
}

fn masks(path: &PathBuf) -> Vec<cods_bitmap::Wah> {
    let t = read_catalog(path).unwrap().get("C").unwrap();
    preds()
        .iter()
        .map(|p| predicate_mask(&t, p).unwrap())
        .collect()
}

fn bench_vacuum(c: &mut Criterion) {
    let path = scratch();
    std::fs::remove_file(&path).ok();
    // The churn phase *wants* to observe dead bytes accruing — keep the
    // background compactor out of the way until step 3.
    set_auto_vacuum(None);

    let cat = build_catalog();
    save_catalog(&cat, &path).unwrap();
    let fresh = heap_stats(&path).unwrap();
    assert_eq!(fresh.dead_bytes, 0, "{fresh:?}");

    // -- 1. Churn: every round strands the previous `v` payloads.
    let t0 = Instant::now();
    for round in 0..CHURN_ROUNDS {
        churn_once(&cat, &path, round);
    }
    let t_churn = t0.elapsed();
    let churned = heap_stats(&path).unwrap();
    assert!(churned.dead_bytes > 0, "{churned:?}");
    assert_eq!(churned.live_bytes + churned.dead_bytes, churned.heap_bytes);
    assert!(churned.file_bytes > fresh.file_bytes);
    eprintln!("== vacuum ({ROWS} rows, {CHURN_ROUNDS} churn rounds) ==");
    eprintln!(
        "churn: {t_churn:?} for {CHURN_ROUNDS} append-saves; file {} -> {} bytes ({} dead of {} heap)",
        fresh.file_bytes, churned.file_bytes, churned.dead_bytes, churned.heap_bytes
    );

    // -- 2. Vacuum shrinks to live size with byte-identical masks.
    let before_masks = masks(&path);
    let t0 = Instant::now();
    let report = vacuum_file(&path).unwrap();
    let t_vacuum = t0.elapsed();
    assert!(report.reclaimed_bytes() >= churned.dead_bytes);
    let compacted = heap_stats(&path).unwrap();
    assert_eq!(compacted.dead_bytes, 0, "{compacted:?}");
    assert_eq!(compacted.heap_bytes, compacted.live_bytes);
    assert_eq!(compacted.live_bytes, report.live_payload_bytes);
    assert!(compacted.file_bytes < churned.file_bytes);
    assert_eq!(before_masks, masks(&path), "masks diverged across vacuum");
    eprintln!(
        "vacuum: {t_vacuum:?}; file {} -> {} bytes ({} reclaimed, heap now {} live bytes)",
        report.before_bytes,
        report.after_bytes,
        report.reclaimed_bytes(),
        report.live_payload_bytes
    );

    // -- 3. The background trigger compacts one more churn round.
    set_auto_vacuum(Some(AutoVacuum {
        dead_ratio: 0.01,
        min_dead_bytes: 1,
    }));
    churn_once(&cat, &path, 0);
    wait_for_auto_vacuum();
    let auto = heap_stats(&path).unwrap();
    assert_eq!(auto.dead_bytes, 0, "auto-vacuum did not land: {auto:?}");
    assert_eq!(
        before_masks,
        masks(&path),
        "masks diverged across auto-vacuum"
    );
    eprintln!(
        "auto: background compaction landed, heap {} live bytes",
        auto.live_bytes
    );
    set_auto_vacuum(Some(AutoVacuum::default()));

    // -- Timed sections over the compacted file (both are size-stable
    // across iterations, so the loop cannot snowball the scratch file).
    let mut group = c.benchmark_group("vacuum");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("heap_stats", |b| {
        b.iter(|| black_box(heap_stats(&path).unwrap()))
    });
    group.bench_function("compact/already_compact", |b| {
        b.iter(|| black_box(vacuum_file(&path).unwrap()))
    });
    group.finish();

    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_vacuum);
criterion_main!(benches);
