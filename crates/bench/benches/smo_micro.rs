//! Per-operator micro-benchmarks over the full Table 1 catalogue.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cods::simple_ops::{
    add_column, drop_column, partition_table, rename_column, union_tables, ColumnFill,
};
use cods::{decompose, merge, MergeStrategy};
use cods_bench::experiment_spec;
use cods_query::Predicate;
use cods_storage::{ColumnDef, Value, ValueType};
use cods_workload::GenConfig;

const ROWS: u64 = 50_000;

fn bench_smos(c: &mut Criterion) {
    let table = cods_workload::generate_table("R", &GenConfig::sweep_point(ROWS, 1_000));
    let decomposed = decompose(&table, &experiment_spec(false)).unwrap();
    let (s, t) = (decomposed.unchanged, decomposed.changed);

    let mut group = c.benchmark_group("smo_micro");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("decompose_table", |b| {
        b.iter(|| black_box(decompose(&table, &experiment_spec(false)).unwrap()));
    });
    group.bench_function("merge_tables_auto", |b| {
        b.iter(|| black_box(merge(&s, &t, "R", &MergeStrategy::Auto).unwrap()));
    });
    group.bench_function("union_tables", |b| {
        b.iter(|| black_box(union_tables(&table, &table, "u").unwrap()));
    });
    group.bench_function("partition_table", |b| {
        b.iter(|| {
            black_box(
                partition_table(&table, &Predicate::lt("entity", 500i64), "lo", "hi").unwrap(),
            )
        });
    });
    group.bench_function("add_column_default", |b| {
        b.iter(|| {
            black_box(
                add_column(
                    &table,
                    ColumnDef::new("flag", ValueType::Int),
                    &ColumnFill::Default(Value::int(0)),
                )
                .unwrap(),
            )
        });
    });
    group.bench_function("drop_column", |b| {
        b.iter(|| black_box(drop_column(&table, "detail").unwrap()));
    });
    group.bench_function("rename_column", |b| {
        b.iter(|| black_box(rename_column(&table, "detail", "info").unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_smos);
criterion_main!(benches);
