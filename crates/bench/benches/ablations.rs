//! Ablation benches for the design choices called out in DESIGN.md:
//! FD verification cost, key-FK vs. general mergence, and data-level vs.
//! query-level PARTITION.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cods::simple_ops::partition_table;
use cods::{decompose, merge_general, merge_key_fk};
use cods_bench::experiment_spec;
use cods_query::{execute, ExecContext, Plan, Predicate};
use cods_storage::Catalog;
use cods_workload::GenConfig;

const ROWS: u64 = 50_000;

fn bench_fd_verification(c: &mut Criterion) {
    let table = cods_workload::generate_table("R", &GenConfig::sweep_point(ROWS, 1_000));
    let mut group = c.benchmark_group("ablation_fd_verify");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("trusted", |b| {
        b.iter(|| black_box(decompose(&table, &experiment_spec(false)).unwrap()));
    });
    group.bench_function("verified", |b| {
        b.iter(|| black_box(decompose(&table, &experiment_spec(true)).unwrap()));
    });
    group.finish();
}

fn bench_merge_strategies(c: &mut Criterion) {
    let table = cods_workload::generate_table("R", &GenConfig::sweep_point(ROWS, 1_000));
    let out = decompose(&table, &experiment_spec(false)).unwrap();
    let (s, t) = (out.unchanged, out.changed);
    let mut group = c.benchmark_group("ablation_merge_strategy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("key_fk", |b| {
        b.iter(|| black_box(merge_key_fk(&s, &t, "R", &["entity".into()]).unwrap()));
    });
    group.bench_function("general", |b| {
        b.iter(|| black_box(merge_general(&s, &t, "R", &["entity".into()]).unwrap()));
    });
    group.finish();
}

fn bench_partition_levels(c: &mut Criterion) {
    let table = cods_workload::generate_table("R", &GenConfig::sweep_point(ROWS, 1_000));
    let pred = Predicate::lt("entity", 500i64);
    let catalog = Catalog::new();
    catalog.create(table.renamed("R")).unwrap();
    let mut group = c.benchmark_group("ablation_partition");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("data_level", |b| {
        b.iter(|| black_box(partition_table(&table, &pred, "lo", "hi").unwrap()));
    });
    group.bench_function("query_level", |b| {
        // Query level: decompress, filter tuples twice, re-compress.
        b.iter(|| {
            let ctx = ExecContext {
                catalog: Some(&catalog),
                row_db: None,
            };
            let lo = execute(
                &Plan::ScanColumn { table: "R".into() }.filter(pred.clone()),
                ctx,
            )
            .unwrap();
            let hi = execute(
                &Plan::ScanColumn { table: "R".into() }.filter(pred.clone().not()),
                ctx,
            )
            .unwrap();
            let lo_t = cods_storage::Table::from_rows("lo", lo.schema.clone(), &lo.rows).unwrap();
            let hi_t = cods_storage::Table::from_rows("hi", hi.schema.clone(), &hi.rows).unwrap();
            black_box((lo_t, hi_t))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fd_verification,
    bench_merge_strategies,
    bench_partition_levels
);
criterion_main!(benches);
