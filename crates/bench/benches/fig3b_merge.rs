//! Criterion version of Figure 3(b): mergence time per system, swept over
//! the number of distinct key values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cods_bench::{decomposed_rows, s_schema, t_schema, time_merge};
use cods_storage::Table;
use cods_workload::{GenConfig, System};

const ROWS: u64 = 20_000;
const SWEEP: [u64; 3] = [100, 1_000, 10_000];

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b_merge");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for &distinct in &SWEEP {
        let rows = cods_workload::generate_rows(&GenConfig::sweep_point(ROWS, distinct));
        let (s_rows, t_rows) = decomposed_rows(&rows);
        let s_table = Table::from_rows("S", s_schema(), &s_rows).unwrap();
        let t_table = Table::from_rows("T", t_schema(), &t_rows).unwrap();
        for &sys in System::mergence_systems() {
            group.bench_with_input(
                BenchmarkId::new(sys.label(), distinct),
                &distinct,
                |b, _| {
                    b.iter(|| {
                        black_box(time_merge(
                            sys,
                            &s_rows,
                            &t_rows,
                            Some(&s_table),
                            Some(&t_table),
                        ))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
