//! Plan fusion: a chained DECOMPOSE → PARTITION → UNION script (with a
//! fused ADD/RENAME COLUMN chain riding along), executed through the
//! planned path — validate once, fuse, run the DAG in waves, commit
//! atomically — against the sequential one-operator-at-a-time
//! compatibility path.
//!
//! Before timing, cross-checks that both paths produce identical results,
//! and that the planned path materializes *strictly fewer* catalog tables:
//! every intermediate (S, T, S2, the partition halves) lives only in the
//! plan's workspace, and the whole script lands as one catalog version
//! bump instead of one per operator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cods::Cods;
use cods_storage::Table;
use cods_workload::GenConfig;

const ROWS: u64 = 1 << 18; // 262,144
const DISTINCT: u64 = 1_024;

/// DECOMPOSE → PARTITION → UNION chain plus a column-op chain: only R2
/// survives; S, T, S2, s_lo, s_hi are intermediates.
const SCRIPT: &str = "\
DECOMPOSE TABLE R INTO S (entity, attr), T (entity, detail)
PARTITION TABLE S WHERE entity < 512 INTO s_lo, s_hi
UNION TABLES s_lo, s_hi INTO S2
DROP TABLE s_lo
DROP TABLE s_hi
ADD COLUMN audited int DEFAULT 0 TO T
RENAME COLUMN audited TO checked IN T
MERGE TABLES S2, T INTO R2
DROP TABLE S2
DROP TABLE T
";

fn median_of(mut f: impl FnMut() -> Duration, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

fn fresh_platform(base: &Table) -> Cods {
    let cods = Cods::new();
    // Columns are Arc-shared, so seeding a fresh catalog is O(arity).
    cods.catalog().create(base.renamed("R")).unwrap();
    cods
}

fn run_sequential(base: &Table) -> Cods {
    let cods = fresh_platform(base);
    cods.execute_all(cods::parse_script(SCRIPT).unwrap())
        .unwrap();
    cods
}

fn run_planned(base: &Table) -> (Cods, cods::PlanReport) {
    let cods = fresh_platform(base);
    let report = {
        let plan = cods.plan_script(SCRIPT).unwrap();
        plan.execute().unwrap()
    };
    (cods, report)
}

fn verify_identical(base: &Table) {
    let seq = run_sequential(base);
    let (planned, report) = run_planned(base);

    // Identical catalogs and identical result tuples.
    assert_eq!(seq.catalog().table_names(), planned.catalog().table_names());
    let a = seq.table("R2").unwrap();
    let b = planned.table("R2").unwrap();
    assert_eq!(a.schema(), b.schema());
    assert!(
        cods::verify::same_tuples(&a, &b).unwrap(),
        "planned and sequential results differ"
    );
    assert_eq!(a.to_rows(), b.to_rows(), "row order differs");

    // Strictly fewer catalog materializations: the sequential path bumps
    // the catalog once per operator (10 ops) and registers every
    // intermediate; the planned path stages 5 tables in its workspace but
    // commits exactly one, in one version bump.
    assert!(
        report.committed_puts < report.staged_puts,
        "fusion must elide intermediate catalog tables \
         (committed {} vs staged {})",
        report.committed_puts,
        report.staged_puts
    );
    assert_eq!(report.committed_puts, 1);
    assert_eq!(
        report.elided,
        vec![
            "S".to_string(),
            "S2".to_string(),
            "T".to_string(),
            "s_hi".to_string(),
            "s_lo".to_string()
        ]
    );
    assert_eq!(planned.catalog().version(), 2); // seed create + one commit
    assert!(seq.catalog().version() > planned.catalog().version());
    eprintln!(
        "verify: planned == sequential; planned committed {} table(s), \
         elided {} intermediates; catalog versions planned={} sequential={}",
        report.committed_puts,
        report.elided.len(),
        planned.catalog().version(),
        seq.catalog().version()
    );
}

fn bench_plan_fusion(c: &mut Criterion) {
    let base = cods_workload::generate_table("R", &GenConfig::sweep_point(ROWS, DISTINCT));
    verify_identical(&base);

    let t_seq = median_of(
        || {
            let start = Instant::now();
            black_box(run_sequential(&base));
            start.elapsed()
        },
        5,
    );
    let t_plan = median_of(
        || {
            let start = Instant::now();
            black_box(run_planned(&base));
            start.elapsed()
        },
        5,
    );
    eprintln!("\n== plan_fusion ({ROWS} rows, {DISTINCT} distinct keys, 10-op script) ==");
    eprintln!(
        "sequential (execute_all) {t_seq:>12?}   planned (fused, atomic) {t_plan:>12?}   speedup {:.2}x",
        t_seq.as_secs_f64() / t_plan.as_secs_f64()
    );

    let mut group = c.benchmark_group("plan_fusion");
    group.bench_function("script/sequential", |b| {
        b.iter(|| black_box(run_sequential(&base)))
    });
    group.bench_function("script/planned", |b| {
        b.iter(|| black_box(run_planned(&base)))
    });
    group.finish();
}

criterion_group!(benches, bench_plan_fusion);
criterion_main!(benches);
