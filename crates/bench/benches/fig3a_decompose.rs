//! Criterion version of Figure 3(a): decomposition time per system, swept
//! over the number of distinct key values (micro scale; the `fig3` binary
//! runs the full-scale sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cods_bench::{time_decompose, UNCHANGED_COLS};
use cods_storage::Table;
use cods_workload::gen::r_schema;
use cods_workload::{GenConfig, System};

const ROWS: u64 = 20_000;
const SWEEP: [u64; 3] = [100, 1_000, 10_000];

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a_decompose");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    assert_eq!(UNCHANGED_COLS, ["entity", "attr"]);
    for &distinct in &SWEEP {
        let rows = cods_workload::generate_rows(&GenConfig::sweep_point(ROWS, distinct));
        let table = Table::from_rows("R", r_schema(), &rows).unwrap();
        for &sys in System::decomposition_systems() {
            group.bench_with_input(
                BenchmarkId::new(sys.label(), distinct),
                &distinct,
                |b, _| {
                    b.iter(|| black_box(time_decompose(sys, &rows, Some(&table))));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
