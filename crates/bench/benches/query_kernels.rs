//! Vectorized query kernels: dictionary-native group-by over a 1 Mi-row
//! table (clustered/uniform key × bitmap/RLE encoding) and a partition-wise
//! hash join forced over the buffer-cache budget.
//!
//! Before timing, four properties are asserted:
//!
//! 1. **Byte-identical aggregation.** Every (distribution × encoding)
//!    combination of the columnar group-by returns exactly the rows, in
//!    exactly the order, of the row-at-a-time `aggregate` oracle.
//! 2. **The id-keyed kernel beats the row path.** On the clustered RLE
//!    table the run-stream kernel must be strictly faster than hashing
//!    1 Mi materialized rows, and the cost model must rank it first.
//! 3. **The join respects the budget.** With the cache starved under the
//!    estimated build bytes, the planner chooses more than one partition
//!    pass, the streamed result is multiset-identical to the nested-loop
//!    oracle, and `CacheStats.resident_bytes` never ends above the budget.
//! 4. **Cost estimates are visible.** The ranked strategy tables behind
//!    both decisions are printed with every run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cods_query::cost::groupby_ranking;
use cods_query::{aggregate, aggregate_table, join_stream, plan_join, tuple, AggOp};
use cods_storage::persist::{read_table, save_table};
use cods_storage::{segment_cache, Encoding, Schema, Table, Value, ValueType};

const ROWS: u64 = 1 << 20; // 1,048,576
const GROUPS: u64 = 512;
const SEG_ROWS: u64 = 1 << 14;
/// Join probe rows — smaller than the group-by table so the nested-loop
/// oracle and the multiset sort stay cheap.
const JOIN_ROWS: u64 = 200_000;
const DIM_ROWS: u64 = 4_096;
/// Starvation budget for the join: well under the estimated build bytes.
const JOIN_BUDGET: u64 = 32 << 10;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cods_bench_query_kernels_{}_{tag}.tbl",
        std::process::id()
    ))
}

/// The 1 Mi-row fact table: group key either clustered (sorted, mean run
/// ROWS/GROUPS) or uniform (stride-scattered, runs of 1), plus an int
/// measure and a nullable string measure.
fn fact(clustered: bool) -> Table {
    let schema = Schema::build(
        &[
            ("g", ValueType::Int),
            ("v", ValueType::Int),
            ("s", ValueType::Str),
        ],
        &[],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            let g = if clustered {
                i * GROUPS / ROWS
            } else {
                i.wrapping_mul(2_654_435_761) % GROUPS
            };
            vec![
                Value::int(g as i64),
                Value::int((i % 1_000) as i64),
                if i % 17 == 0 {
                    Value::Null
                } else {
                    Value::str(format!("s{}", i % 23))
                },
            ]
        })
        .collect();
    Table::from_rows_with_segment_rows("F", schema, &rows, SEG_ROWS).unwrap()
}

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed());
        out = Some(r);
    }
    (best, out.unwrap())
}

fn bench_query_kernels(c: &mut Criterion) {
    let aggs = [
        (AggOp::Count, 1, ValueType::Int),
        (AggOp::Sum, 1, ValueType::Int),
        (AggOp::CountDistinct, 2, ValueType::Str),
        (AggOp::Max, 1, ValueType::Int),
    ];

    // -- 1. Byte-identical aggregation across distribution × encoding.
    eprintln!("== query_kernels: group-by ({ROWS} rows, {GROUPS} groups) ==");
    let mut timed: Vec<(String, Duration)> = Vec::new();
    let mut row_path = Duration::MAX;
    let mut tables = Vec::new();
    for clustered in [true, false] {
        let base = fact(clustered);
        let rows = base.to_rows();
        let want = aggregate(&rows, &[0], &aggs).unwrap();
        assert_eq!(want.len(), GROUPS as usize);
        let (t_row, _) = best_of(3, || black_box(aggregate(&rows, &[0], &aggs).unwrap()));
        row_path = row_path.min(t_row);
        for enc in [Encoding::Bitmap, Encoding::Rle] {
            let t = base.recoded(enc).unwrap();
            let label = format!(
                "{}/{enc:?}",
                if clustered { "clustered" } else { "uniform" }
            );
            let (t_col, got) = best_of(3, || aggregate_table(&t, &[0], &aggs).unwrap());
            assert_eq!(got, want, "{label}: columnar group-by diverged byte-wise");
            eprintln!("  {label:<22} columnar {t_col:>10.2?}   row path {t_row:>10.2?}");
            timed.push((label, t_col));
            tables.push(t);
        }
    }

    // -- 2. The id-keyed kernel beats the row path; the cost model agrees.
    let clustered_rle = &tables[1];
    let ranking = groupby_ranking(clustered_rle, &[0], 1.0);
    eprintln!("cost model (clustered/Rle):\n{}", ranking.describe());
    assert!(
        ranking.chosen().label.contains("packed"),
        "cost model did not pick the id-keyed kernel: {}",
        ranking.chosen().label
    );
    let (label, t_col) = &timed[1];
    assert!(
        *t_col < row_path,
        "id-keyed kernel ({label}: {t_col:?}) not faster than row path ({row_path:?})"
    );
    eprintln!(
        "speedup ({label} vs row path): {:.1}x",
        row_path.as_secs_f64() / t_col.as_secs_f64()
    );

    // -- 3. Over-budget join: multi-pass, multiset-identical, within budget.
    let probe_schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
    let probe_rows: Vec<Vec<Value>> = (0..JOIN_ROWS)
        .map(|i| {
            vec![
                Value::int((i.wrapping_mul(48_271) % (DIM_ROWS + 64)) as i64),
                Value::int((i % 97) as i64),
            ]
        })
        .collect();
    let dim_schema =
        Schema::build(&[("k", ValueType::Int), ("label", ValueType::Str)], &[]).unwrap();
    let dim_rows: Vec<Vec<Value>> = (0..DIM_ROWS)
        .map(|i| vec![Value::int(i as i64), Value::str(format!("dim-{i}"))])
        .collect();
    let mut want = tuple::hash_join(&probe_rows, &dim_rows, &[0], &[0]);
    want.sort();

    // Only saved-and-reopened segments participate in cache accounting, so
    // the budgeted run works on demand-paged copies.
    let (lp, rp) = (scratch("probe"), scratch("dim"));
    save_table(
        &Table::from_rows_with_segment_rows("P", probe_schema, &probe_rows, SEG_ROWS).unwrap(),
        &lp,
    )
    .unwrap();
    save_table(
        &Table::from_rows_with_segment_rows("D", dim_schema, &dim_rows, 256).unwrap(),
        &rp,
    )
    .unwrap();
    let probe = Arc::new(read_table(&lp).unwrap());
    let dim = Arc::new(read_table(&rp).unwrap());

    let cache = segment_cache();
    cache.set_budget(JOIN_BUDGET);
    cache.reset_counters();
    let plan = plan_join(&probe, &dim, &[0], &[0], cache.stats().budget);
    eprintln!(
        "== query_kernels: join ({JOIN_ROWS} probe x {DIM_ROWS} build rows, budget {JOIN_BUDGET} bytes) =="
    );
    eprintln!("{}", plan.ranking.describe());
    eprintln!(
        "build={:?} partitions={} est_build_bytes={}",
        plan.build, plan.partitions, plan.est_build_bytes
    );
    assert!(
        plan.partitions > 1,
        "budget {JOIN_BUDGET} did not force multi-pass partitioning \
         (est_build_bytes={})",
        plan.est_build_bytes
    );
    let (t_join, mut got) = best_of(2, || {
        join_stream(probe.clone(), dim.clone(), &[0], &[0], &plan).collect::<Vec<_>>()
    });
    got.sort();
    assert_eq!(got, want, "partitioned join diverged from the row oracle");
    let stats = cache.stats();
    assert!(
        stats.resident_bytes <= stats.budget,
        "join left {} resident bytes over the {} byte budget",
        stats.resident_bytes,
        stats.budget
    );
    eprintln!(
        "multi-pass join: {} rows in {t_join:.2?}, {} evictions, resident {} <= budget {}",
        got.len(),
        stats.evictions,
        stats.resident_bytes,
        stats.budget
    );
    cache.set_budget(u64::MAX);

    // -- Timed sections.
    let mut group = c.benchmark_group("query_kernels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for (label, t) in [("clustered", &tables[1]), ("uniform", &tables[2])] {
        group.bench_function(format!("groupby/columnar/{label}"), |b| {
            b.iter(|| black_box(aggregate_table(t, &[0], &aggs).unwrap()))
        });
    }
    let oracle_rows = tables[0].to_rows();
    group.bench_function("groupby/row_path", |b| {
        b.iter(|| black_box(aggregate(&oracle_rows, &[0], &aggs).unwrap()))
    });
    group.bench_function("join/single_pass", |b| {
        let plan = plan_join(&probe, &dim, &[0], &[0], u64::MAX);
        b.iter(|| {
            black_box(
                join_stream(probe.clone(), dim.clone(), &[0], &[0], &plan).collect::<Vec<_>>(),
            )
        })
    });
    group.bench_function("join/multi_pass", |b| {
        cache.set_budget(JOIN_BUDGET);
        let plan = plan_join(&probe, &dim, &[0], &[0], JOIN_BUDGET);
        b.iter(|| {
            black_box(
                join_stream(probe.clone(), dim.clone(), &[0], &[0], &plan).collect::<Vec<_>>(),
            )
        })
    });
    group.finish();

    cache.set_budget(u64::MAX);
    std::fs::remove_file(&lp).ok();
    std::fs::remove_file(&rp).ok();
}

criterion_group!(benches, bench_query_kernels);
criterion_main!(benches);
