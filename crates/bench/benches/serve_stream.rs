//! Streaming scan delivery: a 1 Mi-row selective scan materialized in one
//! row vector vs streamed in segment-sized batches, in-process and over a
//! loopback TCP connection through the serving layer.
//!
//! Before timing, the three paths are cross-checked for byte-identical
//! results, and the streamed path's peak resident rows are asserted to be
//! bounded by one segment — streaming trades a little per-batch overhead
//! for peak memory that no longer grows with the result size. The TCP
//! path adds frame encode/checksum/decode and loopback copies on top;
//! printing all three makes the serving layer's delivery tax visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cods::Cods;
use cods_query::{filter_table, Predicate, ScanStream};
use cods_server::{Client, Server, ServerConfig};
use cods_storage::{Schema, Table, Value, ValueType};

const ROWS: u64 = 1 << 20; // 1,048,576
const SEGMENT_ROWS: u64 = 1 << 16; // 65,536 → 16 segments
/// The predicate keeps every fourth row: a large, multi-segment result.
const KEEP_MOD: i64 = 4;

fn median_of(mut f: impl FnMut() -> Duration, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

fn build_table() -> Table {
    let schema = Schema::build(
        &[
            ("k", ValueType::Int),
            ("bucket", ValueType::Int),
            ("tag", ValueType::Str),
        ],
        &[],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::int(i as i64),
                Value::int((i % 16) as i64),
                Value::str(format!("tag-{}", i % 11)),
            ]
        })
        .collect();
    Table::from_rows_with_segment_rows("s", schema, &rows, SEGMENT_ROWS).unwrap()
}

fn pred() -> Predicate {
    // bucket ∈ {0..KEEP_MOD}: selects 1/4 of every segment.
    Predicate::lt("bucket", KEEP_MOD)
}

/// Materialized path: filter to a temporary table, then decode every row.
fn scan_materialized(t: &Arc<Table>) -> Vec<Vec<Value>> {
    filter_table(t, &pred()).unwrap().to_rows()
}

/// Streamed path; returns the rows plus the largest single batch seen.
fn scan_streamed(t: &Arc<Table>) -> (Vec<Vec<Value>>, usize) {
    let stream = ScanStream::new(Arc::clone(t), &pred(), None).unwrap();
    let mut rows = Vec::new();
    let mut peak_batch = 0usize;
    for batch in stream {
        peak_batch = peak_batch.max(batch.rows.len());
        rows.extend(batch.rows);
    }
    (rows, peak_batch)
}

fn bench_serve_stream(c: &mut Criterion) {
    let cods = Arc::new(Cods::new());
    cods.catalog().create(build_table()).unwrap();
    let table = cods.table("s").unwrap();

    let handle = Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default())
        .expect("bind ephemeral loopback server");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Verified-identical rows on all three paths before any timing, and a
    // peak-memory bound on the streamed ones: no batch ever exceeds one
    // segment's rows, while the materialized path holds the full result.
    let want = scan_materialized(&table);
    let (streamed, peak_batch) = scan_streamed(&table);
    assert_eq!(streamed, want, "streamed scan diverges from materialized");
    assert!(
        peak_batch as u64 <= SEGMENT_ROWS,
        "streamed batch of {peak_batch} rows exceeds the {SEGMENT_ROWS}-row segment bound"
    );
    let mut wire_rows = Vec::new();
    let mut wire_peak = 0usize;
    let summary = client
        .scan_with("s", pred(), None, |_, rows| {
            wire_peak = wire_peak.max(rows.len());
            wire_rows.extend(rows);
        })
        .unwrap();
    assert_eq!(wire_rows, want, "TCP-streamed scan diverges from local");
    assert!(wire_peak as u64 <= SEGMENT_ROWS);
    assert!(summary.batches > 1, "expected a multi-batch stream");
    eprintln!(
        "verify: {} rows identical on materialized / streamed / TCP paths; \
         peak batch {} rows vs {} materialized",
        want.len(),
        peak_batch.max(wire_peak),
        want.len()
    );

    eprintln!(
        "\n== serve_stream ({ROWS} rows, {SEGMENT_ROWS}-row segments, 1/{KEEP_MOD} selected) =="
    );
    let mat = median_of(
        || {
            let start = Instant::now();
            black_box(scan_materialized(&table));
            start.elapsed()
        },
        5,
    );
    let streamed = median_of(
        || {
            let start = Instant::now();
            black_box(scan_streamed(&table));
            start.elapsed()
        },
        5,
    );
    let wire = median_of(
        || {
            let start = Instant::now();
            let mut n = 0u64;
            client
                .scan_with("s", pred(), None, |_, rows| n += rows.len() as u64)
                .unwrap();
            black_box(n);
            start.elapsed()
        },
        5,
    );
    eprintln!("materialized {mat:>12?}   streamed {streamed:>12?}   tcp {wire:>12?}");

    let mut group = c.benchmark_group("serve_stream");
    group.sample_size(5);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("materialized", |b| {
        b.iter(|| black_box(scan_materialized(&table)))
    });
    group.bench_function("streamed", |b| b.iter(|| black_box(scan_streamed(&table))));
    group.bench_function("tcp", |b| {
        b.iter(|| {
            let mut n = 0u64;
            client
                .scan_with("s", pred(), None, |_, rows| n += rows.len() as u64)
                .unwrap();
            black_box(n)
        })
    });
    group.finish();
    drop(handle);
}

criterion_group!(benches, bench_serve_stream);
criterion_main!(benches);
