//! Durable evolution commits: group-commit throughput on the catalog
//! commit log.
//!
//! Before timing, two properties are asserted:
//!
//! 1. **Group commit amortizes fsyncs.** A concurrent burst of durable
//!    commits (plus one deterministic staged batch) lands with strictly
//!    fewer fsyncs than commits — the leader's single fsync acknowledges
//!    every record staged behind it.
//! 2. **Durability is byte-exact.** Reopening the catalog replays every
//!    acknowledged commit, and each table's image is byte-identical
//!    (per-table [`encode_table`]) to the pre-close state.
//!
//! Timed sections compare a solo committer (one fsync per commit — the
//! group-commit floor) against staged batches riding one fsync.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cods_storage::persist::encode_table;
use cods_storage::{
    open_durable, Catalog, DurabilitySink, Schema, StorageError, Table, Value, ValueType,
};

const THREADS: usize = 8;
const PER_THREAD: usize = 8;

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cods_bench_durable_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("t.catalog")
}

fn tiny(name: &str, rows: i64) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::int(i),
                Value::str(if i % 2 == 0 { "x" } else { "y" }),
            ]
        })
        .collect();
    Table::from_rows(name, schema, &data).unwrap()
}

/// One durable commit through the optimistic path, retrying conflicts.
fn commit_put(cat: &Catalog, t: Table) {
    let t = Arc::new(t);
    loop {
        let (base, _) = cat.begin_evolution();
        match cat.commit_evolution(base, &[], vec![Arc::clone(&t)]) {
            Ok(receipt) => {
                assert!(receipt.durable);
                return;
            }
            Err(StorageError::Conflict(_)) => continue,
            Err(e) => panic!("durable commit failed: {e}"),
        }
    }
}

fn bench_durable_commit(c: &mut Criterion) {
    let path = scratch();
    let (cat, log, _replay) = open_durable(&path).unwrap();
    let cat = Arc::new(cat);

    // -- 1. Concurrent burst: contention forms batches behind the leader.
    let handles: Vec<_> = (0..THREADS)
        .map(|th| {
            let cat = Arc::clone(&cat);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    commit_put(&cat, tiny(&format!("t{th}_{i}"), 8));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // One deterministic staged batch: four records, one fsync — so the
    // strict inequality below never depends on scheduler timing.
    let mut last = 0;
    for (i, name) in ["s0", "s1", "s2", "s3"].iter().enumerate() {
        last = log
            .stage(1000 + i as u64, &[], &[Arc::new(tiny(name, 8))])
            .unwrap();
    }
    log.wait(last).unwrap();

    let stats = log.stats();
    assert!(
        stats.fsyncs < stats.commits,
        "group commit must amortize fsyncs: {stats:?}"
    );
    eprintln!(
        "group commit: {} commits over {} fsyncs (max batch {}, {} us total fsync time)",
        stats.commits, stats.fsyncs, stats.max_batch, stats.fsync_micros
    );

    // -- 2. Byte-identical reopen: every acknowledged commit replays.
    let oracle: Vec<(String, Vec<u8>)> = cat
        .table_names()
        .iter()
        .map(|n| (n.clone(), encode_table(&cat.get(n).unwrap()).to_vec()))
        .collect();
    drop((cat, log));
    let (cat, log, replay) = open_durable(&path).unwrap();
    // The four staged records replay too (staging logs without touching
    // the in-memory catalog, so they are absent from the oracle).
    assert_eq!(replay.replayed as usize, THREADS * PER_THREAD + 4);
    assert_eq!(oracle.len(), THREADS * PER_THREAD);
    for (name, bytes) in &oracle {
        assert_eq!(
            encode_table(&cat.get(name).unwrap()).as_slice(),
            bytes.as_slice(),
            "table {name} diverged across reopen"
        );
    }
    eprintln!(
        "reopen: {} records replayed, {} tables byte-identical",
        replay.replayed,
        oracle.len()
    );
    log.checkpoint(&cat).unwrap();

    // -- Timed sections. Both commit small inline records; the log grows
    // during measurement and is checkpointed between benchmarks.
    let mut group = c.benchmark_group("durable_commit");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // Solo committer: every commit pays its own fsync (the group floor).
    group.bench_function("solo/commit_fsync", |b| {
        b.iter(|| {
            commit_put(&cat, tiny("solo", 8));
            black_box(());
        })
    });
    log.checkpoint(&cat).unwrap();

    // Staged batch of 8 riding one fsync: per-batch cost.
    let mut version = 10_000u64;
    group.bench_function("group/batch_of_8", |b| {
        b.iter(|| {
            let mut last = 0;
            for _ in 0..8 {
                version += 1;
                last = log
                    .stage(version, &[], &[Arc::new(tiny("grp", 8))])
                    .unwrap();
            }
            log.wait(last).unwrap();
            black_box(());
        })
    });
    group.finish();

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

criterion_group!(benches, bench_durable_commit);
criterion_main!(benches);
