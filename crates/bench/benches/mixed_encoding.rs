//! Heterogeneous per-segment encodings: a 1 Mi-row column whose first half
//! is clustered (long runs) and whose second half is uniform-random (runs ≈
//! rows) — real columns are rarely homogeneous, and this is the shape where
//! a whole-column encoding pick must lose on one half whichever way it
//! goes.
//!
//! Three layouts of the same data are compared:
//!
//! * **mixed** — `auto_encoded()` lets the per-segment chooser decide: the
//!   clustered half's segments flip to RLE, the uniform half's stay bitmap.
//! * **bitmap** — forced-uniform bitmap (pinned).
//! * **rle** — forced-uniform RLE (pinned).
//!
//! Before timing, every (layout × predicate) pair is cross-checked for
//! byte-identical masks — per-segment encoding choice must never change a
//! scan result. Then the bench reports encoded payload bytes per layout and
//! times a sweep of clustered-range scans (the predicates land in the
//! clustered half's value range; both halves share one value domain, so
//! the uniform half cannot be zone-pruned and each layout's encoding must
//! carry it). The mixed directory is expected to beat forced-bitmap on
//! size (the clustered half as runs is tiny) and forced-RLE on
//! clustered-range scan time (the uniform half as runs must be walked run
//! by run on every scan, where the bitmap form merges just the satisfying
//! values' positions) — the acceptance shape of the unified-directory
//! refactor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cods_query::bitmap_scan::{predicate_mask, predicate_mask_unpruned};
use cods_query::Predicate;
use cods_storage::{Encoding, Schema, Table, Value, ValueType};

const ROWS: u64 = 1 << 20; // 1,048,576
/// Distinct values (both halves draw from the same domain, so zone maps
/// cannot prune the uniform half on a clustered-range scan — each layout's
/// own per-segment encoding has to carry it).
const CLUSTERED_DISTINCT: u64 = 1 << 15;
/// Width of each range predicate in value space.
const RANGE: i64 = (CLUSTERED_DISTINCT / 256) as i64;
/// Range scans per timed sweep.
const SCANS: usize = 16;

fn median_of(mut f: impl FnMut() -> Duration, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

/// Half-clustered, half-uniform over one value domain: rows 0..N/2 hold
/// sorted long runs, rows N/2..N hold hash-scattered values of the same
/// range. Every range predicate therefore selects rows in both halves.
fn half_and_half() -> Table {
    let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            let v = if i < ROWS / 2 {
                (i * CLUSTERED_DISTINCT / (ROWS / 2)) as i64
            } else {
                (i.wrapping_mul(2_654_435_761) % CLUSTERED_DISTINCT) as i64
            };
            vec![Value::int(v)]
        })
        .collect();
    Table::from_rows("H", schema, &rows).unwrap()
}

/// Range predicates inside the clustered half's value range.
fn clustered_range_preds() -> Vec<Predicate> {
    (0..SCANS)
        .map(|i| {
            let lo = (i as i64 * 97 * RANGE) % (CLUSTERED_DISTINCT as i64 - RANGE);
            Predicate::ge("k", lo).and(Predicate::lt("k", lo + RANGE))
        })
        .collect()
}

fn sweep(t: &Table, preds: &[Predicate]) -> Duration {
    let start = Instant::now();
    for p in preds {
        black_box(predicate_mask(t, p).unwrap());
    }
    start.elapsed()
}

fn payload_bytes(t: &Table) -> usize {
    t.columns().iter().map(|c| c.payload_bytes()).sum()
}

fn bench_mixed_encoding(c: &mut Criterion) {
    let base = half_and_half();
    let mixed = base.auto_encoded().unwrap();
    let bitmap = base.recoded_pinned(Encoding::Bitmap).unwrap();
    let rle = base.recoded_pinned(Encoding::Rle).unwrap();

    // The chooser must produce a *genuinely* mixed directory here.
    let col = mixed.column(0);
    let (bitmap_segs, rle_segs) = col.encoding_counts();
    assert!(
        bitmap_segs > 0 && rle_segs > 0,
        "expected a mixed directory, got {bitmap_segs}\u{d7}bitmap/{rle_segs}\u{d7}rle"
    );

    let preds = clustered_range_preds();
    let setups = [("mixed", &mixed), ("bitmap", &bitmap), ("rle", &rle)];

    // Byte-identical masks across all three layouts (and the unpruned
    // oracle) before any timing.
    for p in &preds {
        let oracle = predicate_mask_unpruned(&bitmap, p).unwrap();
        assert!(oracle.count_ones() > 0, "degenerate predicate {p:?}");
        for (label, t) in &setups {
            assert_eq!(
                predicate_mask(t, p).unwrap(),
                oracle,
                "{label}: mask diverges for {p:?}"
            );
        }
    }
    eprintln!(
        "verify: masks byte-identical across mixed/bitmap/rle on {} predicates",
        preds.len()
    );
    eprintln!(
        "mixed directory: {bitmap_segs}\u{d7}bitmap / {rle_segs}\u{d7}rle over {} segments",
        col.segment_count()
    );

    eprintln!(
        "\n== mixed_encoding ({ROWS} rows, half clustered/half uniform, {SCANS} clustered-range scans of width {RANGE}) =="
    );
    let mut sizes = [0usize; 3];
    let mut times = [Duration::ZERO; 3];
    for (i, (label, t)) in setups.iter().enumerate() {
        sizes[i] = payload_bytes(t);
        times[i] = median_of(|| sweep(t, &preds), 5);
        eprintln!(
            "{label:<8} payload {:>12} bytes   clustered-range sweep {:>12?}",
            sizes[i], times[i]
        );
    }
    let (mixed_bytes, bitmap_bytes, rle_bytes) = (sizes[0], sizes[1], sizes[2]);
    let (mixed_time, bitmap_time, rle_time) = (times[0], times[1], times[2]);
    eprintln!(
        "mixed vs bitmap: {:.2}x smaller, {:.2}x faster",
        bitmap_bytes as f64 / mixed_bytes as f64,
        bitmap_time.as_secs_f64() / mixed_time.as_secs_f64()
    );
    eprintln!(
        "mixed vs rle:    {:.2}x smaller, {:.2}x faster",
        rle_bytes as f64 / mixed_bytes as f64,
        rle_time.as_secs_f64() / mixed_time.as_secs_f64()
    );
    // The acceptance shape: the mixed directory beats at least one
    // forced-uniform layout on size and the other on scan time.
    assert!(
        (mixed_bytes < rle_bytes && mixed_time < bitmap_time)
            || (mixed_bytes < bitmap_bytes && mixed_time < rle_time),
        "mixed directory dominates neither forced-uniform layout: \
         bytes (m {mixed_bytes}, b {bitmap_bytes}, r {rle_bytes}), \
         times (m {mixed_time:?}, b {bitmap_time:?}, r {rle_time:?})"
    );

    let mut group = c.benchmark_group("mixed_encoding");
    group.sample_size(5);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for (label, t) in &setups {
        group.bench_function(format!("{label}/clustered_range_sweep"), |b| {
            b.iter(|| black_box(sweep(t, &preds)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_encoding);
criterion_main!(benches);
