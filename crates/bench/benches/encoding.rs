//! Encoding ablation benches: clustering cost, clustered vs. unclustered
//! filtering, and RLE ↔ bitmap conversion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cods_storage::Encoding;
use cods_workload::GenConfig;

const ROWS: u64 = 50_000;

fn bench_encoding(c: &mut Criterion) {
    // Pin every column bitmap: cluster_by runs the adaptive chooser on
    // unpinned columns, and this bench compares the *WAH* forms — pinning
    // keeps both the timed `cluster_by_entity` measurement (pure
    // sort+gather, no chooser/re-encode) and the filter comparisons on
    // bitmap, matching the bench's original semantics.
    let table = cods_workload::generate_table("R", &GenConfig::sweep_point(ROWS, 500))
        .recoded_pinned(cods_storage::Encoding::Bitmap)
        .unwrap();
    let clustered = table.cluster_by(&["entity"]).unwrap();
    let col_u = table.column_by_name("entity").unwrap();
    let col_c = clustered.column_by_name("entity").unwrap();
    let positions: Vec<u64> = (0..ROWS).step_by(5).collect();

    let mut group = c.benchmark_group("encoding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("cluster_by_entity", |b| {
        b.iter(|| black_box(table.cluster_by(&["entity"]).unwrap()));
    });
    group.bench_function("filter_unclustered_wah", |b| {
        b.iter(|| black_box(col_u.filter_positions(&positions)));
    });
    group.bench_function("filter_clustered_wah", |b| {
        b.iter(|| black_box(col_c.filter_positions(&positions)));
    });
    let rle = col_c.recode(Encoding::Rle).unwrap();
    group.bench_function("filter_clustered_rle", |b| {
        b.iter(|| black_box(rle.filter_positions(&positions)));
    });
    group.bench_function("rle_from_bitmap_column", |b| {
        b.iter(|| black_box(col_c.recode(Encoding::Rle).unwrap()));
    });
    group.bench_function("rle_to_bitmap_column", |b| {
        b.iter(|| black_box(rle.recode(Encoding::Bitmap).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
