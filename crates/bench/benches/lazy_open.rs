//! Demand-paged directory: cold catalog opens and zone-pruned scans over a
//! 1 Mi-row catalog persisted in format v6.
//!
//! Before timing, three properties are asserted:
//!
//! 1. **Cold open is O(metadata).** A lazy [`read_catalog`] decodes zero
//!    payload bytes — at least 10× less than an eager open (open plus
//!    [`Table::fault_in_all`]), which decodes every segment.
//! 2. **Pruned segments stay on disk.** A clustered range scan over the
//!    demand-paged table faults in exactly the zone-surviving segments —
//!    the cache's miss counter equals the survivor count, everything else
//!    stays on disk, and the mask is byte-identical to the eager table's.
//! 3. **Eviction churn is invisible.** With the budget halved below the
//!    catalog's resident footprint, a sweep of range scans pages segments
//!    in and out (evictions observed) yet every mask still matches.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cods_query::bitmap_scan::predicate_mask;
use cods_query::Predicate;
use cods_storage::persist::{read_catalog, save_catalog};
use cods_storage::{segment_cache, Catalog, Schema, Table, Value, ValueType};

const ROWS: u64 = 1 << 20; // 1,048,576
const DISTINCT: u64 = 1 << 18; // 262,144 → mean run of 4 when clustered
/// Width of each range predicate in value space (1/256 of the domain).
const RANGE: i64 = (DISTINCT / 256) as i64;
/// Range scans in the eviction-churn sweep.
const SCANS: usize = 16;

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cods_bench_lazy_open_{}.catalog",
        std::process::id()
    ))
}

/// The 1 Mi-row catalog: one table with a clustered key (what zones prune)
/// and a scattered payload column.
fn build_catalog() -> Catalog {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::int((i * DISTINCT / ROWS) as i64),
                Value::int(((i.wrapping_mul(2_654_435_761)) % 256) as i64),
            ]
        })
        .collect();
    let cat = Catalog::new();
    cat.create(Table::from_rows("C", schema, &rows).unwrap())
        .unwrap();
    cat
}

fn range_pred(lo: i64) -> Predicate {
    Predicate::ge("k", lo).and(Predicate::lt("k", lo + RANGE))
}

/// Segments of the clustered column whose row range overlaps the rows
/// holding k ∈ [lo, lo+RANGE) — the exact survivor set of the zone tier on
/// this sorted, evenly-spread key.
fn expected_survivors(t: &Table, lo: i64) -> usize {
    let scale = (ROWS / DISTINCT) as i64;
    let (row_lo, row_hi) = (lo * scale, (lo + RANGE) * scale);
    let mut offset = 0i64;
    let mut survivors = 0;
    for slot in t.column_by_name("k").unwrap().segments() {
        let end = offset + slot.rows() as i64;
        if offset < row_hi && end > row_lo {
            survivors += 1;
        }
        offset = end;
    }
    survivors
}

fn bench_lazy_open(c: &mut Criterion) {
    let path = scratch();
    let cat = build_catalog();
    save_catalog(&cat, &path).unwrap();
    let eager_table = cat.get("C").unwrap();
    let cache = segment_cache();

    // -- 1. Cold open: lazy decodes zero payload bytes; eager decodes all.
    cache.reset_counters();
    let t0 = Instant::now();
    let lazy_cat = read_catalog(&path).unwrap();
    let t_lazy = t0.elapsed();
    let lazy_decoded = cache.stats().decoded_bytes;
    let lazy_table = lazy_cat.get("C").unwrap();
    let (resident, on_disk) = lazy_table.residency_counts();
    assert_eq!(resident, 0, "lazy open faulted payloads in");
    assert!(on_disk > 0);

    cache.reset_counters();
    let t0 = Instant::now();
    let eager_cat = read_catalog(&path).unwrap();
    for name in eager_cat.table_names() {
        eager_cat.get(&name).unwrap().fault_in_all();
    }
    let t_eager = t0.elapsed();
    let eager_decoded = cache.stats().decoded_bytes;
    assert!(
        lazy_decoded.saturating_mul(10) <= eager_decoded,
        "lazy open decoded {lazy_decoded} bytes vs eager {eager_decoded}"
    );
    let full_bytes = cache.stats().resident_bytes;
    eprintln!("== lazy_open ({ROWS} rows, {} segments) ==", on_disk);
    eprintln!(
        "cold open: lazy {t_lazy:>10?} ({lazy_decoded} payload bytes)   eager {t_eager:>10?} ({eager_decoded} payload bytes)"
    );

    // -- 2. Zone-pruned scan faults in exactly the survivors.
    let lo = (DISTINCT / 2) as i64;
    let survivors = expected_survivors(&lazy_table, lo);
    let total = lazy_table.column_by_name("k").unwrap().segment_count();
    assert!(
        survivors * 10 <= total,
        "survivor set not selective: {survivors}/{total}"
    );
    cache.reset_counters();
    let mask = predicate_mask(&lazy_table, &range_pred(lo)).unwrap();
    let scan_stats = cache.stats();
    assert_eq!(
        scan_stats.misses as usize, survivors,
        "pruned scan faulted more than the surviving segments"
    );
    assert_eq!(lazy_table.residency_counts().0, survivors);
    assert!(
        scan_stats.decoded_bytes.saturating_mul(10) <= eager_decoded,
        "pruned scan decoded {} bytes vs full {eager_decoded}",
        scan_stats.decoded_bytes
    );
    assert_eq!(
        mask,
        predicate_mask(&eager_table, &range_pred(lo)).unwrap(),
        "lazy and eager masks diverge"
    );
    eprintln!(
        "pruned scan: faulted {survivors}/{total} segments, {} payload bytes decoded",
        scan_stats.decoded_bytes
    );

    // -- 3. Eviction churn under half the resident footprint.
    cache.set_budget((full_bytes / 2).max(1));
    cache.reset_counters();
    let churn_cat = read_catalog(&path).unwrap();
    let churn_table = churn_cat.get("C").unwrap();
    for i in 0..SCANS {
        let lo = (i as i64 * 97 * RANGE) % (DISTINCT as i64 - RANGE);
        let a = predicate_mask(&churn_table, &range_pred(lo)).unwrap();
        let b = predicate_mask(&eager_table, &range_pred(lo)).unwrap();
        assert_eq!(a, b, "mask diverged under eviction churn (scan {i})");
    }
    // The full-table row walk cannot fit in half the budget, so the clock
    // hand must have recycled at least one frame.
    assert_eq!(churn_table.to_rows().len(), ROWS as usize);
    assert!(
        cache.stats().evictions > 0,
        "no evictions under half budget"
    );
    eprintln!(
        "churn: {} evictions across {SCANS} scans + row walk under budget {} bytes",
        cache.stats().evictions,
        cache.stats().budget
    );

    // -- Timed sections (budget capped so repeated opens can't hoard RAM).
    cache.set_budget(256 << 20);
    let mut group = c.benchmark_group("lazy_open");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("cold_open/lazy", |b| {
        b.iter(|| black_box(read_catalog(&path).unwrap()))
    });
    group.bench_function("cold_open/eager", |b| {
        b.iter(|| {
            let cat = read_catalog(&path).unwrap();
            for name in cat.table_names() {
                cat.get(&name).unwrap().fault_in_all();
            }
            black_box(cat)
        })
    });
    group.bench_function("pruned_scan/lazy", |b| {
        b.iter(|| {
            let cat = read_catalog(&path).unwrap();
            let t = cat.get("C").unwrap();
            black_box(predicate_mask(&t, &range_pred(lo)).unwrap())
        })
    });
    group.bench_function("pruned_scan/resident", |b| {
        b.iter(|| black_box(predicate_mask(&eager_table, &range_pred(lo)).unwrap()))
    });
    group.finish();

    cache.set_budget(u64::MAX);
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_lazy_open);
criterion_main!(benches);
