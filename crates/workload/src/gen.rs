//! The evaluation workload generator: the three-column table
//! `R(entity, attr, detail)` of the paper's experiment, with a configurable
//! row count and number of distinct `entity` values.
//!
//! The shape mirrors Figure 1: `entity` plays *employee* (the decomposition
//! key), `attr` plays *skill* (stays with the unchanged table), `detail`
//! plays *address* (functionally determined by `entity`, moves to the
//! changed table). The Figure 3 experiment decomposes
//! `R → S(entity, attr), T(entity, detail)` and merges back, sweeping the
//! number of distinct `entity` values from 100 to 1M at 10M rows.

use crate::zipf::Zipf;
use cods_storage::{Schema, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Value distribution of the key column.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Distribution {
    /// Every distinct value equally likely.
    Uniform,
    /// Zipf-skewed with the given exponent.
    Zipf(f64),
}

/// Configuration of the generated evaluation table.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of rows.
    pub rows: u64,
    /// Distinct values of the `entity` (key) column. Every value is
    /// guaranteed to occur at least once when `rows >= distinct_entities`.
    pub distinct_entities: u64,
    /// Distinct values of the `attr` column.
    pub distinct_attrs: u64,
    /// Distinct values of the `detail` column (each entity maps to one).
    pub distinct_details: u64,
    /// Key distribution.
    pub distribution: Distribution,
    /// RNG seed (generation is deterministic).
    pub seed: u64,
}

impl GenConfig {
    /// The paper's sweep point: `rows` rows with `distinct` distinct
    /// entities, uniform, attrs capped at 1000, details at
    /// `max(distinct / 10, 2)`.
    pub fn sweep_point(rows: u64, distinct: u64) -> Self {
        GenConfig {
            rows,
            distinct_entities: distinct,
            distinct_attrs: 1000.min(rows.max(1)),
            distinct_details: (distinct / 10).max(2),
            distribution: Distribution::Uniform,
            seed: 0xC0D5,
        }
    }
}

/// Schema of the generated table (all integer columns; the paper's
/// experiment concerns cardinalities, not value widths).
pub fn r_schema() -> Schema {
    Schema::build(
        &[
            ("entity", ValueType::Int),
            ("attr", ValueType::Int),
            ("detail", ValueType::Int),
        ],
        &[],
    )
    .expect("static schema is valid")
}

/// Generates the raw rows of the evaluation table. The `detail` column is
/// `f(entity)`, so the functional dependency `entity → detail` holds by
/// construction and the decomposition into `(entity, attr)` / `(entity,
/// detail)` is lossless.
pub fn generate_rows(cfg: &GenConfig) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = match cfg.distribution {
        Distribution::Zipf(theta) => Some(Zipf::new(cfg.distinct_entities as usize, theta)),
        Distribution::Uniform => None,
    };
    let mut rows = Vec::with_capacity(cfg.rows as usize);
    for i in 0..cfg.rows {
        // First `distinct_entities` rows cycle through all entities so every
        // distinct value occurs; afterwards sample per the distribution.
        let entity = if i < cfg.distinct_entities {
            i
        } else {
            match &zipf {
                Some(z) => z.sample(&mut rng) as u64,
                None => rng.random_range(0..cfg.distinct_entities),
            }
        };
        let attr = rng.random_range(0..cfg.distinct_attrs);
        let detail = entity_detail(entity, cfg.distinct_details);
        rows.push(vec![
            Value::int(entity as i64),
            Value::int(attr as i64),
            Value::int(detail as i64),
        ]);
    }
    rows
}

/// The (deterministic) detail value of an entity.
pub fn entity_detail(entity: u64, distinct_details: u64) -> u64 {
    // A cheap mix so details are not trivially clustered by entity id.
    (entity.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % distinct_details
}

/// Generates the table directly in bitmap-encoded form.
pub fn generate_table(name: &str, cfg: &GenConfig) -> Table {
    Table::from_rows(name, r_schema(), &generate_rows(cfg))
        .expect("generated rows match the static schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_correct_cardinalities() {
        let cfg = GenConfig::sweep_point(10_000, 100);
        let a = generate_rows(&cfg);
        let b = generate_rows(&cfg);
        assert_eq!(a, b, "generation must be deterministic");
        let t = generate_table("R", &cfg);
        assert_eq!(t.rows(), 10_000);
        assert_eq!(t.column_by_name("entity").unwrap().distinct_count(), 100);
        assert!(t.column_by_name("detail").unwrap().distinct_count() <= 10);
    }

    #[test]
    fn fd_entity_detail_holds_by_construction() {
        let cfg = GenConfig::sweep_point(5_000, 50);
        let rows = generate_rows(&cfg);
        let mut seen = std::collections::HashMap::new();
        for r in &rows {
            let prev = seen.insert(r[0].clone(), r[2].clone());
            if let Some(p) = prev {
                assert_eq!(p, r[2], "FD violated for entity {:?}", r[0]);
            }
        }
    }

    #[test]
    fn all_entities_present() {
        let cfg = GenConfig::sweep_point(1_000, 1_000);
        let t = generate_table("R", &cfg);
        assert_eq!(t.column_by_name("entity").unwrap().distinct_count(), 1_000);
    }

    #[test]
    fn zipf_distribution_skews() {
        let mut cfg = GenConfig::sweep_point(20_000, 100);
        cfg.distribution = Distribution::Zipf(1.2);
        let t = generate_table("R", &cfg);
        let col = t.column_by_name("entity").unwrap();
        let max_count = (0..col.distinct_count() as u32)
            .map(|id| col.value_count(id))
            .max()
            .unwrap();
        // The hottest entity must far exceed the uniform share.
        assert!(max_count > 3 * (20_000 / 100), "max {max_count}");
    }
}
