//! A small data-warehouse workload: a sales fact table with customer and
//! product dimensions, in both *star* (denormalized dimension) and
//! *snowflake* (normalized) shapes. Scenario 2 of the paper's introduction:
//! when the workload turns query-intensive, merge the snowflake back into a
//! star; when it turns update-intensive, decompose the star into a
//! snowflake — both are single SMOs in CODS.

use cods_storage::{Schema, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Size parameters of the warehouse.
#[derive(Clone, Debug)]
pub struct WarehouseConfig {
    /// Rows in the sales fact table.
    pub sales: u64,
    /// Number of customers.
    pub customers: u64,
    /// Number of regions (each customer belongs to one).
    pub regions: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            sales: 10_000,
            customers: 500,
            regions: 10,
            seed: 7,
        }
    }
}

/// The denormalized customer dimension of the star schema:
/// `customer_dim(cust_id, cust_name, region_name)`. `cust_id → region_name`
/// holds, so the snowflake decomposition is lossless.
pub fn star_customer_dim(cfg: &WarehouseConfig) -> Table {
    let schema = Schema::build(
        &[
            ("cust_id", ValueType::Int),
            ("cust_name", ValueType::Str),
            ("region_name", ValueType::Str),
        ],
        &["cust_id"],
    )
    .expect("static schema");
    let rows: Vec<Vec<Value>> = (0..cfg.customers)
        .map(|c| {
            vec![
                Value::int(c as i64),
                Value::str(format!("customer-{c}")),
                Value::str(format!("region-{}", region_of(c, cfg.regions))),
            ]
        })
        .collect();
    Table::from_rows("customer_dim", schema, &rows).expect("valid dim rows")
}

/// The region an id belongs to (deterministic).
pub fn region_of(cust: u64, regions: u64) -> u64 {
    (cust.wrapping_mul(2654435761)) % regions
}

/// The sales fact table: `sales(sale_id, cust_id, amount)`.
pub fn sales_fact(cfg: &WarehouseConfig) -> Table {
    let schema = Schema::build(
        &[
            ("sale_id", ValueType::Int),
            ("cust_id", ValueType::Int),
            ("amount", ValueType::Int),
        ],
        &["sale_id"],
    )
    .expect("static schema");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rows: Vec<Vec<Value>> = (0..cfg.sales)
        .map(|s| {
            vec![
                Value::int(s as i64),
                Value::int(rng.random_range(0..cfg.customers) as i64),
                Value::int(rng.random_range(1..1000)),
            ]
        })
        .collect();
    Table::from_rows("sales", schema, &rows).expect("valid fact rows")
}

/// The fully denormalized ("wide") sales table of the query-intensive star
/// layout: `sales_wide(sale_id, cust_id, cust_name, region_name, amount)`.
/// `cust_id → cust_name` and `cust_id → region_name` hold, so normalizing
/// the customer attributes out (the update-intensive layout) is a lossless
/// CODS decomposition into `sales(sale_id, cust_id, amount)` and
/// `customer_dim(cust_id, cust_name, region_name)`.
pub fn wide_sales(cfg: &WarehouseConfig) -> Table {
    let schema = Schema::build(
        &[
            ("sale_id", ValueType::Int),
            ("cust_id", ValueType::Int),
            ("cust_name", ValueType::Str),
            ("region_name", ValueType::Str),
            ("amount", ValueType::Int),
        ],
        &["sale_id"],
    )
    .expect("static schema");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rows: Vec<Vec<Value>> = (0..cfg.sales)
        .map(|s| {
            let cust = rng.random_range(0..cfg.customers);
            vec![
                Value::int(s as i64),
                Value::int(cust as i64),
                Value::str(format!("customer-{cust}")),
                Value::str(format!("region-{}", region_of(cust, cfg.regions))),
                Value::int(rng.random_range(1..1000)),
            ]
        })
        .collect();
    Table::from_rows("sales_wide", schema, &rows).expect("valid wide rows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_sales_fds_hold() {
        let cfg = WarehouseConfig {
            sales: 2_000,
            customers: 100,
            regions: 5,
            ..Default::default()
        };
        let wide = wide_sales(&cfg);
        assert_eq!(wide.rows(), 2_000);
        wide.verify_key().unwrap();
        let mut seen = std::collections::HashMap::new();
        for row in wide.to_rows() {
            let prev = seen.insert(row[1].clone(), (row[2].clone(), row[3].clone()));
            if let Some(p) = prev {
                assert_eq!(p.0, row[2], "cust_id → cust_name violated");
                assert_eq!(p.1, row[3], "cust_id → region_name violated");
            }
        }
    }

    #[test]
    fn dimensions_are_consistent() {
        let cfg = WarehouseConfig {
            sales: 1000,
            customers: 100,
            regions: 5,
            ..Default::default()
        };
        let dim = star_customer_dim(&cfg);
        assert_eq!(dim.rows(), 100);
        dim.verify_key().unwrap();
        assert_eq!(
            dim.column_by_name("region_name").unwrap().distinct_count(),
            5
        );

        let fact = sales_fact(&cfg);
        assert_eq!(fact.rows(), 1000);
        fact.verify_key().unwrap();
        assert!(fact.column_by_name("cust_id").unwrap().distinct_count() <= 100);
    }

    #[test]
    fn fd_cust_region_holds() {
        let cfg = WarehouseConfig::default();
        let dim = star_customer_dim(&cfg);
        // cust_id is unique, so cust_id → region trivially holds; the
        // interesting FD for snowflaking is cust_name → region via cust_id.
        let mut seen = std::collections::HashMap::new();
        for row in dim.to_rows() {
            let prev = seen.insert(row[0].clone(), row[2].clone());
            assert!(prev.is_none());
        }
    }
}
