//! The Figure 3 experiment definition: which systems run, over which
//! distinct-value sweep, at which scale.

/// The distinct-value x-axis of Figure 3: 100, 1K, 10K, 100K, 1M.
pub const PAPER_SWEEP: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// The paper's row count (10M). The harness defaults to a scaled-down run
/// (env `CODS_BENCH_ROWS` or `--rows`) because the baselines take minutes at
/// full scale, exactly as in the paper.
pub const PAPER_ROWS: u64 = 10_000_000;

/// The systems of Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum System {
    /// D — the data-level approach (CODS).
    Cods,
    /// C — commercial row-oriented RDBMS (query level).
    CommercialRow,
    /// C+I — commercial row-oriented RDBMS with indexes.
    CommercialRowIndexed,
    /// S — SQLite-like row store (journaled, row-at-a-time).
    SqliteLike,
    /// M — column store evolved at query level (MonetDB stand-in).
    ColumnQueryLevel,
}

impl System {
    /// The single-letter label used in Figure 3.
    pub fn label(self) -> &'static str {
        match self {
            System::Cods => "D",
            System::CommercialRow => "C",
            System::CommercialRowIndexed => "C+I",
            System::SqliteLike => "S",
            System::ColumnQueryLevel => "M",
        }
    }

    /// Long description.
    pub fn description(self) -> &'static str {
        match self {
            System::Cods => "CODS data-level evolution",
            System::CommercialRow => "row store, query level",
            System::CommercialRowIndexed => "row store with indexes, query level",
            System::SqliteLike => "SQLite-like row store (journaled)",
            System::ColumnQueryLevel => "column store, query level",
        }
    }

    /// The systems of Figure 3(a) (decomposition).
    pub fn decomposition_systems() -> &'static [System] {
        &[
            System::Cods,
            System::CommercialRow,
            System::CommercialRowIndexed,
            System::SqliteLike,
            System::ColumnQueryLevel,
        ]
    }

    /// The systems of Figure 3(b) (mergence; the paper omits SQLite here).
    pub fn mergence_systems() -> &'static [System] {
        &[
            System::Cods,
            System::CommercialRow,
            System::CommercialRowIndexed,
            System::ColumnQueryLevel,
        ]
    }
}

/// A full sweep specification.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Row count of the generated table.
    pub rows: u64,
    /// Distinct-value points.
    pub distinct_values: Vec<u64>,
}

impl SweepSpec {
    /// The paper's configuration at a custom row count. Sweep points above
    /// the row count are dropped (you cannot have more distinct keys than
    /// rows).
    pub fn scaled(rows: u64) -> Self {
        SweepSpec {
            rows,
            distinct_values: PAPER_SWEEP.iter().copied().filter(|&d| d <= rows).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure3_legend() {
        assert_eq!(System::Cods.label(), "D");
        assert_eq!(System::CommercialRow.label(), "C");
        assert_eq!(System::CommercialRowIndexed.label(), "C+I");
        assert_eq!(System::SqliteLike.label(), "S");
        assert_eq!(System::ColumnQueryLevel.label(), "M");
    }

    #[test]
    fn figure3a_has_five_systems_3b_has_four() {
        assert_eq!(System::decomposition_systems().len(), 5);
        assert_eq!(System::mergence_systems().len(), 4);
        assert!(!System::mergence_systems().contains(&System::SqliteLike));
    }

    #[test]
    fn scaled_sweep_caps_at_rows() {
        let s = SweepSpec::scaled(50_000);
        assert_eq!(s.distinct_values, vec![100, 1_000, 10_000]);
        let full = SweepSpec::scaled(PAPER_ROWS);
        assert_eq!(full.distinct_values.len(), 5);
    }
}
