//! The exact running example of the paper's Figure 1: employees, skills and
//! addresses. Used by the quickstart example and many tests.

use cods_storage::{Schema, Table, Value, ValueType};

/// The seven `(employee, skill, address)` tuples of Figure 1.
pub fn rows() -> Vec<Vec<Value>> {
    [
        ("Jones", "Typing", "425 Grant Ave"),
        ("Jones", "Shorthand", "425 Grant Ave"),
        ("Roberts", "Light Cleaning", "747 Industrial Way"),
        ("Ellis", "Alchemy", "747 Industrial Way"),
        ("Jones", "Whittling", "425 Grant Ave"),
        ("Ellis", "Juggling", "747 Industrial Way"),
        ("Harrison", "Light Cleaning", "425 Grant Ave"),
    ]
    .iter()
    .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
    .collect()
}

/// Schema of table `R` (schema 1 of Figure 1).
pub fn r_schema() -> Schema {
    Schema::build(
        &[
            ("employee", ValueType::Str),
            ("skill", ValueType::Str),
            ("address", ValueType::Str),
        ],
        &[],
    )
    .expect("static schema is valid")
}

/// Table `R` of Figure 1.
pub fn table_r() -> Table {
    Table::from_rows("R", r_schema(), &rows()).expect("figure 1 rows are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let r = table_r();
        assert_eq!(r.rows(), 7);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.column_by_name("employee").unwrap().distinct_count(), 4);
        assert_eq!(r.column_by_name("address").unwrap().distinct_count(), 2);
    }
}
