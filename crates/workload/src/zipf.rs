//! Zipf-distributed sampling for skewed workloads.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` using an inverse-CDF table.
///
/// θ = 0 is uniform; θ around 1 is the classic heavy skew used in database
/// benchmarks.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(theta >= 0.0, "negative skew");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples an item index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform counts skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates rank 50 heavily.
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
    }

    #[test]
    fn all_items_reachable() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }
}
