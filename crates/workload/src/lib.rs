//! # cods-workload
//!
//! Dataset and workload generators for the CODS reproduction:
//!
//! * [`gen`] — the evaluation table `R(entity, attr, detail)` with a
//!   parameterized distinct-value count (the Figure 3 experiment input);
//! * [`figure1`] — the paper's employee/skill/address running example;
//! * [`warehouse`] — star/snowflake schemas for the workload-adaptation
//!   scenario of the introduction;
//! * [`sweep`] — the Figure 3 sweep definition and system labels;
//! * [`zipf`] — skewed value sampling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figure1;
pub mod gen;
pub mod sweep;
pub mod warehouse;
pub mod zipf;

pub use gen::{generate_rows, generate_table, Distribution, GenConfig};
pub use sweep::{SweepSpec, System, PAPER_ROWS, PAPER_SWEEP};
pub use zipf::Zipf;
