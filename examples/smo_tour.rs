//! A tour of the full Table 1 SMO catalogue on a small personnel database,
//! mirroring the demo walkthrough of Section 3: every operator is executed
//! through the platform and its "Data Evolution Status" log printed.
//!
//! ```text
//! cargo run --release --example smo_tour
//! ```

use cods::{Cods, ColumnFill, DecomposeSpec, MergeStrategy, Smo};
use cods_query::Predicate;
use cods_storage::{ColumnDef, Value, ValueType};
use cods_workload::figure1;

fn show(cods: &Cods) {
    println!("tables: {}", cods.catalog().table_names().join(", "));
}

fn main() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();

    let ops = vec![
        // Schema-level plumbing.
        Smo::CopyTable {
            from: "R".into(),
            to: "R_backup".into(),
        },
        Smo::RenameTable {
            from: "R_backup".into(),
            to: "R_archive".into(),
        },
        // Column-level changes.
        Smo::AddColumn {
            table: "R".into(),
            column: ColumnDef::new("country", ValueType::Str),
            fill: ColumnFill::Default(Value::str("US")),
        },
        Smo::RenameColumn {
            table: "R".into(),
            from: "country".into(),
            to: "nation".into(),
        },
        Smo::DropColumn {
            table: "R".into(),
            column: "nation".into(),
        },
        // Horizontal split and re-union.
        Smo::PartitionTable {
            input: "R".into(),
            predicate: Predicate::eq("address", "425 Grant Ave"),
            satisfying: "R_grant".into(),
            rest: "R_industrial".into(),
        },
        Smo::UnionTables {
            left: "R_grant".into(),
            right: "R_industrial".into(),
            output: "R".into(),
            drop_inputs: true,
        },
        // The headline operators.
        Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
        },
        Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        },
        // Cleanup.
        Smo::DropTable {
            name: "R_archive".into(),
        },
        Smo::CreateTable {
            name: "scratch".into(),
            schema: figure1::r_schema(),
        },
    ];

    for op in ops {
        println!("==> {op}");
        let status = cods.execute(op).unwrap();
        let rendered = status.render();
        if !status.steps.is_empty() {
            print!("{rendered}");
        }
        show(&cods);
        println!();
    }

    println!("execution history ({} operators):", cods.history().len());
    for rec in cods.history() {
        println!(
            "  {:<60} {:>9.3} ms",
            rec.operator,
            rec.status.total.as_secs_f64() * 1e3
        );
    }
}
