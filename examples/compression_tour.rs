//! Compression tour: how encoding choices interact with evolution.
//!
//! Builds the evaluation table, shows per-column WAH statistics, clusters it
//! (data-level gather), re-encodes the sorted key column as RLE (the paper's
//! "run length encoding for sorted columns"), and runs a grouped aggregation
//! through the query engine to show the whole stack cooperating.
//!
//! ```text
//! cargo run --release --example compression_tour
//! ```

use cods_query::{execute, AggExpr, AggOp, ExecContext, Plan};
use cods_storage::{Catalog, TableStats};
use cods_workload::GenConfig;

fn main() {
    let rows = 200_000;
    let distinct = 1_000;
    println!("generating R: {rows} rows, {distinct} distinct entities\n");
    let table = cods_workload::generate_table("R", &GenConfig::sweep_point(rows, distinct));

    // 1. Storage statistics of the unclustered table.
    let stats = TableStats::of(&table);
    println!("unclustered (insertion order):");
    println!(
        "  {:<8} {:>9} {:>14} {:>14} {:>8}",
        "column", "distinct", "WAH bytes", "plain vxr", "ratio"
    );
    for (def, c) in table.schema().columns().iter().zip(&stats.columns) {
        println!(
            "  {:<8} {:>9} {:>14} {:>14} {:>7.1}x",
            def.name, c.distinct, c.payload_bytes, c.plain_matrix_bytes, c.compression_ratio
        );
    }

    // 2. Cluster by the key column: every value's bitmap becomes one run.
    //    cluster_by auto-encodes through the adaptive chooser (the sorted
    //    entity column flips to RLE by itself); force bitmap back here so
    //    the WAH-vs-WAH shrinkage is visible, then show the RLE step
    //    explicitly below.
    let auto = table.cluster_by(&["entity"]).unwrap();
    println!(
        "\nafter cluster_by, the chooser picked: {}",
        auto.schema()
            .columns()
            .iter()
            .zip(auto.columns())
            .map(|(d, c)| match c.uniform_encoding() {
                Some(e) => format!("{}={}", d.name, e),
                None => {
                    let (b, r) = c.encoding_counts();
                    format!("{}={}×bitmap/{}×rle", d.name, b, r)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    let clustered = auto.recoded(cods_storage::Encoding::Bitmap).unwrap();
    let cstats = TableStats::of(&clustered);
    println!("\nclustered by entity:");
    for (def, c) in clustered.schema().columns().iter().zip(&cstats.columns) {
        println!("  {:<8} WAH bytes {:>12}", def.name, c.payload_bytes);
    }
    let before = stats.columns[0].payload_bytes;
    let after = cstats.columns[0].payload_bytes;
    println!(
        "  entity column shrank {:.1}x ({} → {} bytes)",
        before as f64 / after as f64,
        before,
        after
    );

    // 3. The sorted column as RLE — the encoding the paper reserves for
    //    sorted columns.
    let rle = clustered
        .column_by_name("entity")
        .unwrap()
        .recode(cods_storage::Encoding::Rle)
        .unwrap();
    println!(
        "\nRLE re-encoding of the sorted entity column: {} runs, {} bytes (WAH: {} bytes)",
        rle.run_count(),
        rle.payload_bytes(),
        after
    );

    // 4. A grouped aggregate over the clustered table: rows per entity range.
    let catalog = Catalog::new();
    catalog.create(clustered).unwrap();
    let plan = Plan::Aggregate {
        input: Box::new(Plan::ScanColumn { table: "R".into() }),
        group_by: vec!["detail".into()],
        aggs: vec![
            AggExpr::new(AggOp::Count, "entity", "rows"),
            AggExpr::new(AggOp::CountDistinct, "entity", "entities"),
            AggExpr::new(AggOp::Min, "attr", "min_attr"),
            AggExpr::new(AggOp::Max, "attr", "max_attr"),
        ],
    };
    let ctx = ExecContext {
        catalog: Some(&catalog),
        row_db: None,
    };
    let rs = execute(&plan, ctx).unwrap();
    println!("\nper-detail report ({} groups):", rs.rows.len());
    println!("  {}", rs.schema.names().join(" | "));
    for row in rs.rows.iter().take(5) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
    if rs.rows.len() > 5 {
        println!("  … ({} more groups)", rs.rows.len() - 5);
    }
}
