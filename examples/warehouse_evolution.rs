//! Warehouse evolution: star (denormalized) ↔ normalized layouts — Scenario
//! 2 of the paper's introduction.
//!
//! A query-intensive workload favors the wide table
//! `sales_wide(sale_id, cust_id, cust_name, region_name, amount)`: no joins.
//! When the workload turns update-intensive, the customer attributes should
//! be normalized out to avoid redundancy and update anomalies:
//! `sales(sale_id, cust_id, amount)` + `customer_dim(cust_id, cust_name,
//! region_name)`. With CODS both directions are a single data-level SMO;
//! this example runs the full cycle and compares against the query-level
//! cost on the same column store.
//!
//! ```text
//! cargo run --release --example warehouse_evolution
//! ```

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_query::{decompose_column_level, merge_column_level};
use cods_storage::Catalog;
use cods_workload::warehouse::{wide_sales, WarehouseConfig};
use std::time::Instant;

fn main() {
    let cfg = WarehouseConfig {
        sales: 300_000,
        customers: 5_000,
        regions: 50,
        seed: 7,
    };
    println!(
        "building wide sales table: {} sales, {} customers, {} regions",
        cfg.sales, cfg.customers, cfg.regions
    );
    let wide = wide_sales(&cfg);

    // --- Data level (CODS) ---
    let cods = Cods::new();
    cods.catalog().create(wide.clone()).unwrap();
    let t0 = Instant::now();
    let status = cods
        .execute(Smo::DecomposeTable {
            input: "sales_wide".into(),
            spec: DecomposeSpec::new(
                "sales",
                &["sale_id", "cust_id", "amount"],
                "customer_dim",
                &["cust_id", "cust_name", "region_name"],
            ),
        })
        .unwrap();
    let normalize_data_level = t0.elapsed();
    println!("\nnormalize (data level) status:\n{}", status.render());
    println!(
        "customer_dim has {} rows (one per customer)",
        cods.table("customer_dim").unwrap().rows()
    );

    let t0 = Instant::now();
    cods.execute(Smo::MergeTables {
        left: "sales".into(),
        right: "customer_dim".into(),
        output: "sales_wide".into(),
        strategy: MergeStrategy::Auto,
    })
    .unwrap();
    let denormalize_data_level = t0.elapsed();

    // --- Query level on the same column store ---
    let catalog = Catalog::new();
    catalog.create(wide.clone()).unwrap();
    let t0 = Instant::now();
    decompose_column_level(
        &catalog,
        "sales_wide",
        "sales",
        &["sale_id", "cust_id", "amount"],
        "customer_dim",
        &["cust_id", "cust_name", "region_name"],
        &["cust_id"],
    )
    .unwrap();
    let normalize_query_level = t0.elapsed();
    let t0 = Instant::now();
    merge_column_level(&catalog, "sales", "customer_dim", "star2", &["cust_id"]).unwrap();
    let denormalize_query_level = t0.elapsed();

    println!("\n                      data level (CODS)    query level");
    println!(
        "star → normalized     {:>12.3} ms    {:>12.3} ms",
        normalize_data_level.as_secs_f64() * 1e3,
        normalize_query_level.as_secs_f64() * 1e3
    );
    println!(
        "normalized → star     {:>12.3} ms    {:>12.3} ms",
        denormalize_data_level.as_secs_f64() * 1e3,
        denormalize_query_level.as_secs_f64() * 1e3
    );

    // Verify both engines produced the same star again (column order
    // differs — the merge puts payload columns last — so compare by name).
    let a = cods.table("sales_wide").unwrap();
    let b = catalog.get("star2").unwrap();
    assert!(
        cods::verify::same_tuples(&a, &b).unwrap(),
        "data-level and query-level must agree"
    );
    assert!(
        cods::verify::same_tuples(&wide, &a).unwrap(),
        "round trip must be lossless"
    );
    println!("\nverified: both engines reconstruct the original wide table");
}
