//! Workload adaptation: evolve the schema when the workload changes
//! (Scenario 2 of the paper's introduction).
//!
//! Schema 1 (one wide table `R(entity, attr, detail)`) favors queries: no
//! join. But it stores each entity's `detail` redundantly, once per row, so
//! an update-intensive phase pays to rewrite a 200k-row column. Schema 2
//! (`S(entity, attr)` + `T(entity, detail)`) shrinks the update surface to
//! one row per entity. Because CODS makes the evolution itself nearly free,
//! the schema can follow the workload: this example runs a query phase on
//! schema 1, decomposes when updates arrive, measures the update savings,
//! and merges back when queries return.
//!
//! ```text
//! cargo run --release --example workload_adaptation
//! ```

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_query::{execute, ExecContext, Plan, Predicate};
use cods_storage::{EncodedColumn, Table, Value};
use cods_workload::GenConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: u64 = 200_000;
const DISTINCT: u64 = 5_000;

/// The hot query: distinct details of rows with a given attr.
fn hot_query(cods: &Cods, wide: bool, skill: i64) -> usize {
    let ctx = ExecContext {
        catalog: Some(cods.catalog()),
        row_db: None,
    };
    let plan = if wide {
        Plan::ScanColumn { table: "R".into() }
            .project(&["attr", "detail"])
            .filter(Predicate::eq("attr", skill))
            .project(&["detail"])
            .distinct()
    } else {
        Plan::HashJoin {
            left: Box::new(
                Plan::ScanColumn { table: "S".into() }.filter(Predicate::eq("attr", skill)),
            ),
            right: Box::new(Plan::ScanColumn { table: "T".into() }),
            left_keys: vec!["entity".into()],
            right_keys: vec!["entity".into()],
        }
        .project(&["detail"])
        .distinct()
    };
    execute(&plan, ctx).unwrap().rows.len()
}

/// Updates the `detail` of every entity below `threshold` in `table` —
/// the cost is a rebuild of the detail column, proportional to the number
/// of rows *physically holding* that column.
fn update_details(table: &Table, threshold: i64) -> (Table, Duration) {
    let t0 = Instant::now();
    let entity_idx = table.schema().index_of("entity").unwrap();
    let detail_idx = table.schema().index_of("detail").unwrap();
    let entities = table.column(entity_idx).values();
    let mut details = table.column(detail_idx).values();
    for (e, d) in entities.iter().zip(details.iter_mut()) {
        if let Value::Int(id) = e {
            if *id < threshold {
                *d = Value::int(9_999_999 + *id);
            }
        }
    }
    let new_col = Arc::new(
        EncodedColumn::from_values(table.schema().columns()[detail_idx].ty, &details).unwrap(),
    );
    let mut cols = table.columns().to_vec();
    cols[detail_idx] = new_col;
    let updated = Table::new(table.name(), table.schema().clone(), cols).unwrap();
    (updated, t0.elapsed())
}

fn main() {
    println!("generating R: {ROWS} rows, {DISTINCT} distinct entities");
    let table = cods_workload::generate_table("R", &GenConfig::sweep_point(ROWS, DISTINCT));
    let cods = Cods::new();
    cods.catalog().create(table).unwrap();

    // Phase 1 — query-intensive on schema 1.
    let t0 = Instant::now();
    let total: usize = (0..20).map(|s| hot_query(&cods, true, s)).sum();
    println!(
        "phase 1 (schema 1): 20 hot queries in {:.1} ms ({total} result rows, no joins)",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Phase 2 — the workload turns update-intensive. First measure what the
    // update costs on schema 1.
    let (_, wide_update) = update_details(&cods.table("R").unwrap(), 500);
    println!(
        "\nphase 2: update details of 500 entities ON SCHEMA 1: {:.1} ms \
         (rebuilds a {ROWS}-row column, each detail stored ~{} times)",
        wide_update.as_secs_f64() * 1e3,
        ROWS / DISTINCT
    );

    // Adapt: decompose to schema 2 (data level — cheap).
    let t0 = Instant::now();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
    })
    .unwrap();
    println!(
        "evolve to schema 2 with CODS: {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Queries are still answerable on schema 2 (with a join) and the
    // decomposition must not have changed any answer.
    let t0 = Instant::now();
    let total2: usize = (0..20).map(|s| hot_query(&cods, false, s)).sum();
    println!(
        "hot queries on schema 2 (join required): {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(total, total2, "decomposition must not change query answers");

    let (updated_t, narrow_update) = update_details(&cods.table("T").unwrap(), 500);
    cods.catalog().put(updated_t);
    println!(
        "same update ON SCHEMA 2: {:.1} ms (rebuilds a {DISTINCT}-row column — \
         {:.0}x less work)",
        narrow_update.as_secs_f64() * 1e3,
        wide_update.as_secs_f64() / narrow_update.as_secs_f64().max(1e-9)
    );

    // Phase 3 — queries dominate again: merge back.
    let t0 = Instant::now();
    cods.execute(Smo::MergeTables {
        left: "S".into(),
        right: "T".into(),
        output: "R".into(),
        strategy: MergeStrategy::Auto,
    })
    .unwrap();
    println!(
        "\nphase 3: evolve back to schema 1 with CODS: {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let t0 = Instant::now();
    let total3: usize = (0..20).map(|s| hot_query(&cods, true, s)).sum();
    println!(
        "hot queries on schema 1 again: {:.1} ms ({total3} rows)",
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "\nthe evolution cost (tens of ms) is far below one update round's savings — \
         with CODS the schema can simply follow the workload"
    );
}
