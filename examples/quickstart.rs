//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds table `R(employee, skill, address)`, decomposes it at data level
//! into `S(employee, skill)` and `T(employee, address)` (schema 2), prints
//! the evolution status log, merges the two back into `R`, and verifies the
//! round trip is lossless.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_workload::figure1;

fn print_table(t: &cods_storage::Table) {
    println!("-- {} ({} rows) --", t.name(), t.rows());
    println!("   {}", t.schema().names().join(" | "));
    for row in t.to_rows() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("   {}", cells.join(" | "));
    }
    println!();
}

fn main() {
    // 1. Load the Figure 1 table into a CODS platform.
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    println!("Schema 1 (original):\n");
    print_table(&cods.table("R").unwrap());
    let original = cods.table("R").unwrap().tuple_multiset();

    // 2. Decompose R into S(employee, skill) and T(employee, address).
    //    Data level: S reuses R's columns by reference; T is produced by
    //    distinction + bitmap filtering, never materializing tuples.
    let status = cods
        .execute(Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
        })
        .unwrap();
    println!("Data evolution status (DECOMPOSE):");
    println!("{}", status.render());
    println!("Schema 2 (decomposed):\n");
    print_table(&cods.table("S").unwrap());
    print_table(&cods.table("T").unwrap());

    // 3. Workload changed back? Merge S and T into R again. The join
    //    attributes are T's key, so S's columns are reused wholesale.
    let status = cods
        .execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
    println!("Data evolution status (MERGE):");
    println!("{}", status.render());
    print_table(&cods.table("R").unwrap());

    // 4. Verify the evolution was lossless.
    assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);
    println!("round trip verified: R == decompose ∘ merge (R)");

    // 5. The same round trip as one *planned* script: validated up front
    //    against a catalog snapshot, executed with fusion + DAG
    //    parallelism, committed atomically — S2/T2 never enter the
    //    catalog, and a failure anywhere would have left it untouched.
    let fresh = Cods::new();
    fresh.catalog().create(figure1::table_r()).unwrap();
    let plan = fresh
        .plan_script(
            "DECOMPOSE TABLE R INTO S2 (employee, skill), T2 (employee, address)\n\
             MERGE TABLES S2, T2 INTO R\n\
             DROP TABLE S2\n\
             DROP TABLE T2\n",
        )
        .unwrap();
    println!("\nPlanned script:\n{}", plan.describe());
    let report = plan.execute().unwrap();
    println!("Plan status:\n{}", report.log.render());
    assert_eq!(fresh.table("R").unwrap().tuple_multiset(), original);
    assert_eq!(report.elided, vec!["S2".to_string(), "T2".to_string()]);
    println!(
        "planned round trip verified: committed {} table(s), elided {:?}",
        report.committed_puts, report.elided
    );
}
