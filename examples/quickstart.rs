//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds table `R(employee, skill, address)`, decomposes it at data level
//! into `S(employee, skill)` and `T(employee, address)` (schema 2), prints
//! the evolution status log, merges the two back into `R`, and verifies the
//! round trip is lossless.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_workload::figure1;

fn print_table(t: &cods_storage::Table) {
    println!("-- {} ({} rows) --", t.name(), t.rows());
    println!("   {}", t.schema().names().join(" | "));
    for row in t.to_rows() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("   {}", cells.join(" | "));
    }
    println!();
}

fn main() {
    // 1. Load the Figure 1 table into a CODS platform.
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    println!("Schema 1 (original):\n");
    print_table(&cods.table("R").unwrap());
    let original = cods.table("R").unwrap().tuple_multiset();

    // 2. Decompose R into S(employee, skill) and T(employee, address).
    //    Data level: S reuses R's columns by reference; T is produced by
    //    distinction + bitmap filtering, never materializing tuples.
    let status = cods
        .execute(Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
        })
        .unwrap();
    println!("Data evolution status (DECOMPOSE):");
    println!("{}", status.render());
    println!("Schema 2 (decomposed):\n");
    print_table(&cods.table("S").unwrap());
    print_table(&cods.table("T").unwrap());

    // 3. Workload changed back? Merge S and T into R again. The join
    //    attributes are T's key, so S's columns are reused wholesale.
    let status = cods
        .execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
    println!("Data evolution status (MERGE):");
    println!("{}", status.render());
    print_table(&cods.table("R").unwrap());

    // 4. Verify the evolution was lossless.
    assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);
    println!("round trip verified: R == decompose ∘ merge (R)");
}
