//! # cods-repro
//!
//! Workspace facade for the CODS reproduction (Liu et al., *CODS: Evolving
//! Data Efficiently and Scalably in Column Oriented Databases*, PVLDB 3(2),
//! 2010). Re-exports the member crates so the examples and cross-crate
//! integration tests have one import root:
//!
//! * [`bitmap`] (`cods-bitmap`) — WAH-compressed bitmap kernel;
//! * [`storage`] (`cods-storage`) — the column store;
//! * [`rowstore`] (`cods-rowstore`) — the row-store baselines' engine;
//! * [`query`] (`cods-query`) — query execution + query-level evolution;
//! * [`core`] (`cods`) — the data-level evolution platform itself;
//! * [`workload`] (`cods-workload`) — dataset generators.
//!
//! See `README.md` for the tour and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub use cods as core;
pub use cods_bitmap as bitmap;
pub use cods_query as query;
pub use cods_rowstore as rowstore;
pub use cods_storage as storage;
pub use cods_workload as workload;
