//! Segmented-column integration: the segment-parallel evolution operators
//! must produce results bit-identical to a single-segment (monolithic)
//! execution, agree with the query-level engine, and actually exercise
//! multi-segment directories.

use cods::simple_ops::{partition_table, union_tables};
use cods::{decompose, merge, merge_general, DecomposeSpec, MergeStrategy};
use cods_query::Predicate;
use cods_storage::{Schema, Table, Value, ValueType};

const SEG: u64 = 128;
const MONO: u64 = 1 << 40;

fn r_rows(n: i64) -> Vec<Vec<Value>> {
    // entity → detail holds by construction; entities cluster in row ranges
    // so segments have distinct present-value sets.
    (0..n)
        .map(|i| {
            let entity = i / 100;
            vec![
                Value::int(entity),
                Value::int(i % 37),
                Value::int(entity * 7 % 5),
            ]
        })
        .collect()
}

fn r_schema() -> Schema {
    Schema::build(
        &[
            ("entity", ValueType::Int),
            ("attr", ValueType::Int),
            ("detail", ValueType::Int),
        ],
        &[],
    )
    .unwrap()
}

fn spec() -> DecomposeSpec {
    DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"])
}

#[test]
fn decompose_is_segmentation_invariant() {
    let rows = r_rows(5_000);
    let seg_t = Table::from_rows_with_segment_rows("R", r_schema(), &rows, SEG).unwrap();
    let mono_t = Table::from_rows_with_segment_rows("R", r_schema(), &rows, MONO).unwrap();
    assert!(
        seg_t.column(0).segment_count() > 1,
        "test must span segments"
    );
    assert_eq!(mono_t.column(0).segment_count(), 1);

    let a = decompose(&seg_t, &spec()).unwrap();
    let b = decompose(&mono_t, &spec()).unwrap();
    a.unchanged.check_invariants().unwrap();
    a.changed.check_invariants().unwrap();
    a.changed.verify_key().unwrap();
    assert_eq!(a.distinct_keys, b.distinct_keys);
    assert_eq!(a.unchanged.to_rows(), b.unchanged.to_rows());
    assert_eq!(a.changed.to_rows(), b.changed.to_rows());
    // Property 1 still holds under segmentation: reuse by reference.
    assert!(seg_t.shares_column_with(&a.unchanged, "entity"));
    assert!(seg_t.shares_column_with(&a.unchanged, "attr"));
}

#[test]
fn merge_is_segmentation_invariant() {
    let rows = r_rows(5_000);
    let seg_t = Table::from_rows_with_segment_rows("R", r_schema(), &rows, SEG).unwrap();
    let out = decompose(&seg_t, &spec()).unwrap();
    let (s, t) = (out.unchanged, out.changed);

    let kfk = merge(
        &s,
        &t,
        "R1",
        &MergeStrategy::KeyForeignKey { keyed: "T".into() },
    )
    .unwrap();
    kfk.output.check_invariants().unwrap();
    assert_eq!(kfk.output.tuple_multiset(), seg_t.tuple_multiset());

    let gen = merge_general(&s, &t, "R2", &["entity".into()]).unwrap();
    gen.output.check_invariants().unwrap();
    assert_eq!(gen.output.tuple_multiset(), seg_t.tuple_multiset());
}

#[test]
fn cross_engine_verify_on_segmented_input() {
    let rows = r_rows(3_000);
    let seg_t = Table::from_rows_with_segment_rows("R", r_schema(), &rows, SEG).unwrap();
    let out = decompose(&seg_t, &spec()).unwrap();
    // Data-level result re-joined must reproduce the original tuples.
    assert!(
        cods::verify::verify_lossless_round_trip(&seg_t, &out.unchanged, &out.changed).unwrap()
    );

    // Query-level (column engine) execution of the same decomposition must
    // agree table by table.
    let catalog = cods_storage::Catalog::new();
    catalog.create(seg_t.renamed("R")).unwrap();
    cods_query::decompose_column_level(
        &catalog,
        "R",
        "S2",
        &["entity", "attr"],
        "T2",
        &["entity", "detail"],
        &["entity"],
    )
    .unwrap();
    assert!(cods::verify::same_tuples(&catalog.get("S2").unwrap(), &out.unchanged).unwrap());
    assert!(cods::verify::same_tuples(&catalog.get("T2").unwrap(), &out.changed).unwrap());
}

#[test]
fn partition_union_round_trip_across_segments() {
    let rows = r_rows(4_000);
    let seg_t = Table::from_rows_with_segment_rows("R", r_schema(), &rows, SEG).unwrap();
    let (sat, rest, _) =
        partition_table(&seg_t, &Predicate::lt("entity", 13i64), "lo", "hi").unwrap();
    sat.check_invariants().unwrap();
    rest.check_invariants().unwrap();
    assert_eq!(sat.rows() + rest.rows(), seg_t.rows());
    let (back, _) = union_tables(&sat, &rest, "back").unwrap();
    back.check_invariants().unwrap();
    assert_eq!(back.tuple_multiset(), seg_t.tuple_multiset());
}

#[test]
fn union_shares_segments_of_both_inputs() {
    let rows = r_rows(1_000);
    let a = Table::from_rows_with_segment_rows("A", r_schema(), &rows, SEG).unwrap();
    let b = Table::from_rows_with_segment_rows("B", r_schema(), &rows, SEG).unwrap();
    let (u, _) = union_tables(&a, &b, "U").unwrap();
    u.check_invariants().unwrap();
    let ua = u.column(0);
    // The union's column directory reuses both inputs' segments by Arc —
    // appends never rewrite existing bitmaps.
    assert!(ua.segments()[0].ptr_eq(&a.column(0).segments()[0]));
    let a_segs = a.column(0).segment_count();
    assert!(ua.segments()[a_segs].ptr_eq(&b.column(0).segments()[0]));
}

/// A long UNION chain of small slices fragments the directory into
/// irregular tiny segments; after compaction every segment must land in
/// `[½·nominal, 2·nominal]` with results identical to the uncompacted
/// column — for both uniform encodings and for a randomly mixed directory
/// (whose compaction merge groups transcode).
#[test]
fn union_chain_fragmentation_is_repaired_by_compaction() {
    let rows = r_rows(4_000);
    let plain = Table::from_rows_with_segment_rows("R", r_schema(), &rows, SEG).unwrap();
    let mixed = {
        let mut t = plain.clone();
        let segs = t.column(0).segment_count();
        for i in (1..segs).step_by(2) {
            t = t
                .with_column_segment_range_encoding("entity", cods_storage::Encoding::Rle, i..i + 1)
                .unwrap();
        }
        t
    };
    assert_eq!(mixed.column(0).uniform_encoding(), None);
    let variants = [
        ("bitmap", plain.clone()),
        ("rle", plain.recoded(cods_storage::Encoding::Rle).unwrap()),
        ("mixed", mixed),
    ];
    for (encoding, base) in variants {
        // Chain 200 UNIONs of 20-row slices. Slicing goes through the raw
        // column API so the chain is maximally fragmenting; union_tables
        // itself already compacts behind the threshold trigger.
        let cols: Vec<_> = base.columns().to_vec();
        let mut acc: Vec<cods_storage::EncodedColumn> =
            cols.iter().map(|c| c.slice(0, 20)).collect();
        for i in 1..200 {
            let lo = (i * 20) % 3_900;
            for (a, c) in acc.iter_mut().zip(&cols) {
                *a = a.concat(&c.slice(lo, lo + 20)).unwrap();
            }
        }
        for col in &acc {
            assert_eq!(col.rows(), 4_000);
            assert!(
                col.needs_compaction(),
                "{encoding}: chain should fragment the directory ({} segments)",
                col.segment_count()
            );
            let compacted = col.compacted();
            compacted.check_invariants().unwrap();
            // Identical results...
            assert_eq!(compacted.values(), col.values());
            assert_eq!(compacted.dict(), col.dict());
            // ...and a healthy directory.
            let nominal = compacted.nominal_segment_rows();
            for size in compacted.segment_sizes() {
                assert!(
                    size >= nominal / 2 && size <= 2 * nominal,
                    "{encoding}: segment of {size} rows outside [{}, {}]",
                    nominal / 2,
                    2 * nominal
                );
            }
            assert!(!compacted.needs_compaction());
        }
        // The UNION operator's threshold trigger keeps directories healthy
        // without explicit compaction calls: chain table-level unions.
        let slice_tables: Vec<Table> = (0..100)
            .map(|i| {
                let lo = (i * 37) % 3_900;
                let cols = base
                    .columns()
                    .iter()
                    .map(|c| std::sync::Arc::new(c.slice(lo, lo + 20)))
                    .collect();
                Table::new("P", base.schema().clone(), cols).unwrap()
            })
            .collect();
        let mut acc_t = slice_tables[0].clone();
        for t in &slice_tables[1..] {
            let (u, _) = union_tables(&acc_t, t, "U").unwrap();
            acc_t = u;
        }
        assert_eq!(acc_t.rows(), 2_000);
        acc_t.check_invariants().unwrap();
        for col in acc_t.columns() {
            assert!(
                col.segment_count() <= 2 * (col.rows().div_ceil(SEG).max(1)) as usize,
                "{encoding}: union chain left {} segments for {} rows",
                col.segment_count(),
                col.rows()
            );
        }
        // The multiset survives the whole fragment-and-compact journey.
        let expect: Vec<Vec<Value>> = slice_tables.iter().flat_map(|t| t.to_rows()).collect();
        assert_eq!(acc_t.to_rows(), expect);
    }
}

#[test]
fn predicate_scan_prunes_but_stays_exact() {
    // Entities are clustered: entity k occupies rows 100k..100k+100, so a
    // point predicate's value ids live in one or two segments and every
    // other segment is pruned via stats.
    let rows = r_rows(4_000);
    let seg_t = Table::from_rows_with_segment_rows("R", r_schema(), &rows, SEG).unwrap();
    let mono_t = Table::from_rows_with_segment_rows("R", r_schema(), &rows, MONO).unwrap();
    for pred in [
        Predicate::eq("entity", 17i64),
        Predicate::lt("entity", 3i64),
        Predicate::eq("entity", 17i64).or(Predicate::eq("entity", 30i64)),
        Predicate::eq("entity", 9_999i64), // matches nothing anywhere
        Predicate::lt("attr", 30i64),      // matches in every segment
    ] {
        let a = cods_query::bitmap_scan::predicate_mask(&seg_t, &pred).unwrap();
        let b = cods_query::bitmap_scan::predicate_mask(&mono_t, &pred).unwrap();
        assert_eq!(a, b, "mask differs for {pred:?}");
    }
    let filtered =
        cods_query::bitmap_scan::filter_table(&seg_t, &Predicate::eq("entity", 17i64)).unwrap();
    filtered.check_invariants().unwrap();
    assert_eq!(filtered.rows(), 100);
}
