//! End-to-end multi-step evolution scenarios through the platform,
//! exercising the full SMO catalogue in realistic sequences.

use cods::{Cods, ColumnFill, DecomposeSpec, EvolutionError, MergeStrategy, Smo};
use cods_query::Predicate;
use cods_storage::{ColumnDef, Value, ValueType};
use cods_workload::{figure1, GenConfig};

#[test]
fn figure1_demo_walkthrough() {
    // The exact Section 3 demo flow: create, load, decompose, inspect,
    // further SMOs on the outputs.
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();

    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
    })
    .unwrap();

    // Downstream SMO on a decomposition output: add a column to T.
    cods.execute(Smo::AddColumn {
        table: "T".into(),
        column: ColumnDef::new("verified", ValueType::Bool),
        fill: ColumnFill::Default(Value::Bool(false)),
    })
    .unwrap();
    let t = cods.table("T").unwrap();
    assert_eq!(t.arity(), 3);
    assert_eq!(t.rows(), 4);
    assert_eq!(t.row(0)[2], Value::Bool(false));

    // The status log must mention the paper's step names.
    let history = cods.history();
    let decompose_record = &history[0];
    let names: Vec<&str> = decompose_record
        .status
        .steps
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert!(names.contains(&"distinction"), "{names:?}");
    assert!(names.contains(&"bitmap filtering"), "{names:?}");
}

#[test]
fn evolution_with_column_smos_interleaved() {
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(2_000, 100),
        ))
        .unwrap();

    // Add an audit column, decompose, and check the column went with S.
    cods.execute(Smo::AddColumn {
        table: "R".into(),
        column: ColumnDef::new("audit", ValueType::Int),
        fill: ColumnFill::Default(Value::int(1)),
    })
    .unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new(
            "S",
            &["entity", "attr", "audit"],
            "T",
            &["entity", "detail"],
        ),
    })
    .unwrap();
    assert!(cods.table("S").unwrap().schema().contains("audit"));
    assert!(!cods.table("T").unwrap().schema().contains("audit"));

    // Drop it again and merge back; the result must have the original shape.
    cods.execute(Smo::DropColumn {
        table: "S".into(),
        column: "audit".into(),
    })
    .unwrap();
    cods.execute(Smo::MergeTables {
        left: "S".into(),
        right: "T".into(),
        output: "R".into(),
        strategy: MergeStrategy::Auto,
    })
    .unwrap();
    let r = cods.table("R").unwrap();
    assert_eq!(r.schema().names(), vec!["entity", "attr", "detail"]);
    assert_eq!(r.rows(), 2_000);
}

#[test]
fn failed_smo_leaves_catalog_intact() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    let before = cods.catalog().table_names();

    // Lossy decomposition (skill dropped entirely) must fail…
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee"], "T", &["employee", "address"]),
    });
    assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
    // …and leave everything as it was.
    assert_eq!(cods.catalog().table_names(), before);

    // FD-violating decomposition must fail too (skill does not depend on
    // employee).
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "address"], "T", &["employee", "skill"]),
    });
    assert!(matches!(err, Err(EvolutionError::FdViolation(_))));
    assert_eq!(cods.catalog().table_names(), before);
}

#[test]
fn recursive_decomposition_into_three_tables() {
    // The paper: "Decomposing a table into multiple tables can be done by
    // recursively executing this operation." R(e, a, d, z) with e → d and
    // e → z: two DECOMPOSE SMOs produce three tables.
    use cods_storage::{Schema, Table};
    let schema = Schema::build(
        &[
            ("e", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
            ("z", ValueType::Int),
        ],
        &[],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..600)
        .map(|i| {
            let e = i % 30;
            vec![
                Value::int(e),
                Value::int(i),
                Value::int(e * 2),
                Value::int(e * 3),
            ]
        })
        .collect();
    let cods = Cods::new();
    cods.catalog()
        .create(Table::from_rows("R", schema, &rows).unwrap())
        .unwrap();
    // First split off d.
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("R1", &["e", "a", "z"], "D", &["e", "d"]),
    })
    .unwrap();
    // Recurse on the unchanged output to split off z.
    cods.execute(Smo::DecomposeTable {
        input: "R1".into(),
        spec: DecomposeSpec::new("S", &["e", "a"], "Z", &["e", "z"]),
    })
    .unwrap();
    assert_eq!(cods.catalog().table_names(), vec!["D", "S", "Z"]);
    assert_eq!(cods.table("D").unwrap().rows(), 30);
    assert_eq!(cods.table("Z").unwrap().rows(), 30);
    assert_eq!(cods.table("S").unwrap().rows(), 600);

    // Recursive mergence reconstructs R.
    cods.execute(Smo::MergeTables {
        left: "S".into(),
        right: "Z".into(),
        output: "SZ".into(),
        strategy: MergeStrategy::Auto,
    })
    .unwrap();
    cods.execute(Smo::MergeTables {
        left: "SZ".into(),
        right: "D".into(),
        output: "R".into(),
        strategy: MergeStrategy::Auto,
    })
    .unwrap();
    let r = cods.table("R").unwrap();
    assert_eq!(r.rows(), 600);
    // Same tuples as the original, modulo column order.
    let schema2 = r.schema().clone();
    assert!(
        schema2.contains("e")
            && schema2.contains("a")
            && schema2.contains("d")
            && schema2.contains("z")
    );
}

#[test]
fn partition_by_compound_predicate() {
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(1_000, 50),
        ))
        .unwrap();
    let pred = Predicate::lt("entity", 10i64).or(Predicate::ge("entity", 40i64));
    cods.execute(Smo::PartitionTable {
        input: "R".into(),
        predicate: pred,
        satisfying: "edges".into(),
        rest: "middle".into(),
    })
    .unwrap();
    let edges = cods.table("edges").unwrap();
    let middle = cods.table("middle").unwrap();
    assert_eq!(edges.rows() + middle.rows(), 1_000);
    for row in edges.to_rows() {
        if let Value::Int(e) = row[0] {
            assert!(!(10..40).contains(&e));
        }
    }
    for row in middle.to_rows() {
        if let Value::Int(e) = row[0] {
            assert!((10..40).contains(&e));
        }
    }
}

#[test]
fn union_of_differently_dictionaried_tables() {
    // Two tables over disjoint value ranges: union must merge dictionaries.
    let cods = Cods::new();
    let a = cods_workload::generate_table("A", &GenConfig::sweep_point(500, 20));
    let mut cfg = GenConfig::sweep_point(500, 20);
    cfg.seed = 999;
    let b = cods_workload::generate_table("B", &cfg);
    cods.catalog().create(a.clone()).unwrap();
    cods.catalog().create(b.clone()).unwrap();
    cods.execute(Smo::UnionTables {
        left: "A".into(),
        right: "B".into(),
        output: "AB".into(),
        drop_inputs: false,
    })
    .unwrap();
    let ab = cods.table("AB").unwrap();
    assert_eq!(ab.rows(), 1_000);
    ab.check_invariants().unwrap();
    let mut expected = a.tuple_multiset();
    for (k, v) in b.tuple_multiset() {
        *expected.entry(k).or_insert(0) += v;
    }
    assert_eq!(ab.tuple_multiset(), expected);
}

#[test]
fn decompose_output_columns_share_input_memory() {
    use std::sync::Arc;
    let cods = Cods::new();
    let input = cods_workload::generate_table("R", &GenConfig::sweep_point(2_000, 100));
    let entity_col = Arc::clone(input.column_by_name("entity").unwrap());
    cods.catalog().create(input).unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
    })
    .unwrap();
    // Property 1: S's entity column is literally R's.
    let s = cods.table("S").unwrap();
    assert!(Arc::ptr_eq(
        s.column_by_name("entity").unwrap(),
        &entity_col
    ));
}
