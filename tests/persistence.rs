//! Persistence across evolution: tables survive a save/load cycle at every
//! point of an evolution sequence, and the loaded catalog keeps evolving.

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_storage::persist::{read_catalog, save_catalog};
use cods_workload::GenConfig;

#[test]
fn evolved_catalog_round_trips_through_disk() {
    let dir = std::env::temp_dir().join("cods_it_persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("evolved.catalog");

    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(2_000, 100),
        ))
        .unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
    })
    .unwrap();
    let s_tuples = cods.table("S").unwrap().tuple_multiset();
    let t_tuples = cods.table("T").unwrap().tuple_multiset();

    save_catalog(cods.catalog(), &path).unwrap();
    let loaded = read_catalog(&path).unwrap();
    assert_eq!(loaded.table_names(), vec!["S", "T"]);
    assert_eq!(loaded.get("S").unwrap().tuple_multiset(), s_tuples);
    assert_eq!(loaded.get("T").unwrap().tuple_multiset(), t_tuples);
    loaded.get("S").unwrap().check_invariants().unwrap();
    loaded.get("T").unwrap().check_invariants().unwrap();

    // The reloaded catalog must keep evolving correctly.
    let cods2 = Cods::with_catalog(loaded);
    cods2
        .execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
    assert_eq!(cods2.table("R").unwrap().rows(), 2_000);

    std::fs::remove_file(&path).ok();
}

/// Mixed-encoding catalogs persist: RLE columns round-trip through disk in
/// their own segment directories and keep evolving after reload.
#[test]
fn rle_encoded_catalog_round_trips_through_disk() {
    use cods_storage::Encoding;
    let dir = std::env::temp_dir().join("cods_it_persist_rle");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rle.catalog");

    let cods = Cods::new();
    let base = cods_workload::generate_table("R", &GenConfig::sweep_point(2_000, 100));
    let clustered = base.cluster_by(&["entity"]).unwrap();
    let rle = clustered
        .with_column_encoding("entity", Encoding::Rle)
        .unwrap();
    let tuples = rle.tuple_multiset();
    cods.catalog().create(rle).unwrap();
    save_catalog(cods.catalog(), &path).unwrap();

    let loaded = read_catalog(&path).unwrap();
    let r = loaded.get("R").unwrap();
    r.check_invariants().unwrap();
    assert_eq!(r.tuple_multiset(), tuples);
    let entity = r.column_by_name("entity").unwrap();
    assert!(entity.is_uniform(Encoding::Rle));
    assert!(entity.segment_count() >= 1);

    // The reloaded RLE table keeps evolving at data level.
    let cods2 = Cods::with_catalog(loaded);
    cods2
        .execute(Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
        })
        .unwrap();
    assert!(cods2
        .table("T")
        .unwrap()
        .column_by_name("entity")
        .unwrap()
        .is_uniform(Encoding::Rle));
    std::fs::remove_file(&path).ok();
}

/// Zone maps and encoding pins survive a catalog round trip (the v4 format)
/// and keep driving pruned scans after reload.
#[test]
fn zones_and_pins_survive_catalog_round_trip() {
    use cods_query::Predicate;
    use cods_storage::Encoding;
    let dir = std::env::temp_dir().join("cods_it_persist_zones");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("zones.catalog");

    let cods = Cods::new();
    let base = cods_workload::generate_table("R", &GenConfig::sweep_point(3_000, 100));
    let clustered = base
        .cluster_by(&["entity"])
        .unwrap()
        .with_column_encoding_pinned("attr", Encoding::Bitmap)
        .unwrap();
    let zones_before: Vec<Vec<cods_storage::Zone>> = clustered
        .columns()
        .iter()
        .map(|c| c.zones().to_vec())
        .collect();
    cods.catalog().create(clustered).unwrap();
    save_catalog(cods.catalog(), &path).unwrap();

    let loaded = read_catalog(&path).unwrap();
    let r = loaded.get("R").unwrap();
    r.check_invariants().unwrap();
    for (col, before) in r.columns().iter().zip(&zones_before) {
        assert_eq!(col.zones(), before.as_slice(), "zones round-trip exactly");
    }
    assert!(r.column_by_name("attr").unwrap().encoding_pinned());
    assert!(!r.column_by_name("entity").unwrap().encoding_pinned());

    // Pruned and exhaustive scans agree on the reloaded table.
    let pred = Predicate::ge("entity", 20i64).and(Predicate::lt("entity", 25i64));
    assert_eq!(
        cods_query::bitmap_scan::predicate_mask(&r, &pred).unwrap(),
        cods_query::bitmap_scan::predicate_mask_unpruned(&r, &pred).unwrap()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_load_then_evolve() {
    use cods_storage::{load_str, LoadOptions, Schema, ValueType};
    let schema = Schema::build(
        &[
            ("employee", ValueType::Str),
            ("skill", ValueType::Str),
            ("address", ValueType::Str),
        ],
        &[],
    )
    .unwrap();
    let csv = "\
Jones,Typing,425 Grant Ave
Jones,Shorthand,425 Grant Ave
Roberts,Light Cleaning,747 Industrial Way
Ellis,Alchemy,747 Industrial Way
Jones,Whittling,425 Grant Ave
Ellis,Juggling,747 Industrial Way
Harrison,Light Cleaning,425 Grant Ave
";
    let table = load_str("R", &schema, csv, &LoadOptions::default()).unwrap();
    let cods = Cods::new();
    cods.catalog().create(table).unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
    })
    .unwrap();
    assert_eq!(cods.table("T").unwrap().rows(), 4);
}
