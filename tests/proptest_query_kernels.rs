//! Differential property tests of the vectorized query kernels: random
//! mixed-encoding tables with NULLs are run through the dictionary-native
//! group-by and the partition-wise hash join, and the results must be
//! byte-identical (group-by) or multiset-identical (join) to the row-at-a-
//! time oracles in `cods_query::{agg::aggregate, tuple::hash_join}`. Each
//! case also replays against a demand-paged copy starved by a tiny buffer-
//! cache budget, so multi-pass join partitioning and run-stream faulting
//! both get exercised. Float columns hold dyadic rationals only, so sums
//! are exact and byte-comparable regardless of accumulation order. Runs in
//! CI's differential proptest job at `PROPTEST_CASES=512`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cods_query::{
    aggregate, aggregate_table, aggregate_table_masked, join_collect, predicate_mask, tuple, AggOp,
    BuildSide, CmpOp, Predicate,
};
use cods_storage::persist::{read_table, save_table};
use cods_storage::{segment_cache, Encoding, Schema, Table, Value, ValueType};
use proptest::prelude::*;

/// A per-process-unique scratch file so parallel test binaries and
/// successive proptest cases never collide.
fn temp(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cods_proptest_kernels_{}_{tag}_{n}.tbl",
        std::process::id()
    ))
}

/// Fact table F(g, tag, k, f, v): two grouping columns (int and string),
/// a join key, a dyadic-rational float, and an int measure — every column
/// nullable. Rows are optionally sorted on `g` so RLE has long runs.
fn fact_table() -> impl Strategy<Value = Table> {
    (
        prop::collection::vec(
            ((0i64..6, 0u8..5, 0i64..20), (-64i64..64, 0i64..50, 0u8..32)),
            0usize..260,
        ),
        4u64..64,
        any::<bool>(),
    )
        .prop_map(|(trips, seg_rows, sorted)| {
            let schema = Schema::build(
                &[
                    ("g", ValueType::Int),
                    ("tag", ValueType::Str),
                    ("k", ValueType::Int),
                    ("f", ValueType::Float),
                    ("v", ValueType::Int),
                ],
                &[],
            )
            .unwrap();
            let mut rows: Vec<Vec<Value>> = trips
                .into_iter()
                .map(|((g, tag, k), (f, v, nulls))| {
                    let cell = |bit: u8, val: Value| {
                        if nulls & (1 << bit) == 0 {
                            val
                        } else {
                            Value::Null
                        }
                    };
                    vec![
                        cell(0, Value::int(g)),
                        cell(1, Value::str(format!("t{tag}"))),
                        cell(2, Value::int(k)),
                        // Eighths of small integers: exactly representable,
                        // and their sums are exact in any order.
                        cell(3, Value::float(f as f64 / 8.0)),
                        cell(4, Value::int(v)),
                    ]
                })
                .collect();
            if sorted {
                rows.sort_by(|a, b| a[0].cmp(&b[0]));
            }
            Table::from_rows_with_segment_rows("F", schema, &rows, seg_rows).unwrap()
        })
}

/// Dimension table D(k, m, label): join key (nullable, partially
/// overlapping F.k and with duplicates), a second key column for composite
/// joins, and a payload string.
fn dim_table() -> impl Strategy<Value = Table> {
    (
        prop::collection::vec((0i64..25, 0i64..6, 0u8..8, 0u8..4), 0usize..40),
        3u64..32,
    )
        .prop_map(|(trips, seg_rows)| {
            let schema = Schema::build(
                &[
                    ("k", ValueType::Int),
                    ("m", ValueType::Int),
                    ("label", ValueType::Str),
                ],
                &[],
            )
            .unwrap();
            let rows: Vec<Vec<Value>> = trips
                .into_iter()
                .map(|(k, m, label, null)| {
                    vec![
                        if null == 0 {
                            Value::Null
                        } else {
                            Value::int(k)
                        },
                        Value::int(m),
                        Value::str(format!("d{label}")),
                    ]
                })
                .collect();
            Table::from_rows_with_segment_rows("D", schema, &rows, seg_rows).unwrap()
        })
}

/// A random comparison or boolean combination over g / k / v, including
/// literals outside every value range and NULL literals.
fn pred() -> impl Strategy<Value = Predicate> {
    let cmp = (0usize..6, 0usize..3, -5i64..55, 0u8..12).prop_map(|(op, col, lit, null)| {
        let op = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][op];
        Predicate::Compare {
            column: ["g", "k", "v"][col].into(),
            op,
            literal: if null == 0 {
                Value::Null
            } else {
                Value::int(lit)
            },
        }
    });
    (prop::collection::vec(cmp, 1usize..4), 0usize..3).prop_map(|(cmps, shape)| {
        let mut it = cmps.into_iter();
        let first = it.next().unwrap();
        match shape {
            0 => first,
            1 => it.fold(first, |acc, c| acc.and(c)),
            _ => it.fold(first, |acc, c| acc.or(c)),
        }
    })
}

/// Applies one of the per-column / per-segment encoding assignments so
/// run-stream kernels see genuinely heterogeneous segment directories.
fn encode_variant(table: Table, enc: usize, pattern: u64) -> Table {
    fn mix_column(t: &Table, name: &str, pattern: u64) -> Table {
        let mut out = t.clone();
        let segs = out.column_by_name(name).unwrap().segment_count();
        for i in 0..segs {
            if pattern & (1 << (i % 64)) != 0 {
                out = out
                    .with_column_segment_range_encoding(name, Encoding::Rle, i..i + 1)
                    .unwrap();
            }
        }
        out
    }
    match enc {
        0 => table,
        1 => table.recoded(Encoding::Rle).unwrap(),
        2 => table.with_column_encoding("g", Encoding::Rle).unwrap(),
        3 => mix_column(&table, "k", pattern),
        _ => mix_column(
            &mix_column(&table, "g", pattern),
            "v",
            pattern.rotate_left(23),
        ),
    }
}

/// Saves `t` and reopens it demand-paged (metadata only — payloads fault
/// in through the starved cache). The caller removes the file.
fn save_reopen(t: &Table, path: &PathBuf) -> Table {
    save_table(t, path).unwrap();
    let lazy = read_table(path).unwrap();
    let (resident, on_disk) = lazy.residency_counts();
    assert_eq!(resident, 0, "lazy open faulted payloads in");
    assert!(on_disk > 0 || t.rows() == 0);
    lazy
}

/// The grouping-column sets the group-by differential cycles through.
fn group_sets() -> [&'static [usize]; 4] {
    [&[0], &[1], &[0, 1], &[0, 1, 2]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The dictionary-native group-by kernel — packed-u64 or composite keys,
    // bitmap or RLE run streams, resident or cache-starved demand-paged —
    // returns byte-identical rows in byte-identical order to the row-at-a-
    // time `aggregate` oracle, with and without a pushed-down predicate
    // mask.
    #[test]
    fn columnar_group_by_matches_the_row_oracle(
        table in fact_table(),
        p in pred(),
        enc in 0usize..5,
        pattern in any::<u64>(),
        group_set in 0usize..4,
        budget in 0u64..1500,
    ) {
        let oracle = encode_variant(table, enc, pattern);
        let group_by = group_sets()[group_set];
        let aggs = [
            (AggOp::Count, 4, ValueType::Int),
            (AggOp::CountDistinct, 1, ValueType::Str),
            (AggOp::Sum, 4, ValueType::Int),
            (AggOp::Sum, 3, ValueType::Float),
            (AggOp::Min, 1, ValueType::Str),
            (AggOp::Max, 4, ValueType::Int),
        ];
        let rows = oracle.to_rows();

        // Row oracle: unmasked, and masked by per-row predicate evaluation
        // (independent of the bitmap-scan machinery).
        let want_all = aggregate(&rows, group_by, &aggs).unwrap();
        let compiled = p.compile(oracle.schema()).unwrap();
        let kept: Vec<Vec<Value>> = rows
            .iter()
            .filter(|r| compiled.eval(r))
            .cloned()
            .collect();
        let want_masked = aggregate(&kept, group_by, &aggs).unwrap();

        // Resident columnar kernel.
        prop_assert_eq!(&aggregate_table(&oracle, group_by, &aggs).unwrap(), &want_all);
        let mask = predicate_mask(&oracle, &p).unwrap();
        prop_assert_eq!(
            &aggregate_table_masked(&oracle, group_by, &aggs, Some(&mask)).unwrap(),
            &want_masked
        );

        // Demand-paged copy under a starved budget: every run stream
        // faults through the cache mid-aggregation.
        let path = temp("groupby");
        let lazy = save_reopen(&oracle, &path);
        segment_cache().set_budget(budget);
        prop_assert_eq!(&aggregate_table(&lazy, group_by, &aggs).unwrap(), &want_all);
        let lazy_mask = predicate_mask(&lazy, &p).unwrap();
        prop_assert_eq!(&lazy_mask, &mask);
        prop_assert_eq!(
            &aggregate_table_masked(&lazy, group_by, &aggs, Some(&lazy_mask)).unwrap(),
            &want_masked
        );
        segment_cache().set_budget(u64::MAX);
        std::fs::remove_file(&path).ok();
    }

    // The partition-wise hash join — single- and multi-pass, single and
    // composite keys, either build side — produces exactly the multiset of
    // rows the nested-loop `tuple::hash_join` oracle produces (NULL keys
    // join; dangling keys don't), and reproduces its row order verbatim on
    // the single-pass build-right plan.
    #[test]
    fn partitioned_hash_join_matches_the_row_oracle(
        fact in fact_table(),
        dim in dim_table(),
        enc in 0usize..5,
        pattern in any::<u64>(),
        composite in any::<bool>(),
        budget in 0u64..1500,
    ) {
        let left = encode_variant(fact, enc, pattern);
        let (lk, rk): (&[usize], &[usize]) = if composite {
            (&[2, 0], &[0, 1])
        } else {
            (&[2], &[0])
        };
        let want = tuple::hash_join(&left.to_rows(), &dim.to_rows(), lk, rk);
        let mut want_sorted = want.clone();
        want_sorted.sort();

        // Resident, default budget: the planner sees the full cache budget.
        let (l, r) = (Arc::new(left.clone()), Arc::new(dim.clone()));
        let (plan, got) = join_collect(&l, &r, lk, rk);
        if plan.partitions == 1 && plan.build == BuildSide::Right {
            prop_assert_eq!(&got, &want);
        }
        let mut got_sorted = got;
        got_sorted.sort();
        prop_assert_eq!(&got_sorted, &want_sorted);

        // Demand-paged copies under a starved budget: the byte guard now
        // forces multi-pass partitioning, and probe/build segments fault
        // through the cache between passes.
        let (lp, rp) = (temp("join_l"), temp("join_r"));
        let lazy_l = Arc::new(save_reopen(&left, &lp));
        let lazy_r = Arc::new(save_reopen(&dim, &rp));
        segment_cache().set_budget(budget);
        let (lazy_plan, lazy_got) = join_collect(&lazy_l, &lazy_r, lk, rk);
        prop_assert!(lazy_plan.partitions >= 1);
        let mut lazy_sorted = lazy_got;
        lazy_sorted.sort();
        prop_assert_eq!(&lazy_sorted, &want_sorted);
        segment_cache().set_budget(u64::MAX);
        std::fs::remove_file(&lp).ok();
        std::fs::remove_file(&rp).ok();
    }
}
