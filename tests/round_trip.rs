//! Cross-crate round-trip tests: decompose ∘ merge ≡ identity and
//! partition ∘ union ≡ identity, at several scales and cardinalities,
//! through the full platform stack.

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_query::Predicate;
use cods_workload::GenConfig;

fn platform_with(rows: u64, distinct: u64) -> Cods {
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(rows, distinct),
        ))
        .unwrap();
    cods
}

#[test]
fn decompose_merge_identity_across_scales() {
    for (rows, distinct) in [
        (100u64, 10u64),
        (1_000, 100),
        (20_000, 500),
        (20_000, 20_000),
    ] {
        let cods = platform_with(rows, distinct);
        let original = cods.table("R").unwrap();
        let original_tuples = original.tuple_multiset();
        cods.execute(Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
        })
        .unwrap();
        assert_eq!(cods.table("T").unwrap().rows(), distinct);
        cods.table("S").unwrap().check_invariants().unwrap();
        cods.table("T").unwrap().check_invariants().unwrap();
        cods.table("T").unwrap().verify_key().unwrap();
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
        assert_eq!(
            cods.table("R").unwrap().tuple_multiset(),
            original_tuples,
            "round trip failed at rows={rows} distinct={distinct}"
        );
    }
}

#[test]
fn repeated_evolution_cycles_are_stable() {
    let cods = platform_with(5_000, 200);
    let original = cods.table("R").unwrap().tuple_multiset();
    for cycle in 0..5 {
        cods.execute(Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
        })
        .unwrap();
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
        cods.execute(Smo::DropTable { name: "S".into() }).unwrap();
        cods.execute(Smo::DropTable { name: "T".into() }).unwrap();
        assert_eq!(
            cods.table("R").unwrap().tuple_multiset(),
            original,
            "cycle {cycle} lost data"
        );
    }
}

#[test]
fn partition_union_identity() {
    for threshold in [0i64, 50, 199, 1_000_000] {
        let cods = platform_with(3_000, 200);
        let original = cods.table("R").unwrap().tuple_multiset();
        cods.execute(Smo::PartitionTable {
            input: "R".into(),
            predicate: Predicate::lt("entity", threshold),
            satisfying: "lo".into(),
            rest: "hi".into(),
        })
        .unwrap();
        let lo = cods.table("lo").unwrap().rows();
        let hi = cods.table("hi").unwrap().rows();
        assert_eq!(lo + hi, 3_000);
        cods.execute(Smo::UnionTables {
            left: "lo".into(),
            right: "hi".into(),
            output: "R".into(),
            drop_inputs: true,
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);
    }
}

#[test]
fn general_merge_round_trip_on_duplicated_keys() {
    // When the "changed" table is not unique on the join column, Auto must
    // route to general mergence and still be correct against a naive join.
    use cods_storage::{Schema, Table, Value, ValueType};
    let a = Table::from_rows(
        "A",
        Schema::build(&[("k", ValueType::Int), ("x", ValueType::Int)], &[]).unwrap(),
        &(0..200)
            .map(|i| vec![Value::int(i % 10), Value::int(i)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let b = Table::from_rows(
        "B",
        Schema::build(&[("k", ValueType::Int), ("y", ValueType::Int)], &[]).unwrap(),
        &(0..60)
            .map(|i| vec![Value::int(i % 12), Value::int(1000 + i)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let out = cods::merge(&a, &b, "AB", &MergeStrategy::Auto).unwrap();
    assert_eq!(out.strategy, cods::UsedStrategy::General);
    // Naive nested-loop oracle.
    let mut expected = std::collections::HashMap::new();
    for ra in a.to_rows() {
        for rb in b.to_rows() {
            if ra[0] == rb[0] {
                *expected
                    .entry(vec![ra[0].clone(), ra[1].clone(), rb[1].clone()])
                    .or_insert(0u64) += 1;
            }
        }
    }
    assert_eq!(out.output.tuple_multiset(), expected);
}
