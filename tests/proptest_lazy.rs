//! Differential property tests of the demand-paged segment directory: a
//! random mixed-encoding table saved in format v6 and reopened lazily —
//! then starved by a tiny buffer-cache budget so segments page in and out
//! on every touch — must be indistinguishable from the fully-resident
//! original. Scan masks are byte-identical, row images match, and SMO
//! results agree after compaction and after committed evolution plans.
//! Runs in CI's differential proptest job at `PROPTEST_CASES=512`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cods::{Cods, Smo};
use cods_query::bitmap_scan::{predicate_mask, predicate_mask_unpruned};
use cods_query::{CmpOp, Predicate};
use cods_storage::persist::{read_catalog, read_table, save_catalog, save_table};
use cods_storage::{segment_cache, Catalog, Encoding, Schema, Table, Value, ValueType};
use proptest::prelude::*;

/// A per-process-unique scratch file so parallel test binaries and
/// successive proptest cases never collide.
fn temp(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cods_proptest_lazy_{}_{tag}_{n}.tbl",
        std::process::id()
    ))
}

/// Random table R(k, v): clustered-ish k so zones have something to prune,
/// scattered v with NULLs, random segment size.
fn base_table() -> impl Strategy<Value = Table> {
    (
        prop::collection::vec((0i64..40, 0i64..12, 0u8..16), 1usize..300),
        4u64..64,
    )
        .prop_map(|(trips, seg_rows)| {
            let schema =
                Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
            let mut rows: Vec<Vec<Value>> = trips
                .into_iter()
                .map(|(k, v, null)| {
                    vec![
                        Value::int(k),
                        if null == 0 {
                            Value::Null
                        } else {
                            Value::int(v)
                        },
                    ]
                })
                .collect();
            rows.sort_by(|a, b| a[0].cmp(&b[0]));
            Table::from_rows_with_segment_rows("R", schema, &rows, seg_rows).unwrap()
        })
}

/// A random comparison or boolean combination over k and v, including
/// literals outside every value range and NULL literals.
fn pred() -> impl Strategy<Value = Predicate> {
    let cmp = (0usize..6, 0usize..2, -5i64..50, 0u8..12).prop_map(|(op, col, lit, null)| {
        let op = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][op];
        Predicate::Compare {
            column: if col == 0 { "k" } else { "v" }.into(),
            op,
            literal: if null == 0 {
                Value::Null
            } else {
                Value::int(lit)
            },
        }
    });
    (prop::collection::vec(cmp, 1usize..4), 0usize..3).prop_map(|(cmps, shape)| {
        let mut it = cmps.into_iter();
        let first = it.next().unwrap();
        match shape {
            0 => first,
            1 => it.fold(first, |acc, c| acc.and(c)),
            _ => it.fold(first, |acc, c| acc.or(c)),
        }
    })
}

/// Applies one of the per-column / per-segment encoding assignments so the
/// saved directory is genuinely heterogeneous.
fn encode_variant(table: Table, enc: usize, pattern: u64) -> Table {
    fn mix_column(t: &Table, name: &str, pattern: u64) -> Table {
        let mut out = t.clone();
        let segs = out.column_by_name(name).unwrap().segment_count();
        for i in 0..segs {
            if pattern & (1 << (i % 64)) != 0 {
                out = out
                    .with_column_segment_range_encoding(name, Encoding::Rle, i..i + 1)
                    .unwrap();
            }
        }
        out
    }
    match enc {
        0 => table,
        1 => table.recoded(Encoding::Rle).unwrap(),
        2 => table.with_column_encoding("k", Encoding::Rle).unwrap(),
        3 => table.with_column_encoding("v", Encoding::Rle).unwrap(),
        4 => mix_column(&table, "k", pattern),
        _ => mix_column(
            &mix_column(&table, "k", pattern),
            "v",
            pattern.rotate_left(23),
        ),
    }
}

/// Saves `t` in format v6 and reopens it demand-paged, checking that the
/// reopen really was metadata-only. The caller owns (and removes) the file.
fn save_reopen(t: &Table, path: &PathBuf) -> Table {
    save_table(t, path).unwrap();
    let lazy = read_table(path).unwrap();
    let (resident, on_disk) = lazy.residency_counts();
    assert_eq!(resident, 0, "lazy open faulted payloads in");
    assert!(on_disk > 0 || t.rows() == 0);
    lazy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Scans, row images, invariants, and compaction over a lazily opened
    // table match the fully-resident oracle bit for bit, even when the
    // budget forces eviction churn between (and during) operations.
    #[test]
    fn lazy_scans_match_the_resident_oracle(
        table in base_table(),
        p in pred(),
        enc in 0usize..6,
        pattern in proptest::prelude::any::<u64>(),
        budget in 0u64..1500,
    ) {
        let oracle = encode_variant(table, enc, pattern);
        let path = temp("scan");
        let lazy = save_reopen(&oracle, &path);

        // Starve the cache: a fresh (never-saved) oracle is unevictable,
        // but the lazy table's segments now page in and out constantly.
        segment_cache().set_budget(budget);

        // Pruned scans run the zone and present-id metadata tiers without
        // faulting; both pruned and exhaustive masks must agree with the
        // resident table.
        prop_assert_eq!(
            predicate_mask(&lazy, &p).unwrap(),
            predicate_mask(&oracle, &p).unwrap()
        );
        prop_assert_eq!(
            predicate_mask_unpruned(&lazy, &p).unwrap(),
            predicate_mask_unpruned(&oracle, &p).unwrap()
        );
        prop_assert_eq!(lazy.to_rows(), oracle.to_rows());
        lazy.check_invariants().unwrap();

        // Post-compaction: fragment the lazy directory through a
        // slice/concat chain, then compact — every segment is faulted
        // through the starved cache while being rewritten.
        let rows = oracle.rows();
        if rows >= 8 {
            let half = rows / 2;
            let cols: Vec<_> = lazy
                .columns()
                .iter()
                .map(|c| {
                    let acc = c.slice(0, half).concat(&c.slice(half, rows)).unwrap();
                    std::sync::Arc::new(acc.compacted())
                })
                .collect();
            let rebuilt = Table::new("C", oracle.schema().clone(), cols).unwrap();
            rebuilt.check_invariants().unwrap();
            prop_assert_eq!(rebuilt.to_rows(), oracle.to_rows());
            prop_assert_eq!(
                predicate_mask(&rebuilt, &p).unwrap(),
                predicate_mask(&oracle, &p).unwrap()
            );
        }

        segment_cache().set_budget(u64::MAX);
        std::fs::remove_file(&path).ok();
    }

    // A committed evolution plan (partition + union through the
    // validate-then-commit pipeline) over a lazily opened catalog produces
    // the same tables as over a fully-resident one, and re-saving the
    // evolved lazy catalog (the append path) round-trips.
    #[test]
    fn lazy_plan_commits_match_the_resident_oracle(
        table in base_table(),
        enc in 0usize..6,
        pattern in proptest::prelude::any::<u64>(),
        threshold in 0i64..40,
        budget in 0u64..1500,
    ) {
        let oracle = encode_variant(table, enc, pattern);
        let path = temp("plan");

        let resident_cat = Catalog::new();
        resident_cat.create(oracle.clone()).unwrap();
        save_catalog(&resident_cat, &path).unwrap();
        let lazy_cat = read_catalog(&path).unwrap();

        segment_cache().set_budget(budget);

        let smos = || vec![
            Smo::PartitionTable {
                input: "R".into(),
                predicate: Predicate::lt("k", threshold),
                satisfying: "lo".into(),
                rest: "hi".into(),
            },
            Smo::UnionTables {
                left: "lo".into(),
                right: "hi".into(),
                output: "back".into(),
                drop_inputs: true,
            },
        ];
        let resident = Cods::with_catalog(resident_cat);
        resident.plan(smos()).unwrap().execute().unwrap();
        let lazy = Cods::with_catalog(lazy_cat);
        lazy.plan(smos()).unwrap().execute().unwrap();

        let want = resident.table("back").unwrap();
        let got = lazy.table("back").unwrap();
        got.check_invariants().unwrap();
        prop_assert_eq!(got.to_rows(), want.to_rows());

        // Append-save the evolved catalog over the same file and reopen:
        // the plan's outputs persist and still match the oracle.
        save_catalog(lazy.catalog(), &path).unwrap();
        let reread = read_catalog(&path).unwrap();
        prop_assert_eq!(reread.get("back").unwrap().to_rows(), want.to_rows());

        segment_cache().set_budget(u64::MAX);
        std::fs::remove_file(&path).ok();
    }
}
