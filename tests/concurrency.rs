//! Concurrency: the catalog is a shared, thread-safe namespace of immutable
//! tables — readers running during evolution always see a consistent
//! snapshot (either the pre- or the post-evolution tables, never a torn
//! state).

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_workload::GenConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn readers_see_consistent_snapshots_during_evolution() {
    let cods = Arc::new(Cods::new());
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(20_000, 500),
        ))
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    // Readers hammer the catalog while the writer evolves repeatedly.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let cods = Arc::clone(&cods);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Whatever exists must be internally consistent.
                for name in cods.catalog().table_names() {
                    if let Ok(t) = cods.table(&name) {
                        t.check_invariants().unwrap();
                        observed += t.rows();
                    }
                }
            }
            observed
        }));
    }

    for cycle in 0..5 {
        cods.execute(Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
        })
        .unwrap();
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
        cods.execute(Smo::DropTable { name: "S".into() }).unwrap();
        cods.execute(Smo::DropTable { name: "T".into() }).unwrap();
        assert_eq!(cods.table("R").unwrap().rows(), 20_000, "cycle {cycle}");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let observed = r.join().expect("reader panicked");
        assert!(observed > 0, "reader never saw data");
    }
}

#[test]
fn snapshots_outlive_drops() {
    // A snapshot taken before DROP TABLE stays fully readable (immutability
    // + Arc): evolution never invalidates readers.
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(1_000, 50),
        ))
        .unwrap();
    let snapshot = cods.table("R").unwrap();
    cods.execute(Smo::DropTable { name: "R".into() }).unwrap();
    assert!(cods.table("R").is_err());
    snapshot.check_invariants().unwrap();
    assert_eq!(snapshot.rows(), 1_000);
    assert_eq!(snapshot.to_rows().len(), 1_000);
}
