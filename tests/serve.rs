//! Serving-layer integration: a real TCP server, concurrent clients,
//! snapshot-consistent streaming while evolution plans commit, and typed
//! admission rejection under load — the acceptance scenarios of the
//! network serving layer.

use cods::Cods;
use cods_query::Predicate;
use cods_server::{Client, ClientError, Server, ServerConfig};
use cods_storage::{Schema, Table, Value, ValueType};
use std::sync::Arc;
use std::time::Duration;

/// A table big enough to stream in several segment-sized batches.
fn platform(rows: usize, seg: u64) -> Arc<Cods> {
    let cods = Cods::new();
    let schema = Schema::build(
        &[
            ("k", ValueType::Int),
            ("grp", ValueType::Int),
            ("v", ValueType::Str),
        ],
        &[],
    )
    .unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::int(i as i64),
                Value::int((i % 7) as i64),
                Value::str(format!("payload-{}", i % 13)),
            ]
        })
        .collect();
    cods.catalog()
        .create(Table::from_rows_with_segment_rows("t", schema, &data, seg).unwrap())
        .unwrap();
    Arc::new(cods)
}

fn expected_rows(cods: &Cods, pred: &Predicate) -> Vec<Vec<Value>> {
    let t = cods.table("t").unwrap();
    cods_query::filter_table(&t, pred).unwrap().to_rows()
}

#[test]
fn scan_pinned_before_evolution_commit_is_byte_identical() {
    let cods = platform(20_000, 1_024);
    let mut handle = Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default())
        .expect("bind ephemeral");
    let addr = handle.local_addr();
    let want = expected_rows(&cods, &Predicate::True);

    let mut scanner = Client::connect(addr).unwrap();
    let mut admin = Client::connect(addr).unwrap();
    let mut got: Vec<Vec<Value>> = Vec::new();
    let mut evolved = false;
    let summary = scanner
        .scan_with("t", Predicate::True, None, |_, rows| {
            got.extend(rows);
            if !evolved {
                evolved = true;
                // Mid-stream, a concurrent session commits an evolution
                // plan that decomposes the scanned table away.
                admin
                    .script("DECOMPOSE TABLE t INTO a (k, grp), b (k, v)")
                    .expect("evolution must commit during the scan");
            }
        })
        .expect("pinned scan survives the concurrent commit");

    // Byte-identical to the pinned snapshot, in several batches.
    assert!(evolved);
    assert_eq!(summary.rows, want.len() as u64);
    assert!(summary.batches > 1, "expected a multi-batch stream");
    assert_eq!(got, want);

    // The scanning session still reads the old version; a refresh (or a
    // fresh session) sees the post-evolution catalog.
    let (rows, selected, _) = scanner.mask("t", Predicate::True).unwrap();
    assert_eq!((rows, selected), (20_000, 20_000));
    scanner.refresh().unwrap();
    match scanner.mask("t", Predicate::True) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, cods_server::error_code::NOT_FOUND);
        }
        other => panic!("expected NOT_FOUND after refresh, got {other:?}"),
    }
    assert_eq!(scanner.mask("a", Predicate::True).unwrap().0, 20_000);
    handle.shutdown();
}

#[test]
fn concurrent_scans_stay_consistent_while_plans_commit() {
    let cods = platform(12_000, 1_024);
    let mut handle = Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default())
        .expect("bind ephemeral");
    let addr = handle.local_addr();
    let pred = Predicate::lt("grp", 4i64);
    let want = Arc::new(expected_rows(&cods, &pred));

    // N clients scan the same predicate repeatedly while evolution churns
    // the catalog: every completed scan must be byte-identical to the
    // seed content (the churn never changes t's tuples), and sessions
    // pinned after the drop see a clean typed error — never torn frames.
    let n_clients = 4;
    let scanners: Vec<_> = (0..n_clients)
        .map(|_| {
            let want = Arc::clone(&want);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut completed = 0u32;
                for _ in 0..5 {
                    match client.scan_collect("t", Predicate::lt("grp", 4i64), None) {
                        Ok((summary, rows)) => {
                            assert_eq!(rows, *want, "scan diverged from its snapshot");
                            assert_eq!(summary.rows, want.len() as u64);
                            completed += 1;
                        }
                        Err(ClientError::Server { code, .. }) => {
                            // Session pinned after the table moved away.
                            assert_eq!(code, cods_server::error_code::NOT_FOUND);
                            client.refresh().unwrap();
                        }
                        Err(e) => panic!("unexpected failure: {e}"),
                    }
                }
                completed
            })
        })
        .collect();

    // Churn: rename away and back, repeatedly — tuple content invariant.
    let mut admin = Client::connect(addr).unwrap();
    for _ in 0..6 {
        admin.script("RENAME TABLE t TO t_tmp").unwrap();
        admin.script("RENAME TABLE t_tmp TO t").unwrap();
    }

    let completed: u32 = scanners.into_iter().map(|s| s.join().unwrap()).sum();
    assert!(completed > 0, "at least some scans must complete");
    handle.shutdown();
}

#[test]
fn admission_cap_rejects_typed_and_nothing_hangs() {
    let cods = platform(2_000, 512);
    let k = 2u64; // execution slots
    let m = 3u64; // clients beyond capacity
    let config = ServerConfig {
        max_in_flight: k,
        max_queued: 0,
        debug_hold: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    };
    let mut handle = Server::bind("127.0.0.1:0", Arc::clone(&cods), config).unwrap();
    let addr = handle.local_addr();

    // K clients occupy every slot (debug_hold keeps them executing).
    let holders: Vec<_> = (0..k)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.mask("t", Predicate::True).expect("admitted request")
            })
        })
        .collect();

    // Control plane bypasses admission: wait until both slots are taken.
    let mut observer = Client::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = observer.metrics().expect("metrics always answers");
        if metrics.in_flight == k {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never reached {k} in-flight requests"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // M more clients must bounce immediately with the typed rejection.
    for _ in 0..m {
        let mut c = Client::connect(addr).unwrap();
        match c.mask("t", Predicate::True) {
            Err(ClientError::Overloaded { in_flight, .. }) => assert_eq!(in_flight, k),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The connection survives rejection: the control plane still
        // answers and a later retry would be possible.
        c.ping().unwrap();
    }

    // The admitted requests complete normally once their hold expires.
    for h in holders {
        let (rows, selected, _) = h.join().unwrap();
        assert_eq!((rows, selected), (2_000, 2_000));
    }
    let metrics = observer.metrics().unwrap();
    assert_eq!(metrics.rejected_total, m);
    assert_eq!(metrics.admitted_total, k);
    assert_eq!(metrics.in_flight, 0);
    handle.shutdown();
}

#[test]
fn hostile_bytes_are_contained_to_their_connection() {
    let cods = platform(500, 256);
    let mut handle =
        Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // A peer that writes garbage gets dropped without taking the server.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05])
            .unwrap();
        raw.flush().unwrap();
        // Server replies (preamble + hello + error) then closes; just
        // confirm the connection ends rather than hanging.
        let mut drain = Vec::new();
        use std::io::Read;
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let _ = raw.read_to_end(&mut drain);
    }

    // A peer that connects and immediately leaves (clean EOF) is fine too.
    drop(std::net::TcpStream::connect(addr).unwrap());

    // Real clients still get full service afterwards.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let (_, selected, _) = client.mask("t", Predicate::True).unwrap();
    assert_eq!(selected, 500);
    handle.shutdown();
}

#[test]
fn idle_connections_are_evicted_without_disturbing_healthy_sessions() {
    let cods = platform(500, 256);
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let mut handle = Server::bind("127.0.0.1:0", Arc::clone(&cods), config).unwrap();
    let addr = handle.local_addr();

    // A client that handshakes, issues one request, then goes silent.
    let mut lazy = Client::connect(addr).unwrap();
    lazy.ping().unwrap();

    // A healthy session keeps talking (each poll resets its own idle
    // clock) until the server reports the eviction.
    let mut observer = Client::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = observer.metrics().unwrap();
        if metrics.idle_evicted >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle connection was never evicted"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The evicted peer finds its connection closed (a typed TIMEOUT
    // farewell or a dead socket, depending on when it looks)...
    assert!(lazy.ping().is_err(), "evicted connection must not answer");

    // ...while the healthy session still gets full service.
    let (rows, selected, _) = observer.mask("t", Predicate::True).unwrap();
    assert_eq!((rows, selected), (500, 500));
    handle.shutdown();
}

#[test]
fn server_death_mid_scan_surfaces_typed_torn_stream() {
    let cods = platform(20_000, 1_024);
    let mut handle =
        Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // Kill the server from inside the stream callback: the first batch
    // has arrived intact, then every socket is shut down mid-stream.
    let mut scanner = Client::connect(addr).unwrap();
    let mut delivered = 0u64;
    let result = scanner.scan_with("t", Predicate::True, None, |_, rows| {
        delivered += rows.len() as u64;
        handle.shutdown();
    });

    match result {
        Err(ClientError::TornStream { rows_seen }) => {
            assert_eq!(rows_seen, delivered, "rows_seen counts delivered rows");
            assert!(rows_seen > 0, "the kill landed after the first batch");
            assert!(rows_seen < 20_000, "the stream must not have completed");
            let msg = ClientError::TornStream { rows_seen }.to_string();
            assert!(msg.contains(&rows_seen.to_string()));
            assert!(msg.contains("torn"));
        }
        other => panic!("expected TornStream, got {other:?}"),
    }
}

#[test]
fn aggregation_over_the_wire_matches_local_execution() {
    let cods = platform(5_000, 512);
    let mut handle =
        Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let (cols, rows) = client
        .agg(
            "t",
            Predicate::lt("grp", 3i64),
            vec!["grp".into()],
            vec![
                (cods_query::AggOp::Count, "k".into()),
                (cods_query::AggOp::Max, "k".into()),
            ],
        )
        .unwrap();
    assert_eq!(cols.len(), 3);
    assert_eq!(rows.len(), 3, "groups 0, 1, 2 survive the filter");

    // Cross-check against local columnar aggregation.
    let t = cods.table("t").unwrap();
    let filtered = cods_query::filter_table(&t, &Predicate::lt("grp", 3i64)).unwrap();
    let local = cods_query::aggregate_table(
        &filtered,
        &[1],
        &[
            (cods_query::AggOp::Count, 0, ValueType::Int),
            (cods_query::AggOp::Max, 0, ValueType::Int),
        ],
    )
    .unwrap();
    assert_eq!(rows, local);
    handle.shutdown();
}

#[test]
fn chunked_group_by_streams_large_group_counts_in_batches() {
    let cods = platform(10_000, 1_024);
    let mut handle =
        Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Group on the unique key: 10_000 groups, more than one 4096-row
    // reply frame — the chunked GroupBy stream must reassemble exactly.
    let (cols, rows) = client
        .group_by(
            "t",
            Predicate::True,
            vec!["k".into()],
            vec![(cods_query::AggOp::Count, "v".into())],
        )
        .unwrap();
    assert_eq!(cols.len(), 2);
    assert_eq!(rows.len(), 10_000);

    let t = cods.table("t").unwrap();
    let local =
        cods_query::aggregate_table(&t, &[0], &[(cods_query::AggOp::Count, 2, ValueType::Str)])
            .unwrap();
    assert_eq!(rows, local);

    // The filtered variant matches Agg (single frame) bit for bit.
    let pred = Predicate::lt("grp", 2i64);
    let spec = vec![(cods_query::AggOp::CountDistinct, "v".into())];
    let via_agg = client
        .agg("t", pred.clone(), vec!["grp".into()], spec.clone())
        .unwrap();
    let via_group_by = client
        .group_by("t", pred, vec!["grp".into()], spec)
        .unwrap();
    assert_eq!(via_agg, via_group_by);
    handle.shutdown();
}

#[test]
fn join_streams_over_the_wire_with_verified_totals() {
    let cods = platform(5_000, 512);
    // A dimension table keyed by grp, including a key no fact row has.
    let dim_schema =
        Schema::build(&[("grp", ValueType::Int), ("label", ValueType::Str)], &[]).unwrap();
    let dim_rows: Vec<Vec<Value>> = (0..8)
        .map(|g| vec![Value::int(g), Value::str(format!("group-{g}"))])
        .collect();
    cods.catalog()
        .create(Table::from_rows_with_segment_rows("dim", dim_schema, &dim_rows, 4).unwrap())
        .unwrap();
    let mut handle =
        Server::bind("127.0.0.1:0", Arc::clone(&cods), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let mut batch_count = 0u64;
    let mut got: Vec<Vec<Value>> = Vec::new();
    let summary = client
        .join_with(
            "t",
            "dim",
            vec!["grp".into()],
            vec!["grp".into()],
            |_, rows| {
                batch_count += 1;
                got.extend(rows);
            },
        )
        .unwrap();
    // Every fact row matches exactly one dimension row; drain_stream has
    // already verified the Done totals against what actually arrived.
    assert_eq!(summary.rows, 5_000);
    assert_eq!(summary.total_rows, 5_000, "summary resolves the sentinel");
    assert_eq!(summary.batches, batch_count);
    assert!(summary.batches > 1, "expected a multi-batch join stream");
    assert_eq!(got.len(), 5_000);

    // Multiset-identical to the local row oracle.
    let t = cods.table("t").unwrap();
    let dim = cods.table("dim").unwrap();
    let mut local = cods_query::tuple::hash_join(&t.to_rows(), &dim.to_rows(), &[1], &[0]);
    local.sort();
    got.sort();
    assert_eq!(got, local);

    // Unknown tables and mismatched key lists answer with typed errors,
    // not dead connections.
    let err = client
        .join("t", "nope", vec!["grp".into()], vec!["grp".into()])
        .unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err:?}");
    let err = client
        .join("t", "dim", vec!["grp".into()], vec![])
        .unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err:?}");
    client.ping().expect("connection survives typed errors");
    handle.shutdown();
}
