//! Thread-count-parameterized smoke for the vectorized query kernels.
//!
//! The kernels size their segment fan-out from `CODS_QUERY_THREADS` (read
//! once per process), so CI runs this binary twice — `CODS_QUERY_THREADS=1`
//! for the serial path and `=2` for the fan-out path — and the results must
//! be byte-identical to the row-at-a-time oracles either way, even on a
//! 1-core container where the N>1 tasks just interleave on one worker.

use std::sync::Arc;

use cods_query::{
    aggregate, aggregate_table, aggregate_table_masked, join_collect, predicate_mask, tuple, AggOp,
    Predicate,
};
use cods_storage::{Schema, Table, Value, ValueType};

const ROWS: i64 = 60_000;
const SEG_ROWS: u64 = 2_048;

fn fact() -> Arc<Table> {
    let schema = Schema::build(
        &[
            ("g", ValueType::Int),
            ("k", ValueType::Int),
            ("v", ValueType::Int),
        ],
        &[],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::int(i % 11),
                if i % 97 == 0 {
                    Value::Null
                } else {
                    Value::int(i % 31)
                },
                Value::int(i % 13),
            ]
        })
        .collect();
    Arc::new(Table::from_rows_with_segment_rows("F", schema, &rows, SEG_ROWS).unwrap())
}

fn dim() -> Arc<Table> {
    let schema = Schema::build(&[("k", ValueType::Int), ("label", ValueType::Str)], &[]).unwrap();
    let rows: Vec<Vec<Value>> = (0..40)
        .map(|i| {
            vec![
                if i == 39 { Value::Null } else { Value::int(i) },
                Value::str(format!("label-{i}")),
            ]
        })
        .collect();
    Arc::new(Table::from_rows_with_segment_rows("D", schema, &rows, 8).unwrap())
}

#[test]
fn kernels_match_oracles_at_the_configured_thread_count() {
    let threads = std::env::var("CODS_QUERY_THREADS").unwrap_or_else(|_| "default".into());
    println!("thread-scaling smoke: CODS_QUERY_THREADS={threads}, rows={ROWS}");

    let fact = fact();
    let dim = dim();
    let rows = fact.to_rows();

    let group_by = [0usize];
    let aggs = [
        (AggOp::Count, 2, ValueType::Int),
        (AggOp::Sum, 2, ValueType::Int),
        (AggOp::Max, 1, ValueType::Int),
    ];
    let want = aggregate(&rows, &group_by, &aggs).unwrap();
    assert_eq!(
        aggregate_table(&fact, &group_by, &aggs).unwrap(),
        want,
        "group-by fan-out diverged from the row oracle"
    );

    let pred = Predicate::lt("v", 7i64);
    let compiled = pred.compile(fact.schema()).unwrap();
    let kept: Vec<Vec<Value>> = rows.iter().filter(|r| compiled.eval(r)).cloned().collect();
    let want_masked = aggregate(&kept, &group_by, &aggs).unwrap();
    let mask = predicate_mask(&fact, &pred).unwrap();
    assert_eq!(
        aggregate_table_masked(&fact, &group_by, &aggs, Some(&mask)).unwrap(),
        want_masked,
        "masked group-by fan-out diverged from the row oracle"
    );

    let mut want_join = tuple::hash_join(&rows, &dim.to_rows(), &[1], &[0]);
    let (plan, got) = join_collect(&fact, &dim, &[1], &[0]);
    let mut got = got;
    got.sort();
    want_join.sort();
    assert_eq!(
        got.len(),
        want_join.len(),
        "join cardinality diverged from the oracle"
    );
    assert_eq!(got, want_join, "join fan-out diverged from the row oracle");
    println!(
        "ok: {} groups, {} join rows, build={:?} partitions={}",
        want.len(),
        want_join.len(),
        plan.build,
        plan.partitions
    );
}
