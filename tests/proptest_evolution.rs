//! Property-based tests of the evolution operators over randomly generated
//! tables: losslessness, cross-engine agreement, algebraic identities, and
//! the bitmap-vs-RLE differential harness — every SMO must produce
//! bit-identical results whichever encoding holds the columns, segmented
//! or single-segment.

use cods::simple_ops::{partition_table, union_tables};
use cods::{decompose, merge, merge_general, DecomposeSpec, MergeStrategy};
use cods_query::Predicate;
use cods_storage::{Encoding, Schema, Table, Value, ValueType};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random table R(k, a, d) where k → d holds by construction.
fn fd_table() -> impl Strategy<Value = Table> {
    (1usize..12, 1usize..400).prop_flat_map(|(distinct, rows)| {
        prop::collection::vec((0..distinct, 0usize..8), rows).prop_map(move |pairs| {
            let schema = Schema::build(
                &[
                    ("k", ValueType::Int),
                    ("a", ValueType::Int),
                    ("d", ValueType::Int),
                ],
                &[],
            )
            .unwrap();
            let rows: Vec<Vec<Value>> = pairs
                .into_iter()
                .map(|(k, a)| {
                    vec![
                        Value::int(k as i64),
                        Value::int(a as i64),
                        // d = f(k): FD holds.
                        Value::int((k as i64) * 7 % 5),
                    ]
                })
                .collect();
            Table::from_rows("R", schema, &rows).unwrap()
        })
    })
}

/// Any random two-int-column table (no FD guarantee).
fn any_table(name: &'static str) -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..15, 0i64..10), 0usize..200).prop_map(move |pairs| {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = pairs
            .into_iter()
            .map(|(k, v)| vec![Value::int(k), Value::int(v)])
            .collect();
        Table::from_rows(name, schema, &rows).unwrap()
    })
}

fn multiset(t: &Table) -> HashMap<Vec<Value>, u64> {
    t.tuple_multiset()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decompose_then_merge_is_identity(table in fd_table()) {
        let spec = DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]);
        let out = decompose(&table, &spec).unwrap();
        out.unchanged.check_invariants().unwrap();
        out.changed.check_invariants().unwrap();
        out.changed.verify_key().unwrap();
        let merged = merge(&out.unchanged, &out.changed, "R2", &MergeStrategy::Auto).unwrap();
        prop_assert_eq!(multiset(&merged.output), multiset(&table));
    }

    #[test]
    fn changed_side_has_exactly_distinct_keys(table in fd_table()) {
        let spec = DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]);
        let out = decompose(&table, &spec).unwrap();
        let distinct = table.column_by_name("k").unwrap().distinct_count() as u64;
        prop_assert_eq!(out.changed.rows(), distinct);
        prop_assert_eq!(out.distinct_keys, distinct);
    }

    #[test]
    fn general_merge_matches_nested_loop_oracle(a in any_table("A"), b in any_table("B2")) {
        // Rename b's value column so schemas only share "k".
        let b = {
            let (renamed, _) = cods::simple_ops::rename_column(&b, "v", "w").unwrap();
            renamed
        };
        let out = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
        out.output.check_invariants().unwrap();
        let mut expected: HashMap<Vec<Value>, u64> = HashMap::new();
        for ra in a.to_rows() {
            for rb in b.to_rows() {
                if ra[0] == rb[0] {
                    *expected
                        .entry(vec![ra[0].clone(), ra[1].clone(), rb[1].clone()])
                        .or_insert(0) += 1;
                }
            }
        }
        prop_assert_eq!(multiset(&out.output), expected);
    }

    #[test]
    fn partition_union_is_identity(table in any_table("R"), threshold in 0i64..15) {
        let (sat, rest, _) =
            partition_table(&table, &Predicate::lt("k", threshold), "lo", "hi").unwrap();
        sat.check_invariants().unwrap();
        rest.check_invariants().unwrap();
        prop_assert_eq!(sat.rows() + rest.rows(), table.rows());
        let (back, _) = union_tables(&sat, &rest, "back").unwrap();
        prop_assert_eq!(multiset(&back), multiset(&table));
    }

    #[test]
    fn union_is_commutative_on_multisets(a in any_table("A"), b in any_table("B")) {
        let (ab, _) = union_tables(&a, &b, "ab").unwrap();
        let (ba, _) = union_tables(&b, &a, "ba").unwrap();
        prop_assert_eq!(multiset(&ab), multiset(&ba));
        prop_assert_eq!(ab.rows(), a.rows() + b.rows());
    }

    // ---- Bitmap vs RLE differential: SMOs agree across encodings ----

    #[test]
    fn decompose_merge_round_trip_matches_across_encodings(table in fd_table()) {
        let rle = table.recoded(Encoding::Rle).unwrap();
        rle.check_invariants().unwrap();
        let spec = DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]);
        let out_b = decompose(&table, &spec).unwrap();
        let out_r = decompose(&rle, &spec).unwrap();
        out_r.unchanged.check_invariants().unwrap();
        out_r.changed.check_invariants().unwrap();
        prop_assert_eq!(out_b.distinct_keys, out_r.distinct_keys);
        // Bit-identical outputs, and the RLE path stays RLE end to end.
        prop_assert_eq!(out_b.unchanged.to_rows(), out_r.unchanged.to_rows());
        prop_assert_eq!(out_b.changed.to_rows(), out_r.changed.to_rows());
        prop_assert!(out_r
            .changed
            .columns()
            .iter()
            .all(|c| c.is_uniform(Encoding::Rle)));
        prop_assert!(rle.shares_column_with(&out_r.unchanged, "k"));
        // Full round trip: DECOMPOSE → MERGE restores the input on both.
        let m_b = merge(&out_b.unchanged, &out_b.changed, "R2", &MergeStrategy::Auto).unwrap();
        let m_r = merge(&out_r.unchanged, &out_r.changed, "R2", &MergeStrategy::Auto).unwrap();
        m_r.output.check_invariants().unwrap();
        prop_assert_eq!(m_b.output.to_rows(), m_r.output.to_rows());
        prop_assert_eq!(multiset(&m_r.output), multiset(&table));
    }

    #[test]
    fn general_merge_matches_across_encodings(a in any_table("A"), b in any_table("B2")) {
        let b = {
            let (renamed, _) = cods::simple_ops::rename_column(&b, "v", "w").unwrap();
            renamed
        };
        // Pin the RLE side: fresh mergence output chunks go through the
        // per-segment chooser, and only a pin forces them to stay RLE.
        let ra = a.recoded_pinned(Encoding::Rle).unwrap();
        let rb = b.recoded_pinned(Encoding::Rle).unwrap();
        let out_b = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
        let out_r = merge_general(&ra, &rb, "AB", &["k".into()]).unwrap();
        out_r.output.check_invariants().unwrap();
        // The general mergence emits its output clustered by join value, so
        // even exact row order must agree across encodings.
        prop_assert_eq!(out_b.output.to_rows(), out_r.output.to_rows());
        prop_assert!(out_r
            .output
            .columns()
            .iter()
            .all(|c| c.is_uniform(Encoding::Rle)));
    }

    #[test]
    fn partition_and_union_match_across_encodings(table in any_table("R"), threshold in 0i64..15) {
        let rle = table.recoded(Encoding::Rle).unwrap();
        let pred = Predicate::lt("k", threshold);
        let (sat_b, rest_b, _) = partition_table(&table, &pred, "lo", "hi").unwrap();
        let (sat_r, rest_r, _) = partition_table(&rle, &pred, "lo", "hi").unwrap();
        sat_r.check_invariants().unwrap();
        rest_r.check_invariants().unwrap();
        prop_assert_eq!(sat_b.to_rows(), sat_r.to_rows());
        prop_assert_eq!(rest_b.to_rows(), rest_r.to_rows());
        let (back_b, _) = union_tables(&sat_b, &rest_b, "back").unwrap();
        let (back_r, _) = union_tables(&sat_r, &rest_r, "back").unwrap();
        back_r.check_invariants().unwrap();
        prop_assert_eq!(back_b.to_rows(), back_r.to_rows());
        prop_assert!(back_r
            .columns()
            .iter()
            .all(|c| c.is_uniform(Encoding::Rle)));
    }

    #[test]
    fn mixed_encoding_tables_evolve_consistently(table in fd_table()) {
        // One RLE column among bitmap columns: operators must handle
        // per-column encodings independently.
        let mixed = table.with_column_encoding("k", Encoding::Rle).unwrap();
        mixed.check_invariants().unwrap();
        let spec = DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]);
        let out_b = decompose(&table, &spec).unwrap();
        let out_m = decompose(&mixed, &spec).unwrap();
        prop_assert_eq!(out_b.changed.to_rows(), out_m.changed.to_rows());
        prop_assert!(out_m
            .changed
            .column_by_name("k")
            .unwrap()
            .is_uniform(Encoding::Rle));
        prop_assert!(out_m
            .changed
            .column_by_name("d")
            .unwrap()
            .is_uniform(Encoding::Bitmap));
        let m_b = merge(&out_b.unchanged, &out_b.changed, "R2", &MergeStrategy::Auto).unwrap();
        let m_m = merge(&out_m.unchanged, &out_m.changed, "R2", &MergeStrategy::Auto).unwrap();
        prop_assert_eq!(m_b.output.to_rows(), m_m.output.to_rows());
    }

    #[test]
    fn data_level_equals_query_level_decompose(table in fd_table()) {
        let spec = DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]);
        let out = decompose(&table, &spec).unwrap();
        let catalog = cods_storage::Catalog::new();
        catalog.create(table.renamed("R")).unwrap();
        cods_query::decompose_column_level(
            &catalog, "R", "S", &["k", "a"], "T", &["k", "d"], &["k"],
        )
        .unwrap();
        prop_assert_eq!(
            multiset(&catalog.get("S").unwrap()),
            multiset(&out.unchanged)
        );
        prop_assert_eq!(
            multiset(&catalog.get("T").unwrap()),
            multiset(&out.changed)
        );
    }
}
