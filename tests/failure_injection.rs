//! Failure injection: corrupted persistence artifacts, malformed loads and
//! invalid operator sequences must surface typed errors — never panics, and
//! never silently wrong data.

use cods::{Cods, DecomposeSpec, EvolutionError, MergeStrategy, Smo};
use cods_storage::persist::{
    decode_table, encode_table, read_catalog, read_table, save_catalog, save_table,
};
use cods_storage::{
    fault, load_str, wal, Catalog, Encoding, LoadOptions, Schema, StorageError, Table, Value,
    ValueType,
};
use cods_workload::{figure1, GenConfig};
use std::collections::HashMap;
use std::path::Path;

#[test]
fn corrupted_table_files_are_rejected() {
    let t = figure1::table_r();
    let bytes = encode_table(&t);

    // Truncation at any cut point must fail cleanly.
    for frac in [0.01, 0.3, 0.7, 0.99] {
        let cut = ((bytes.len() as f64) * frac) as usize;
        let sliced = bytes.slice(0..cut);
        assert!(decode_table(sliced).is_err(), "cut {frac} accepted");
    }

    // Flipping a byte either fails decode, surfaces as a typed corruption
    // error when the damaged segment faults in (v6 opens metadata-only, so
    // a payload flip is only seen on first touch), or round-trips to a
    // structurally valid table — it must never panic.
    for pos in [0usize, 4, 10, 60, bytes.len() / 2, bytes.len() - 2] {
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 0xFF;
        if let Ok(t) = decode_table(bytes::Bytes::from(corrupt)) {
            if t.check_invariants().is_ok() {
                t.to_rows();
            }
        }
    }
}

#[test]
fn unreadable_files_error() {
    assert!(matches!(
        read_table("/nonexistent/path/table.bin"),
        Err(StorageError::PersistError(_))
    ));
    let t = figure1::table_r();
    assert!(save_table(&t, "/nonexistent/dir/table.bin").is_err());
}

#[test]
fn malformed_csv_loads_fail_with_context() {
    let schema = Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap();
    for (text, needle) in [
        ("1,2\n3\n", "line 2"),
        ("1,2\nx,4\n", "line 2"),
        ("1,2,3\n", "expected 2 fields"),
    ] {
        let err = load_str("t", &schema, text, &LoadOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "{text:?} gave {err} (wanted {needle:?})"
        );
    }
}

#[test]
fn evolution_on_missing_tables_errors() {
    let cods = Cods::new();
    let err = cods.execute(Smo::DecomposeTable {
        input: "ghost".into(),
        spec: DecomposeSpec::new("a", &["x"], "b", &["x", "y"]),
    });
    assert!(matches!(
        err,
        Err(EvolutionError::Storage(StorageError::UnknownTable(_)))
    ));
    let err = cods.execute(Smo::MergeTables {
        left: "ghost".into(),
        right: "ghost2".into(),
        output: "out".into(),
        strategy: MergeStrategy::Auto,
    });
    assert!(err.is_err());
}

#[test]
fn merge_output_collision_keeps_inputs() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
    })
    .unwrap();
    // Output name collides with an existing table.
    let err = cods.execute(Smo::MergeTables {
        left: "S".into(),
        right: "T".into(),
        output: "S".into(),
        strategy: MergeStrategy::Auto,
    });
    assert!(err.is_err());
    assert!(cods.catalog().contains("S"));
    assert!(cods.catalog().contains("T"));
}

#[test]
fn decompose_rejects_dropping_the_join_column() {
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(100, 10),
        ))
        .unwrap();
    // Outputs that do not overlap cannot re-join.
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("A", &["entity", "attr"], "B", &["detail"]),
    });
    assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
}

#[test]
fn unknown_columns_in_specs_error() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "wages"], "T", &["employee", "address"]),
    });
    assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
    let err = cods.execute(Smo::DropColumn {
        table: "R".into(),
        column: "wages".into(),
    });
    assert!(matches!(
        err,
        Err(EvolutionError::Storage(StorageError::UnknownColumn(_)))
    ));
}

// ---------------------------------------------------------------------------
// Crash-point sweeps: simulate a power cut at every byte boundary of a save
// and assert the file always reopens to exactly the old or the new state.
// ---------------------------------------------------------------------------

/// A tiny table with mixed-cardinality columns so both bitmap and RLE
/// segments appear (16-row segments keep the sweep short).
fn tiny(name: &str, rows: i64) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::str(if i % 3 == 0 { "x" } else { "y" }),
            ]
        })
        .collect();
    Table::from_rows_with_segment_rows(name, schema, &data, 16).unwrap()
}

fn sweep_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cods_it_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type Tuples = HashMap<Vec<Value>, u64>;

fn tuples(cat: &Catalog, table: &str) -> Tuples {
    cat.get(table).unwrap().tuple_multiset()
}

/// Kill an append-save at every byte/syscall boundary. Whatever the crash
/// point, reopening the file must recover to exactly the committed old
/// state or the fully committed new state — never an error, never a blend —
/// and payloads of the failed save must stay un-adopted.
#[test]
fn crash_sweep_append_save_reopens_old_or_new() {
    let dir = sweep_dir("crash_append");
    let path = dir.join("sweep.catalog");

    // Old state: one table, committed normally.
    let cat = Catalog::new();
    cat.create(tiny("a", 32)).unwrap();
    save_catalog(&cat, &path).unwrap();
    let old_a = tuples(&read_catalog(&path).unwrap(), "a");
    let pristine = std::fs::read(&path).unwrap();

    // The evolved save under test: reopen from disk (so unchanged segments
    // reuse their extents), recode a column (fresh payloads for an existing
    // table) and create a brand-new table (fresh everything).
    let evolve = |path: &Path| -> Catalog {
        let cat = read_catalog(path).unwrap();
        let a = cat.get("a").unwrap();
        cat.put(a.with_column_encoding("v", Encoding::Rle).unwrap());
        cat.create(tiny("b", 16)).unwrap();
        cat
    };

    // Probe run: count the crash points of one full save, and capture the
    // new state it commits.
    let probe = evolve(&path);
    fault::arm(u64::MAX);
    save_catalog(&probe, &path).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(total > 0, "append-save must pass through the fault layer");
    // Positive control for adopt-after-commit: the committed save adopted
    // the fresh table's payloads into the heap.
    assert!(probe
        .get("b")
        .unwrap()
        .columns()
        .iter()
        .flat_map(|c| c.segments())
        .all(|s| s.backing_path().is_some()));
    let reopened = read_catalog(&path).unwrap();
    let new_a = tuples(&reopened, "a");
    let new_b = tuples(&reopened, "b");

    for budget in 0..total {
        // Back to the pristine old file. Overwrite in place (same inode, so
        // handles held by earlier opens stay coherent) and drop any journal
        // the previous iteration's crash left behind.
        std::fs::write(&path, &pristine).unwrap();
        std::fs::remove_file(wal::wal_path(&path)).ok();

        let cat = evolve(&path);
        fault::arm(budget);
        let res = save_catalog(&cat, &path);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: save survived the crash"
        );

        // A failed save must not have adopted the new table's payloads.
        assert!(
            cat.get("b")
                .unwrap()
                .columns()
                .iter()
                .flat_map(|c| c.segments())
                .all(|s| s.backing_path().is_none()),
            "budget {budget}/{total}: failed save adopted fresh payloads"
        );

        // Reopen = crash recovery. Must land on old or new, never an error.
        let got = read_catalog(&path)
            .unwrap_or_else(|e| panic!("budget {budget}/{total}: reopen failed: {e}"));
        if got.contains("b") {
            assert_eq!(tuples(&got, "a"), new_a, "budget {budget}: new state torn");
            assert_eq!(tuples(&got, "b"), new_b, "budget {budget}: new state torn");
        } else {
            assert_eq!(tuples(&got, "a"), old_a, "budget {budget}: old state torn");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Kill a first-ever save (the temp-file + rename rewrite path) at every
/// boundary: the target path must either not exist at all or be the
/// complete new file — a partial image must never land under the real name.
#[test]
fn crash_sweep_fresh_save_is_atomic() {
    let dir = sweep_dir("crash_fresh");
    let path = dir.join("fresh.catalog");
    let make = || {
        let cat = Catalog::new();
        cat.create(tiny("a", 32)).unwrap();
        cat
    };

    fault::arm(u64::MAX);
    save_catalog(&make(), &path).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(total > 0);
    let want = tuples(&read_catalog(&path).unwrap(), "a");
    std::fs::remove_file(&path).unwrap();

    for budget in 0..total {
        let cat = make();
        fault::arm(budget);
        let res = save_catalog(&cat, &path);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: save survived the crash"
        );
        if path.exists() {
            // Rename happened: the file must be the complete new image.
            let got = read_catalog(&path)
                .unwrap_or_else(|e| panic!("budget {budget}/{total}: partial file landed: {e}"));
            assert_eq!(tuples(&got, "a"), want);
            std::fs::remove_file(&path).unwrap();
        } else {
            assert!(matches!(
                read_catalog(&path),
                Err(StorageError::PersistError(_))
            ));
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Kill a full-rewrite save over an *existing* file (new content that shares
/// nothing with the old) at every boundary: the old file stays byte-intact
/// until the atomic rename, after which the new file is complete.
#[test]
fn crash_sweep_rewrite_over_existing_keeps_old_until_rename() {
    let dir = sweep_dir("crash_rewrite");
    let path = dir.join("rewrite.catalog");

    let old = Catalog::new();
    old.create(tiny("a", 32)).unwrap();
    save_catalog(&old, &path).unwrap();
    let old_a = tuples(&read_catalog(&path).unwrap(), "a");
    let pristine = std::fs::read(&path).unwrap();

    // Unrelated content: nothing references the target file, so the save
    // takes the rewrite path, not the append path.
    let make = || {
        let cat = Catalog::new();
        cat.create(tiny("c", 16)).unwrap();
        cat
    };
    fault::arm(u64::MAX);
    save_catalog(&make(), &path).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(total > 0);
    let new_c = tuples(&read_catalog(&path).unwrap(), "c");

    for budget in 0..total {
        std::fs::write(&path, &pristine).unwrap();
        std::fs::remove_file(wal::wal_path(&path)).ok();
        let cat = make();
        fault::arm(budget);
        let res = save_catalog(&cat, &path);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: save survived the crash"
        );
        let got = read_catalog(&path)
            .unwrap_or_else(|e| panic!("budget {budget}/{total}: reopen failed: {e}"));
        if got.contains("c") {
            assert_eq!(tuples(&got, "c"), new_c, "budget {budget}: new state torn");
        } else {
            assert_eq!(tuples(&got, "a"), old_a, "budget {budget}: old state torn");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A torn tail with no rollback journal to honor (e.g. the journal itself
/// was lost) is unrecoverable — the reader must say so with a typed
/// [`StorageError::Corrupt`] carrying a recovery hint, not a panic and not
/// a generic decode error.
#[test]
fn torn_tail_without_journal_is_typed_corrupt_with_hint() {
    let dir = sweep_dir("torn_tail");
    let path = dir.join("torn.catalog");
    let cat = Catalog::new();
    cat.create(tiny("a", 32)).unwrap();
    save_catalog(&cat, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Cut mid-footer, just before the footer, and mid-metadata.
    for cut in [
        bytes.len() - 1,
        bytes.len() - 5,
        bytes.len() - 13,
        bytes.len() - 40,
    ] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match read_catalog(&path) {
            Err(StorageError::Corrupt(msg)) => {
                assert!(msg.contains("torn tail"), "cut {cut}: {msg}");
                assert!(msg.contains(".wal"), "cut {cut}: hint missing from {msg}");
            }
            other => panic!("cut {cut}: wanted Corrupt, got {other:?}"),
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
