//! Failure injection: corrupted persistence artifacts, malformed loads and
//! invalid operator sequences must surface typed errors — never panics, and
//! never silently wrong data.

use cods::{Cods, DecomposeSpec, EvolutionError, MergeStrategy, Smo};
use cods_storage::persist::{decode_table, encode_table, read_table, save_table};
use cods_storage::{load_str, LoadOptions, Schema, StorageError, ValueType};
use cods_workload::{figure1, GenConfig};

#[test]
fn corrupted_table_files_are_rejected() {
    let t = figure1::table_r();
    let bytes = encode_table(&t);

    // Truncation at any cut point must fail cleanly.
    for frac in [0.01, 0.3, 0.7, 0.99] {
        let cut = ((bytes.len() as f64) * frac) as usize;
        let sliced = bytes.slice(0..cut);
        assert!(decode_table(sliced).is_err(), "cut {frac} accepted");
    }

    // Flipping a byte either fails decode, surfaces as a typed corruption
    // error when the damaged segment faults in (v6 opens metadata-only, so
    // a payload flip is only seen on first touch), or round-trips to a
    // structurally valid table — it must never panic.
    for pos in [0usize, 4, 10, 60, bytes.len() / 2, bytes.len() - 2] {
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 0xFF;
        if let Ok(t) = decode_table(bytes::Bytes::from(corrupt)) {
            if t.check_invariants().is_ok() {
                t.to_rows();
            }
        }
    }
}

#[test]
fn unreadable_files_error() {
    assert!(matches!(
        read_table("/nonexistent/path/table.bin"),
        Err(StorageError::PersistError(_))
    ));
    let t = figure1::table_r();
    assert!(save_table(&t, "/nonexistent/dir/table.bin").is_err());
}

#[test]
fn malformed_csv_loads_fail_with_context() {
    let schema = Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap();
    for (text, needle) in [
        ("1,2\n3\n", "line 2"),
        ("1,2\nx,4\n", "line 2"),
        ("1,2,3\n", "expected 2 fields"),
    ] {
        let err = load_str("t", &schema, text, &LoadOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "{text:?} gave {err} (wanted {needle:?})"
        );
    }
}

#[test]
fn evolution_on_missing_tables_errors() {
    let cods = Cods::new();
    let err = cods.execute(Smo::DecomposeTable {
        input: "ghost".into(),
        spec: DecomposeSpec::new("a", &["x"], "b", &["x", "y"]),
    });
    assert!(matches!(
        err,
        Err(EvolutionError::Storage(StorageError::UnknownTable(_)))
    ));
    let err = cods.execute(Smo::MergeTables {
        left: "ghost".into(),
        right: "ghost2".into(),
        output: "out".into(),
        strategy: MergeStrategy::Auto,
    });
    assert!(err.is_err());
}

#[test]
fn merge_output_collision_keeps_inputs() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
    })
    .unwrap();
    // Output name collides with an existing table.
    let err = cods.execute(Smo::MergeTables {
        left: "S".into(),
        right: "T".into(),
        output: "S".into(),
        strategy: MergeStrategy::Auto,
    });
    assert!(err.is_err());
    assert!(cods.catalog().contains("S"));
    assert!(cods.catalog().contains("T"));
}

#[test]
fn decompose_rejects_dropping_the_join_column() {
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(100, 10),
        ))
        .unwrap();
    // Outputs that do not overlap cannot re-join.
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("A", &["entity", "attr"], "B", &["detail"]),
    });
    assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
}

#[test]
fn unknown_columns_in_specs_error() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "wages"], "T", &["employee", "address"]),
    });
    assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
    let err = cods.execute(Smo::DropColumn {
        table: "R".into(),
        column: "wages".into(),
    });
    assert!(matches!(
        err,
        Err(EvolutionError::Storage(StorageError::UnknownColumn(_)))
    ));
}
