//! Failure injection: corrupted persistence artifacts, malformed loads and
//! invalid operator sequences must surface typed errors — never panics, and
//! never silently wrong data.

use cods::{Cods, DecomposeSpec, EvolutionError, MergeStrategy, Smo};
use cods_storage::commitlog::spill_dir;
use cods_storage::persist::{
    decode_table, encode_table, read_catalog, read_table, save_catalog, save_table,
};
use cods_storage::{
    clog_path, fault, load_str, open_durable_with, wal, Catalog, Encoding, LoadOptions, Schema,
    StorageError, Table, Value, ValueType,
};
use cods_workload::{figure1, GenConfig};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

#[test]
fn corrupted_table_files_are_rejected() {
    let t = figure1::table_r();
    let bytes = encode_table(&t);

    // Truncation at any cut point must fail cleanly.
    for frac in [0.01, 0.3, 0.7, 0.99] {
        let cut = ((bytes.len() as f64) * frac) as usize;
        let sliced = bytes.slice(0..cut);
        assert!(decode_table(sliced).is_err(), "cut {frac} accepted");
    }

    // Flipping a byte either fails decode, surfaces as a typed corruption
    // error when the damaged segment faults in (v6 opens metadata-only, so
    // a payload flip is only seen on first touch), or round-trips to a
    // structurally valid table — it must never panic.
    for pos in [0usize, 4, 10, 60, bytes.len() / 2, bytes.len() - 2] {
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 0xFF;
        if let Ok(t) = decode_table(bytes::Bytes::from(corrupt)) {
            if t.check_invariants().is_ok() {
                t.to_rows();
            }
        }
    }
}

#[test]
fn unreadable_files_error() {
    assert!(matches!(
        read_table("/nonexistent/path/table.bin"),
        Err(StorageError::PersistError(_))
    ));
    let t = figure1::table_r();
    assert!(save_table(&t, "/nonexistent/dir/table.bin").is_err());
}

#[test]
fn malformed_csv_loads_fail_with_context() {
    let schema = Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap();
    for (text, needle) in [
        ("1,2\n3\n", "line 2"),
        ("1,2\nx,4\n", "line 2"),
        ("1,2,3\n", "expected 2 fields"),
    ] {
        let err = load_str("t", &schema, text, &LoadOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "{text:?} gave {err} (wanted {needle:?})"
        );
    }
}

#[test]
fn evolution_on_missing_tables_errors() {
    let cods = Cods::new();
    let err = cods.execute(Smo::DecomposeTable {
        input: "ghost".into(),
        spec: DecomposeSpec::new("a", &["x"], "b", &["x", "y"]),
    });
    assert!(matches!(
        err,
        Err(EvolutionError::Storage(StorageError::UnknownTable(_)))
    ));
    let err = cods.execute(Smo::MergeTables {
        left: "ghost".into(),
        right: "ghost2".into(),
        output: "out".into(),
        strategy: MergeStrategy::Auto,
    });
    assert!(err.is_err());
}

#[test]
fn merge_output_collision_keeps_inputs() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
    })
    .unwrap();
    // Output name collides with an existing table.
    let err = cods.execute(Smo::MergeTables {
        left: "S".into(),
        right: "T".into(),
        output: "S".into(),
        strategy: MergeStrategy::Auto,
    });
    assert!(err.is_err());
    assert!(cods.catalog().contains("S"));
    assert!(cods.catalog().contains("T"));
}

#[test]
fn decompose_rejects_dropping_the_join_column() {
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(100, 10),
        ))
        .unwrap();
    // Outputs that do not overlap cannot re-join.
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("A", &["entity", "attr"], "B", &["detail"]),
    });
    assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
}

#[test]
fn unknown_columns_in_specs_error() {
    let cods = Cods::new();
    cods.catalog().create(figure1::table_r()).unwrap();
    let err = cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["employee", "wages"], "T", &["employee", "address"]),
    });
    assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
    let err = cods.execute(Smo::DropColumn {
        table: "R".into(),
        column: "wages".into(),
    });
    assert!(matches!(
        err,
        Err(EvolutionError::Storage(StorageError::UnknownColumn(_)))
    ));
}

// ---------------------------------------------------------------------------
// Crash-point sweeps: simulate a power cut at every byte boundary of a save
// and assert the file always reopens to exactly the old or the new state.
// ---------------------------------------------------------------------------

/// A tiny table with mixed-cardinality columns so both bitmap and RLE
/// segments appear (16-row segments keep the sweep short).
fn tiny(name: &str, rows: i64) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::str(if i % 3 == 0 { "x" } else { "y" }),
            ]
        })
        .collect();
    Table::from_rows_with_segment_rows(name, schema, &data, 16).unwrap()
}

fn sweep_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cods_it_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type Tuples = HashMap<Vec<Value>, u64>;

fn tuples(cat: &Catalog, table: &str) -> Tuples {
    cat.get(table).unwrap().tuple_multiset()
}

/// Kill an append-save at every byte/syscall boundary. Whatever the crash
/// point, reopening the file must recover to exactly the committed old
/// state or the fully committed new state — never an error, never a blend —
/// and payloads of the failed save must stay un-adopted.
#[test]
fn crash_sweep_append_save_reopens_old_or_new() {
    let dir = sweep_dir("crash_append");
    let path = dir.join("sweep.catalog");

    // Old state: one table, committed normally.
    let cat = Catalog::new();
    cat.create(tiny("a", 32)).unwrap();
    save_catalog(&cat, &path).unwrap();
    let old_a = tuples(&read_catalog(&path).unwrap(), "a");
    let pristine = std::fs::read(&path).unwrap();

    // The evolved save under test: reopen from disk (so unchanged segments
    // reuse their extents), recode a column (fresh payloads for an existing
    // table) and create a brand-new table (fresh everything).
    let evolve = |path: &Path| -> Catalog {
        let cat = read_catalog(path).unwrap();
        let a = cat.get("a").unwrap();
        cat.put(a.with_column_encoding("v", Encoding::Rle).unwrap());
        cat.create(tiny("b", 16)).unwrap();
        cat
    };

    // Probe run: count the crash points of one full save, and capture the
    // new state it commits.
    let probe = evolve(&path);
    fault::arm(u64::MAX);
    save_catalog(&probe, &path).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(total > 0, "append-save must pass through the fault layer");
    // Positive control for adopt-after-commit: the committed save adopted
    // the fresh table's payloads into the heap.
    assert!(probe
        .get("b")
        .unwrap()
        .columns()
        .iter()
        .flat_map(|c| c.segments())
        .all(|s| s.backing_path().is_some()));
    let reopened = read_catalog(&path).unwrap();
    let new_a = tuples(&reopened, "a");
    let new_b = tuples(&reopened, "b");

    for budget in 0..total {
        // Back to the pristine old file. Overwrite in place (same inode, so
        // handles held by earlier opens stay coherent) and drop any journal
        // the previous iteration's crash left behind.
        std::fs::write(&path, &pristine).unwrap();
        std::fs::remove_file(wal::wal_path(&path)).ok();

        let cat = evolve(&path);
        fault::arm(budget);
        let res = save_catalog(&cat, &path);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: save survived the crash"
        );

        // A failed save must not have adopted the new table's payloads.
        assert!(
            cat.get("b")
                .unwrap()
                .columns()
                .iter()
                .flat_map(|c| c.segments())
                .all(|s| s.backing_path().is_none()),
            "budget {budget}/{total}: failed save adopted fresh payloads"
        );

        // Reopen = crash recovery. Must land on old or new, never an error.
        let got = read_catalog(&path)
            .unwrap_or_else(|e| panic!("budget {budget}/{total}: reopen failed: {e}"));
        if got.contains("b") {
            assert_eq!(tuples(&got, "a"), new_a, "budget {budget}: new state torn");
            assert_eq!(tuples(&got, "b"), new_b, "budget {budget}: new state torn");
        } else {
            assert_eq!(tuples(&got, "a"), old_a, "budget {budget}: old state torn");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Kill a first-ever save (the temp-file + rename rewrite path) at every
/// boundary: the target path must either not exist at all or be the
/// complete new file — a partial image must never land under the real name.
#[test]
fn crash_sweep_fresh_save_is_atomic() {
    let dir = sweep_dir("crash_fresh");
    let path = dir.join("fresh.catalog");
    let make = || {
        let cat = Catalog::new();
        cat.create(tiny("a", 32)).unwrap();
        cat
    };

    fault::arm(u64::MAX);
    save_catalog(&make(), &path).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(total > 0);
    let want = tuples(&read_catalog(&path).unwrap(), "a");
    std::fs::remove_file(&path).unwrap();

    for budget in 0..total {
        let cat = make();
        fault::arm(budget);
        let res = save_catalog(&cat, &path);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: save survived the crash"
        );
        if path.exists() {
            // Rename happened: the file must be the complete new image.
            let got = read_catalog(&path)
                .unwrap_or_else(|e| panic!("budget {budget}/{total}: partial file landed: {e}"));
            assert_eq!(tuples(&got, "a"), want);
            std::fs::remove_file(&path).unwrap();
        } else {
            assert!(matches!(
                read_catalog(&path),
                Err(StorageError::PersistError(_))
            ));
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Kill a full-rewrite save over an *existing* file (new content that shares
/// nothing with the old) at every boundary: the old file stays byte-intact
/// until the atomic rename, after which the new file is complete.
#[test]
fn crash_sweep_rewrite_over_existing_keeps_old_until_rename() {
    let dir = sweep_dir("crash_rewrite");
    let path = dir.join("rewrite.catalog");

    let old = Catalog::new();
    old.create(tiny("a", 32)).unwrap();
    save_catalog(&old, &path).unwrap();
    let old_a = tuples(&read_catalog(&path).unwrap(), "a");
    let pristine = std::fs::read(&path).unwrap();

    // Unrelated content: nothing references the target file, so the save
    // takes the rewrite path, not the append path.
    let make = || {
        let cat = Catalog::new();
        cat.create(tiny("c", 16)).unwrap();
        cat
    };
    fault::arm(u64::MAX);
    save_catalog(&make(), &path).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(total > 0);
    let new_c = tuples(&read_catalog(&path).unwrap(), "c");

    for budget in 0..total {
        std::fs::write(&path, &pristine).unwrap();
        std::fs::remove_file(wal::wal_path(&path)).ok();
        let cat = make();
        fault::arm(budget);
        let res = save_catalog(&cat, &path);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: save survived the crash"
        );
        let got = read_catalog(&path)
            .unwrap_or_else(|e| panic!("budget {budget}/{total}: reopen failed: {e}"));
        if got.contains("c") {
            assert_eq!(tuples(&got, "c"), new_c, "budget {budget}: new state torn");
        } else {
            assert_eq!(tuples(&got, "a"), old_a, "budget {budget}: old state torn");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Everything the commit-log sweeps need to rewind one crash iteration:
/// the catalog file (if any), the log, and the spill directory.
struct DurableState {
    catalog: Option<Vec<u8>>,
    log: Vec<u8>,
    spills: Vec<(std::ffi::OsString, Vec<u8>)>,
}

fn capture_durable(path: &Path) -> DurableState {
    let mut spills = Vec::new();
    if let Ok(dir) = std::fs::read_dir(spill_dir(path)) {
        for e in dir.flatten() {
            spills.push((e.file_name(), std::fs::read(e.path()).unwrap()));
        }
    }
    DurableState {
        catalog: std::fs::read(path).ok(),
        log: std::fs::read(clog_path(path)).unwrap(),
        spills,
    }
}

fn restore_durable(path: &Path, s: &DurableState) {
    match &s.catalog {
        Some(bytes) => std::fs::write(path, bytes).unwrap(),
        None => {
            std::fs::remove_file(path).ok();
        }
    }
    std::fs::remove_file(wal::wal_path(path)).ok();
    let log = clog_path(path);
    std::fs::write(&log, &s.log).unwrap();
    std::fs::remove_file(log.with_extension("clog.tmp")).ok();
    let dir = spill_dir(path);
    std::fs::remove_dir_all(&dir).ok();
    if !s.spills.is_empty() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in &s.spills {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
    }
}

/// One evolution commit of `t` through the catalog's optimistic path —
/// the same route the planner's atomic commit takes.
fn durable_put(cat: &Catalog, t: Table) -> Result<(), StorageError> {
    let (base, _) = cat.begin_evolution();
    cat.commit_evolution(base, &[], vec![Arc::new(t)])?;
    Ok(())
}

/// Spill threshold small enough that every tiny-table image spills, so the
/// sweeps cross the spill-file write/sync crash points too.
const SWEEP_SPILL: usize = 64;

/// Kill a durable commit (spill write, record append, group fsync) at
/// every byte/syscall boundary: every *acknowledged* commit must survive
/// the reopen, and the crashed commit — never acknowledged — may appear
/// only as its complete self, never torn.
#[test]
fn crash_sweep_commit_append_preserves_acknowledged_prefix() {
    let dir = sweep_dir("crash_clog_append");
    let path = dir.join("sweep.catalog");

    // Acknowledged prefix: two commits, fsynced and acked.
    let (cat, _log, _r) = open_durable_with(&path, SWEEP_SPILL).unwrap();
    durable_put(&cat, tiny("a", 32)).unwrap();
    durable_put(&cat, tiny("b", 16)).unwrap();
    drop(cat);
    let state = capture_durable(&path);
    let want_a = tiny("a", 32).tuple_multiset();
    let want_b = tiny("b", 16).tuple_multiset();
    let want_c = tiny("c", 16).tuple_multiset();

    // Probe: count the crash points of one full durable commit.
    let (cat, _log, _r) = open_durable_with(&path, SWEEP_SPILL).unwrap();
    fault::arm(u64::MAX);
    durable_put(&cat, tiny("c", 16)).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(
        total > 0,
        "durable commit must pass through the fault layer"
    );
    println!("commit-append sweep: {total} kill points");
    drop(cat);

    for budget in 0..total {
        restore_durable(&path, &state);
        let (cat, log, replay) = open_durable_with(&path, SWEEP_SPILL).unwrap();
        assert_eq!(replay.replayed, 2, "budget {budget}: bad starting state");
        fault::arm(budget);
        let res = durable_put(&cat, tiny("c", 16));
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: commit survived the crash"
        );
        drop((cat, log));

        // Reopen = crash recovery. The acknowledged prefix must be intact;
        // the unacknowledged commit may have reached its commit point
        // (record fully on disk) or not — but never a torn in-between.
        let (got, _log, _r) = open_durable_with(&path, SWEEP_SPILL)
            .unwrap_or_else(|e| panic!("budget {budget}/{total}: recovery failed: {e}"));
        assert_eq!(tuples(&got, "a"), want_a, "budget {budget}: ack lost");
        assert_eq!(tuples(&got, "b"), want_b, "budget {budget}: ack lost");
        if got.contains("c") {
            assert_eq!(tuples(&got, "c"), want_c, "budget {budget}: torn commit");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Kill a checkpoint (full save, log truncation, spill cleanup) at every
/// boundary: whatever the crash point, the reopened catalog holds every
/// acknowledged commit — from the checkpoint, the log, or both (replay of
/// already-checkpointed records is idempotent).
#[test]
fn crash_sweep_checkpoint_keeps_every_acknowledged_commit() {
    let dir = sweep_dir("crash_clog_ckpt");
    let path = dir.join("sweep.catalog");

    let (cat, _log, _r) = open_durable_with(&path, SWEEP_SPILL).unwrap();
    durable_put(&cat, tiny("a", 32)).unwrap();
    durable_put(&cat, tiny("b", 16)).unwrap();
    drop(cat);
    let state = capture_durable(&path);
    let want_a = tiny("a", 32).tuple_multiset();
    let want_b = tiny("b", 16).tuple_multiset();

    let (cat, log, _r) = open_durable_with(&path, SWEEP_SPILL).unwrap();
    fault::arm(u64::MAX);
    log.checkpoint(&cat).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(total > 0, "checkpoint must pass through the fault layer");
    println!("checkpoint sweep: {total} kill points");
    drop((cat, log));

    for budget in 0..total {
        restore_durable(&path, &state);
        let (cat, log, _r) = open_durable_with(&path, SWEEP_SPILL).unwrap();
        fault::arm(budget);
        let res = log.checkpoint(&cat);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: checkpoint survived the crash"
        );
        drop((cat, log));

        let (got, _log, _r) = open_durable_with(&path, SWEEP_SPILL)
            .unwrap_or_else(|e| panic!("budget {budget}/{total}: recovery failed: {e}"));
        assert_eq!(tuples(&got, "a"), want_a, "budget {budget}: ack lost");
        assert_eq!(tuples(&got, "b"), want_b, "budget {budget}: ack lost");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Kill *recovery itself* (torn-tail truncation, orphan-spill sweep) at
/// every boundary: a crash during replay must leave the state re-openable
/// with the full acknowledged prefix — recovery is idempotent.
#[test]
fn crash_sweep_replay_recovery_is_idempotent() {
    let dir = sweep_dir("crash_clog_replay");
    let path = dir.join("sweep.catalog");

    let (cat, _log, _r) = open_durable_with(&path, SWEEP_SPILL).unwrap();
    durable_put(&cat, tiny("a", 32)).unwrap();
    durable_put(&cat, tiny("b", 16)).unwrap();
    drop(cat);
    // Model a crash mid-append: a torn half-record at the tail, plus a
    // spill whose record never sealed.
    let log_path = clog_path(&path);
    let mut bytes = std::fs::read(&log_path).unwrap();
    bytes.extend_from_slice(&[0xAB; 11]);
    std::fs::write(&log_path, &bytes).unwrap();
    std::fs::write(spill_dir(&path).join("s999.spill"), b"orphan").unwrap();
    let state = capture_durable(&path);
    let want_a = tiny("a", 32).tuple_multiset();
    let want_b = tiny("b", 16).tuple_multiset();

    fault::arm(u64::MAX);
    let (_cat, _log, replay) = open_durable_with(&path, SWEEP_SPILL).unwrap();
    fault::disarm();
    let total = fault::units();
    assert!(replay.discarded_torn && replay.orphan_spills == 1);
    assert!(total > 0, "recovery must pass through the fault layer");
    println!("replay-recovery sweep: {total} kill points");

    for budget in 0..total {
        restore_durable(&path, &state);
        fault::arm(budget);
        let res = open_durable_with(&path, SWEEP_SPILL);
        fault::disarm();
        assert!(
            res.is_err(),
            "budget {budget}/{total}: recovery survived the crash"
        );
        drop(res);

        let (got, _log, _r) = open_durable_with(&path, SWEEP_SPILL)
            .unwrap_or_else(|e| panic!("budget {budget}/{total}: re-recovery failed: {e}"));
        assert_eq!(tuples(&got, "a"), want_a, "budget {budget}: ack lost");
        assert_eq!(tuples(&got, "b"), want_b, "budget {budget}: ack lost");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A torn tail with no rollback journal to honor (e.g. the journal itself
/// was lost) is unrecoverable — the reader must say so with a typed
/// [`StorageError::Corrupt`] carrying a recovery hint, not a panic and not
/// a generic decode error.
#[test]
fn torn_tail_without_journal_is_typed_corrupt_with_hint() {
    let dir = sweep_dir("torn_tail");
    let path = dir.join("torn.catalog");
    let cat = Catalog::new();
    cat.create(tiny("a", 32)).unwrap();
    save_catalog(&cat, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Cut mid-footer, just before the footer, and mid-metadata.
    for cut in [
        bytes.len() - 1,
        bytes.len() - 5,
        bytes.len() - 13,
        bytes.len() - 40,
    ] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match read_catalog(&path) {
            Err(StorageError::Corrupt(msg)) => {
                assert!(msg.contains("torn tail"), "cut {cut}: {msg}");
                assert!(msg.contains(".wal"), "cut {cut}: hint missing from {msg}");
            }
            other => panic!("cut {cut}: wanted Corrupt, got {other:?}"),
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
