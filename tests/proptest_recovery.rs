//! Differential property test of commit-log recovery: a random SMO
//! commit sequence, killed at a random crash point, must reopen to a
//! catalog **byte-identical** (per-table [`encode_table`]) to the
//! acknowledged-prefix oracle — an in-memory catalog that applied exactly
//! the commits the log acknowledged (plus, at most, the one in-flight
//! commit whose record reached the disk complete before the kill).
//!
//! CI runs this suite at `PROPTEST_CASES=512`.

use cods_storage::persist::encode_table;
use cods_storage::{
    fault, open_durable_with, Catalog, Schema, StorageError, Table, Value, ValueType,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One randomly chosen catalog commit (SMO granularity).
#[derive(Debug, Clone)]
enum Op {
    /// Put table `name` (create, or replace if it exists) with
    /// deterministic content derived from `(name, rows, salt)`.
    Put { name: u8, rows: u8, salt: u8 },
    /// Drop the `idx`-th live table (no-op on an empty catalog).
    Drop { idx: u8 },
    /// Rename the `idx`-th live table to `to` (no-op on empty).
    Rename { idx: u8, to: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Puts listed three times to weight them (the in-tree `prop_oneof!`
    // picks arms uniformly): mostly puts, so catalogs actually grow.
    prop_oneof![
        (0u8..6, 1u8..40, 0u8..4).prop_map(|(name, rows, salt)| Op::Put { name, rows, salt }),
        (0u8..6, 1u8..40, 0u8..4).prop_map(|(name, rows, salt)| Op::Put { name, rows, salt }),
        (0u8..6, 1u8..40, 0u8..4).prop_map(|(name, rows, salt)| Op::Put { name, rows, salt }),
        (0u8..6).prop_map(|idx| Op::Drop { idx }),
        (0u8..6, 0u8..6).prop_map(|(idx, to)| Op::Rename { idx, to }),
    ]
}

fn table_name(n: u8) -> String {
    format!("t{n}")
}

/// Deterministic table content: both the durable run and the oracle build
/// the exact same bytes from the same op.
fn build_table(name: &str, rows: u8, salt: u8) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            vec![
                Value::Int(i * (salt as i64 + 1)),
                Value::str(if (i + salt as i64) % 3 == 0 {
                    "x"
                } else {
                    "yy"
                }),
            ]
        })
        .collect();
    Table::from_rows(name, schema, &data).unwrap()
}

/// Applies one op through the optimistic commit path. Returns `Ok(false)`
/// for no-ops that commit nothing (same decision on both sides of the
/// differential, so prefixes stay aligned).
fn apply(cat: &Catalog, op: &Op) -> Result<bool, StorageError> {
    let (base, snap) = cat.begin_evolution();
    let (drops, puts): (Vec<String>, Vec<Arc<Table>>) = match op {
        Op::Put { name, rows, salt } => (
            Vec::new(),
            vec![Arc::new(build_table(&table_name(*name), *rows, *salt))],
        ),
        Op::Drop { idx } => {
            let names: Vec<String> = snap.keys().cloned().collect();
            if names.is_empty() {
                return Ok(false);
            }
            (vec![names[*idx as usize % names.len()].clone()], Vec::new())
        }
        Op::Rename { idx, to } => {
            let names: Vec<String> = snap.keys().cloned().collect();
            if names.is_empty() {
                return Ok(false);
            }
            let from = names[*idx as usize % names.len()].clone();
            let renamed = snap.get(&from).unwrap().renamed(table_name(*to));
            (vec![from], vec![Arc::new(renamed)])
        }
    };
    cat.commit_evolution(base, &drops, puts)?;
    Ok(true)
}

/// Per-table byte comparison against an oracle catalog.
fn matches_oracle(got: &Catalog, oracle: &Catalog) -> bool {
    if got.table_names() != oracle.table_names() {
        return false;
    }
    got.table_names().iter().all(|name| {
        encode_table(&got.get(name).unwrap()).as_slice()
            == encode_table(&oracle.get(name).unwrap()).as_slice()
    })
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cods_prop_recovery_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("t.catalog")
}

/// Mixed inline/spill records: small enough that some tables spill.
const SPILL: usize = 400;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Random commit sequence + random kill point: the reopened catalog is
    // byte-identical to the acknowledged prefix (or prefix + the one
    // complete-but-unacknowledged in-flight record).
    #[test]
    fn killed_commit_sequence_reopens_to_acknowledged_prefix(
        ops in prop::collection::vec(op_strategy(), 1..12),
        kill_permille in 0u64..1000,
    ) {
        // Probe: total crash points of the whole sequence.
        let probe_path = scratch();
        let (cat, _log, _r) = open_durable_with(&probe_path, SPILL).unwrap();
        fault::arm(u64::MAX);
        for op in &ops {
            apply(&cat, op).unwrap();
        }
        fault::disarm();
        let total = fault::units();
        drop(cat);
        std::fs::remove_dir_all(probe_path.parent().unwrap()).ok();

        // Real run: kill at a random point inside the sequence.
        let path = scratch();
        let budget = total * kill_permille / 1000;
        let (cat, _log, _r) = open_durable_with(&path, SPILL).unwrap();
        fault::arm(budget);
        let mut acknowledged = 0usize;
        for op in &ops {
            match apply(&cat, op) {
                Ok(_) => acknowledged += 1,
                Err(_) => break, // the modeled process died here
            }
        }
        fault::disarm();
        drop(cat);

        // Oracles: the acknowledged prefix, and (only when the kill hit
        // mid-commit) prefix + the in-flight commit — whose record may
        // have reached the disk complete before the fsync/ack was cut.
        let oracle_acked = Catalog::new();
        for op in &ops[..acknowledged] {
            apply(&oracle_acked, op).unwrap();
        }
        let oracle_next = (acknowledged < ops.len()).then(|| {
            let oracle = Catalog::new();
            for op in &ops[..=acknowledged] {
                apply(&oracle, op).unwrap();
            }
            oracle
        });

        // Recovery must never fail, and must land exactly on an oracle.
        let (got, _log, _replay) = open_durable_with(&path, SPILL).unwrap();
        let ok = matches_oracle(&got, &oracle_acked)
            || oracle_next.as_ref().is_some_and(|o| matches_oracle(&got, o));
        prop_assert!(
            ok,
            "recovered catalog {:?} matches neither the {acknowledged}-commit \
             acknowledged oracle {:?} nor the in-flight oracle",
            got.table_names(),
            oracle_acked.table_names(),
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    // No kill at all: a clean close and reopen is always byte-identical.
    #[test]
    fn clean_reopen_is_byte_identical(
        ops in prop::collection::vec(op_strategy(), 1..10),
        checkpoint_at in 0usize..10,
    ) {
        let path = scratch();
        let (cat, log, _r) = open_durable_with(&path, SPILL).unwrap();
        let oracle = Catalog::new();
        for (i, op) in ops.iter().enumerate() {
            apply(&cat, op).unwrap();
            apply(&oracle, op).unwrap();
            // A mid-sequence checkpoint must not change the outcome:
            // later records replay on top of the saved base.
            if i == checkpoint_at {
                log.checkpoint(&cat).unwrap();
            }
        }
        drop((cat, log));
        let (got, _log, _replay) = open_durable_with(&path, SPILL).unwrap();
        prop_assert!(matches_oracle(&got, &oracle));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
