//! Moderate-scale smoke tests: the full evolution stack at tens of
//! thousands of rows (kept debug-build friendly; the release-mode `fig3`
//! harness covers millions).

use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_query::Predicate;
use cods_workload::{Distribution, GenConfig};

#[test]
fn fifty_k_row_full_cycle() {
    let mut cfg = GenConfig::sweep_point(50_000, 2_000);
    cfg.distribution = Distribution::Zipf(0.8);
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table("R", &cfg))
        .unwrap();
    let original = cods.table("R").unwrap().tuple_multiset();

    // Partition → union → decompose → merge, ending where we started.
    cods.execute(Smo::PartitionTable {
        input: "R".into(),
        predicate: Predicate::lt("entity", 1_000i64),
        satisfying: "lo".into(),
        rest: "hi".into(),
    })
    .unwrap();
    cods.execute(Smo::UnionTables {
        left: "lo".into(),
        right: "hi".into(),
        output: "R".into(),
        drop_inputs: true,
    })
    .unwrap();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
    })
    .unwrap();
    cods.execute(Smo::MergeTables {
        left: "S".into(),
        right: "T".into(),
        output: "R".into(),
        strategy: MergeStrategy::Auto,
    })
    .unwrap();
    assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);

    // Evolution status must have been recorded for the data-moving SMOs.
    let history = cods.history();
    assert_eq!(history.len(), 4);
    assert!(history.iter().any(|r| r.operator.starts_with("DECOMPOSE")));
}

#[test]
fn high_cardinality_decompose_is_not_quadratic() {
    // All-distinct keys at 50k rows: completes quickly only if the adaptive
    // id-gather path is in effect (the naive per-bitmap path would do
    // 2.5 × 10^9 position probes here).
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            "R",
            &GenConfig::sweep_point(50_000, 50_000),
        ))
        .unwrap();
    let start = std::time::Instant::now();
    cods.execute(Smo::DecomposeTable {
        input: "R".into(),
        spec: DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]),
    })
    .unwrap();
    assert_eq!(cods.table("T").unwrap().rows(), 50_000);
    // Generous bound (debug build): quadratic behaviour would take minutes.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "decomposition took {:?}",
        start.elapsed()
    );
}
