//! The central correctness claim of the reproduction: CODS data-level
//! evolution produces exactly the same tables as query-level evolution on
//! every baseline engine.

use cods::{decompose, DecomposeSpec, MergeStrategy};
use cods_query::{
    decompose_column_level, decompose_row_level, merge_column_level, merge_row_level,
};
use cods_rowstore::{InsertPolicy, RowDb};
use cods_storage::{Catalog, Table, Value};
use cods_workload::gen::r_schema;
use cods_workload::{Distribution, GenConfig};
use std::collections::HashMap;

fn multiset(rows: &[Vec<Value>]) -> HashMap<Vec<Value>, u64> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.clone()).or_insert(0) += 1;
    }
    m
}

fn check_config(cfg: &GenConfig) {
    let rows = cods_workload::generate_rows(cfg);
    let table = Table::from_rows("R", r_schema(), &rows).unwrap();

    // --- Data level (CODS) ---
    let spec = DecomposeSpec::new("S", &["entity", "attr"], "T", &["entity", "detail"]);
    let out = decompose(&table, &spec).unwrap();
    let cods_s = multiset(&out.unchanged.to_rows());
    let cods_t = multiset(&out.changed.to_rows());

    // --- Query level, column store ---
    let catalog = Catalog::new();
    catalog.create(table.renamed("R")).unwrap();
    decompose_column_level(
        &catalog,
        "R",
        "S",
        &["entity", "attr"],
        "T",
        &["entity", "detail"],
        &["entity"],
    )
    .unwrap();
    assert_eq!(multiset(&catalog.get("S").unwrap().to_rows()), cods_s);
    assert_eq!(multiset(&catalog.get("T").unwrap().to_rows()), cods_t);

    // --- Query level, row stores under all three policies ---
    for policy in [
        InsertPolicy::Batch,
        InsertPolicy::Indexed,
        InsertPolicy::JournaledAutocommit,
    ] {
        let mut db = RowDb::new(policy);
        db.create_table("R", r_schema()).unwrap();
        for r in &rows {
            db.insert("R", r).unwrap();
        }
        decompose_row_level(
            &mut db,
            "R",
            "S",
            &["entity", "attr"],
            "T",
            &["entity", "detail"],
            &["entity"],
            policy == InsertPolicy::Indexed,
        )
        .unwrap();
        let s_rows: Vec<Vec<Value>> = db.table("S").unwrap().scan().map(|(_, r)| r).collect();
        let t_rows: Vec<Vec<Value>> = db.table("T").unwrap().scan().map(|(_, r)| r).collect();
        assert_eq!(multiset(&s_rows), cods_s, "{policy:?} S differs");
        assert_eq!(multiset(&t_rows), cods_t, "{policy:?} T differs");

        // Merge back on the row engine and compare with CODS's merge.
        let mut db2 = db;
        merge_row_level(&mut db2, "S", "T", "R2", &["entity"], false).unwrap();
        let row_merged: Vec<Vec<Value>> = db2.table("R2").unwrap().scan().map(|(_, r)| r).collect();
        let cods_merged =
            cods::merge(&out.unchanged, &out.changed, "R2", &MergeStrategy::Auto).unwrap();
        assert_eq!(
            multiset(&cods_merged.output.to_rows()),
            multiset(&row_merged),
            "{policy:?} merged result differs"
        );
    }

    // --- Merge equivalence on the column store ---
    merge_column_level(&catalog, "S", "T", "R2", &["entity"]).unwrap();
    let cods_merged = cods::merge(&out.unchanged, &out.changed, "X", &MergeStrategy::Auto)
        .unwrap()
        .output;
    assert_eq!(
        multiset(&catalog.get("R2").unwrap().to_rows()),
        multiset(&cods_merged.to_rows())
    );
}

#[test]
fn equivalence_uniform_small() {
    check_config(&GenConfig::sweep_point(500, 20));
}

#[test]
fn equivalence_uniform_mid() {
    check_config(&GenConfig::sweep_point(5_000, 250));
}

#[test]
fn equivalence_all_distinct() {
    check_config(&GenConfig::sweep_point(1_000, 1_000));
}

#[test]
fn equivalence_zipf_skewed() {
    let mut cfg = GenConfig::sweep_point(5_000, 100);
    cfg.distribution = Distribution::Zipf(1.1);
    check_config(&cfg);
}

#[test]
fn equivalence_two_distinct_values() {
    check_config(&GenConfig::sweep_point(2_000, 2));
}
