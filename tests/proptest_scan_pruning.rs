//! Differential property tests of zone-map scan pruning: over random
//! tables — per-column *and* per-segment mixed encodings (randomly mixed
//! directories), post-SMO, post-compaction — and random predicates, the
//! pruned scan ([`predicate_mask`]) must be bit-identical to the
//! exhaustive scan ([`predicate_mask_unpruned`]) and to a row-level
//! evaluation oracle. Runs in CI's differential proptest job at
//! `PROPTEST_CASES=512`.

use cods::simple_ops::{partition_table, union_tables};
use cods_query::bitmap_scan::{predicate_mask, predicate_mask_unpruned};
use cods_query::{CmpOp, Predicate};
use cods_storage::{Encoding, Schema, Table, Value, ValueType};
use proptest::prelude::*;

/// Random table R(k, v): clustered-ish k (sorted with noise) so zones have
/// something to prune, scattered v with NULLs, random segment size.
fn base_table() -> impl Strategy<Value = Table> {
    (
        prop::collection::vec((0i64..40, 0i64..12, 0u8..16), 1usize..300),
        4u64..64,
    )
        .prop_map(|(trips, seg_rows)| {
            let schema =
                Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
            let mut rows: Vec<Vec<Value>> = trips
                .into_iter()
                .map(|(k, v, null)| {
                    vec![
                        Value::int(k),
                        if null == 0 {
                            Value::Null
                        } else {
                            Value::int(v)
                        },
                    ]
                })
                .collect();
            // Sort by k so segments get distinct value ranges (what zone
            // pruning exploits); v stays scattered.
            rows.sort_by(|a, b| a[0].cmp(&b[0]));
            Table::from_rows_with_segment_rows("R", schema, &rows, seg_rows).unwrap()
        })
}

/// A random comparison, range, or boolean combination over k and v,
/// including literals outside every value range and NULL literals.
fn pred() -> impl Strategy<Value = Predicate> {
    let cmp = (0usize..6, 0usize..2, -5i64..50, 0u8..12).prop_map(|(op, col, lit, null)| {
        let op = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][op];
        Predicate::Compare {
            column: if col == 0 { "k" } else { "v" }.into(),
            op,
            literal: if null == 0 {
                Value::Null
            } else {
                Value::int(lit)
            },
        }
    });
    (
        prop::collection::vec(cmp, 1usize..4),
        -5i64..45,
        0i64..20,
        0usize..4,
    )
        .prop_map(|(cmps, lo, width, shape)| {
            let between = Predicate::ge("k", lo).and(Predicate::lt("k", lo + width));
            let mut it = cmps.into_iter();
            let first = it.next().unwrap();
            match shape {
                0 => first,
                1 => it.fold(first, |acc, c| acc.and(c)),
                2 => it.fold(first, |acc, c| acc.or(c)).or(between),
                _ => between.and(first.not()),
            }
        })
}

/// Recodes segments of the named column to RLE wherever `pattern` has a
/// set bit — a random per-segment encoding assignment producing a
/// genuinely mixed directory.
fn mix_column(t: &Table, name: &str, pattern: u64) -> Table {
    let mut out = t.clone();
    let segs = out.column_by_name(name).unwrap().segment_count();
    for i in 0..segs {
        if pattern & (1 << (i % 64)) != 0 {
            out = out
                .with_column_segment_range_encoding(name, Encoding::Rle, i..i + 1)
                .unwrap();
        }
    }
    out
}

fn assert_masks_agree(t: &Table, p: &Predicate) {
    let pruned = predicate_mask(t, p).unwrap();
    let unpruned = predicate_mask_unpruned(t, p).unwrap();
    assert_eq!(pruned, unpruned, "pruned != exhaustive for {p:?}");
    let compiled = p.compile(t.schema()).unwrap();
    for (row, tuple) in t.to_rows().iter().enumerate() {
        assert_eq!(
            pruned.get(row as u64),
            compiled.eval(tuple),
            "row {row} for {p:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pruned_scan_matches_exhaustive_on_mixed_encodings(
        table in base_table(),
        p in pred(),
        enc in 0usize..6,
        pattern in proptest::prelude::any::<u64>(),
    ) {
        // The four per-column encoding combinations, plus randomly mixed
        // per-segment directories (one column, then both).
        let table = match enc {
            0 => table,
            1 => table.recoded(Encoding::Rle).unwrap(),
            2 => table.with_column_encoding("k", Encoding::Rle).unwrap(),
            3 => table.with_column_encoding("v", Encoding::Rle).unwrap(),
            4 => mix_column(&table, "k", pattern),
            _ => mix_column(&mix_column(&table, "k", pattern), "v", pattern.rotate_left(23)),
        };
        table.check_invariants().unwrap();
        assert_masks_agree(&table, &p);
    }

    #[test]
    fn pruned_scan_matches_exhaustive_after_smo_and_compaction(
        table in base_table(),
        p in pred(),
        threshold in 0i64..40,
        rle in 0usize..3,
        pattern in proptest::prelude::any::<u64>(),
    ) {
        let table = match rle {
            1 => table.recoded(Encoding::Rle).unwrap(),
            // Randomly mixed directories go through the same SMO and
            // compaction machinery as the uniform ones.
            2 => mix_column(&table, "k", pattern),
            _ => table,
        };
        // Post-SMO: partition + union rebuilds every column through the
        // segment-parallel executors (zones re-derived from stats).
        let (sat, rest, _) =
            partition_table(&table, &Predicate::lt("k", threshold), "lo", "hi").unwrap();
        let (back, _) = union_tables(&sat, &rest, "back").unwrap();
        back.check_invariants().unwrap();
        assert_masks_agree(&back, &p);

        // Post-compaction: fragment the directory through a slice/concat
        // chain, then compact — zones spliced from source segments.
        let rows = table.rows();
        if rows >= 8 {
            let quarter = rows / 4;
            let cols: Vec<_> = table
                .columns()
                .iter()
                .map(|c| {
                    let mut acc = c.slice(0, quarter);
                    for piece in 1..4 {
                        let lo = piece * quarter;
                        let hi = if piece == 3 { rows } else { lo + quarter };
                        acc = acc.concat(&c.slice(lo, hi)).unwrap();
                    }
                    std::sync::Arc::new(acc.compacted())
                })
                .collect();
            let rebuilt = Table::new("C", table.schema().clone(), cols).unwrap();
            rebuilt.check_invariants().unwrap();
            assert_eq!(rebuilt.to_rows(), table.to_rows());
            assert_masks_agree(&rebuilt, &p);
        }
    }
}
