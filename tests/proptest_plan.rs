//! Differential property test of the planned execution surface (CI runs
//! this at `PROPTEST_CASES=512`): for random SMO chains over
//! mixed-encoding tables, the planned path — validate → fuse →
//! DAG-parallel execute → atomic commit — must be indistinguishable from
//! the sequential compatibility path `execute_all`:
//!
//! * a chain the sequential path completes must complete planned, with a
//!   **byte-identical** catalog (every table compared through the persist
//!   encoder, so schemas, encodings, dictionaries, and segment directories
//!   all have to agree, not just the decoded tuples);
//! * a chain the sequential path rejects anywhere must fail planned too —
//!   and leave the planned catalog byte-identical to its pre-plan state
//!   (the sequential path, by documented contract, keeps the partial
//!   prefix).

use cods::simple_ops::ColumnFill;
use cods::{Cods, DecomposeSpec, MergeStrategy, Smo};
use cods_query::Predicate;
use cods_storage::persist::encode_table;
use cods_storage::{ColumnDef, Encoding, Schema, Table, Value, ValueType};
use proptest::prelude::*;

/// Small pools: collisions and chained reuse of names are the point.
const NAMES: &[&str] = &["R", "B", "t1", "t2", "t3"];
const COLS: &[&str] = &["k", "a", "d", "v", "x1", "x2"];

fn name(i: usize) -> String {
    NAMES[i % NAMES.len()].to_string()
}

fn col(i: usize) -> String {
    COLS[i % COLS.len()].to_string()
}

#[derive(Clone, Debug)]
enum OpSpec {
    Copy(usize, usize),
    Rename(usize, usize),
    Drop(usize),
    Union(usize, usize, usize, bool),
    Partition(usize, i64, usize, usize),
    Decompose(usize, usize, usize),
    Merge(usize, usize, usize),
    AddCol(usize, usize, i64),
    DropCol(usize, usize),
    RenameCol(usize, usize, usize),
}

fn to_smo(op: &OpSpec) -> Smo {
    match *op {
        OpSpec::Copy(a, b) => Smo::CopyTable {
            from: name(a),
            to: name(b),
        },
        OpSpec::Rename(a, b) => Smo::RenameTable {
            from: name(a),
            to: name(b),
        },
        OpSpec::Drop(a) => Smo::DropTable { name: name(a) },
        OpSpec::Union(a, b, o, drop_inputs) => Smo::UnionTables {
            left: name(a),
            right: name(b),
            output: name(o),
            drop_inputs,
        },
        OpSpec::Partition(a, thr, o1, o2) => Smo::PartitionTable {
            input: name(a),
            predicate: Predicate::lt("k", thr),
            satisfying: name(o1),
            rest: name(o2),
        },
        OpSpec::Decompose(a, o1, o2) => Smo::DecomposeTable {
            input: name(a),
            spec: DecomposeSpec::new(name(o1), &["k", "a"], name(o2), &["k", "d"]),
        },
        OpSpec::Merge(a, b, o) => Smo::MergeTables {
            left: name(a),
            right: name(b),
            output: name(o),
            strategy: MergeStrategy::Auto,
        },
        OpSpec::AddCol(t, c, v) => Smo::AddColumn {
            table: name(t),
            column: ColumnDef::new(col(c), ValueType::Int),
            fill: ColumnFill::Default(Value::int(v)),
        },
        OpSpec::DropCol(t, c) => Smo::DropColumn {
            table: name(t),
            column: col(c),
        },
        OpSpec::RenameCol(t, c1, c2) => Smo::RenameColumn {
            table: name(t),
            from: col(c1),
            to: col(c2),
        },
    }
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    let n = 0usize..NAMES.len();
    let c = 0usize..COLS.len();
    prop_oneof![
        (n.clone(), n.clone()).prop_map(|(a, b)| OpSpec::Copy(a, b)),
        (n.clone(), n.clone()).prop_map(|(a, b)| OpSpec::Rename(a, b)),
        n.clone().prop_map(OpSpec::Drop),
        (
            n.clone(),
            n.clone(),
            n.clone(),
            prop_oneof![Just(true), Just(false)]
        )
            .prop_map(|(a, b, o, d)| OpSpec::Union(a, b, o, d)),
        (n.clone(), 0i64..8, n.clone(), n.clone())
            .prop_map(|(a, t, o1, o2)| OpSpec::Partition(a, t, o1, o2)),
        (n.clone(), n.clone(), n.clone()).prop_map(|(a, o1, o2)| OpSpec::Decompose(a, o1, o2)),
        (n.clone(), n.clone(), n.clone()).prop_map(|(a, b, o)| OpSpec::Merge(a, b, o)),
        (n.clone(), c.clone(), -5i64..5).prop_map(|(t, cc, v)| OpSpec::AddCol(t, cc, v)),
        (n.clone(), c.clone()).prop_map(|(t, cc)| OpSpec::DropCol(t, cc)),
        (n, c.clone(), c).prop_map(|(t, a, b)| OpSpec::RenameCol(t, a, b)),
    ]
}

/// Builds the shared starting catalog: R(k, a, d) with the FD k → d held
/// by construction (so DECOMPOSE can succeed), B(k, v), and the requested
/// per-table / per-column encoding mix.
fn platform(rle_r: bool, rle_b_k: bool) -> Cods {
    let cods = Cods::new();
    let r_schema = Schema::build(
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
        ],
        &[],
    )
    .unwrap();
    let r_rows: Vec<Vec<Value>> = (0..60)
        .map(|i| {
            vec![
                Value::int(i % 5),
                Value::int(i),
                Value::int((i % 5) * 7 + 1),
            ]
        })
        .collect();
    let mut r = Table::from_rows("R", r_schema, &r_rows).unwrap();
    if rle_r {
        r = r.recoded(Encoding::Rle).unwrap();
    }
    cods.catalog().create(r).unwrap();

    let b_schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
    let b_rows: Vec<Vec<Value>> = (0..40)
        .map(|i| vec![Value::int(i % 7), Value::int(i % 3)])
        .collect();
    let mut b = Table::from_rows("B", b_schema, &b_rows).unwrap();
    if rle_b_k {
        b = b.with_column_encoding("k", Encoding::Rle).unwrap();
    }
    cods.catalog().create(b).unwrap();
    cods
}

/// Byte-level fingerprint of a whole catalog: table names plus their full
/// persist encoding (schema, per-column encoding byte, dictionaries,
/// segment directories — everything the on-disk format captures).
fn catalog_bytes(cods: &Cods) -> Vec<(String, Vec<u8>)> {
    cods.catalog()
        .table_names()
        .into_iter()
        .map(|n| {
            let t = cods.table(&n).unwrap();
            (n, encode_table(&t).as_slice().to_vec())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planned_execution_matches_sequential(
        ops in prop::collection::vec(op_strategy(), 1..12),
        enc in 0u8..4,
    ) {
        let rle_r = enc & 1 != 0;
        let rle_b_k = enc & 2 != 0;
        let smos: Vec<Smo> = ops.iter().map(to_smo).collect();

        let sequential = platform(rle_r, rle_b_k);
        let planned = platform(rle_r, rle_b_k);
        let before = catalog_bytes(&planned);

        let seq_result = sequential.execute_all(smos.clone());
        let plan_result = planned.plan(smos).and_then(|p| p.execute());

        match seq_result {
            Ok(_) => {
                let report = plan_result.expect("sequential succeeded, planned must too");
                // Bit-identical catalogs, byte for byte.
                prop_assert_eq!(catalog_bytes(&sequential), catalog_bytes(&planned));
                // The planned path never materializes more catalog tables
                // than the eager path did.
                prop_assert!(report.committed_puts <= report.staged_puts);
                // History carries one record per original operator on both
                // sides (fused chains keep their per-plan grouping).
                prop_assert!(!planned.history().is_empty());
            }
            Err(_) => {
                // The planned path must also reject the chain — and,
                // unlike the sequential path's documented partial
                // mutation, leave its catalog untouched.
                prop_assert!(plan_result.is_err());
                prop_assert_eq!(catalog_bytes(&planned), before);
                prop_assert!(planned.history().is_empty());
            }
        }
    }

    #[test]
    fn planned_random_column_chains_fuse_correctly(
        ops in prop::collection::vec(
            prop_oneof![
                (0usize..6, -9i64..9).prop_map(|(c, v)| OpSpec::AddCol(0, c, v)),
                (0usize..6).prop_map(|c| OpSpec::DropCol(0, c)),
                (0usize..6, 0usize..6).prop_map(|(a, b)| OpSpec::RenameCol(0, a, b)),
            ],
            1..10,
        ),
        enc in 0u8..2,
    ) {
        // Pure column chains on one table: the plan collapses to a single
        // fused node, which must agree byte-for-byte with the sequential
        // application whatever the add/drop/rename interleaving does —
        // including cancelled adds and renames of renamed columns.
        let rle = enc & 1 != 0;
        let smos: Vec<Smo> = ops.iter().map(to_smo).collect();
        let sequential = platform(rle, false);
        let planned = platform(rle, false);
        let before = catalog_bytes(&planned);
        let seq_result = sequential.execute_all(smos.clone());
        let plan = planned.plan(smos);
        match seq_result {
            Ok(_) => {
                let plan = plan.expect("sequential succeeded, planning must too");
                // An uninterrupted column chain on one table is one node.
                prop_assert_eq!(plan.nodes().len(), 1);
                plan.execute().expect("fused execution must succeed");
                prop_assert_eq!(catalog_bytes(&sequential), catalog_bytes(&planned));
            }
            Err(_) => {
                if let Ok(plan) = plan {
                    prop_assert!(plan.execute().is_err());
                }
                prop_assert_eq!(catalog_bytes(&planned), before);
            }
        }
    }
}
