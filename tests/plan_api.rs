//! Integration tests of the planned evolution surface: whole-script
//! validation, DAG parallelism across independent branches, fusion over
//! mixed-encoding tables, atomic commit semantics, and the documented
//! partial-mutation behavior of the `execute_all` compatibility path.

use cods::{Cods, EvolutionError, Smo};
use cods_storage::{Encoding, StorageError};
use cods_workload::GenConfig;

fn platform_with(name: &str, rows: u64) -> Cods {
    let cods = Cods::new();
    cods.catalog()
        .create(cods_workload::generate_table(
            name,
            &GenConfig::sweep_point(rows, 64),
        ))
        .unwrap();
    cods
}

#[test]
fn planned_script_equals_sequential_on_generated_workload() {
    // The workload generator emits R(entity, attr, detail) with
    // entity → detail, so the full decompose → evolve → merge cycle runs.
    let script = "\
        DECOMPOSE TABLE R INTO S (entity, attr), T (entity, detail)\n\
        ADD COLUMN verified int DEFAULT 0 TO T\n\
        RENAME COLUMN verified TO audited IN T\n\
        MERGE TABLES S, T INTO R2\n\
        DROP TABLE S\n\
        DROP TABLE T\n";
    let sequential = platform_with("R", 4_000);
    sequential
        .execute_all(cods::parse_script(script).unwrap())
        .unwrap();

    let planned = platform_with("R", 4_000);
    let plan = planned.plan_script(script).unwrap();
    // The two column ops fused into the decompose → merge chain.
    assert_eq!(plan.nodes().len(), 5);
    let report = plan.execute().unwrap();
    assert_eq!(report.committed_puts, 1); // only R2 lands
    assert_eq!(report.committed_drops, 1); // R disappears
    assert_eq!(report.elided, vec!["S".to_string(), "T".to_string()]);

    assert_eq!(
        sequential.catalog().table_names(),
        planned.catalog().table_names()
    );
    let a = sequential.table("R2").unwrap();
    let b = planned.table("R2").unwrap();
    assert_eq!(a.schema(), b.schema());
    assert_eq!(a.to_rows(), b.to_rows());
}

#[test]
fn independent_branches_run_in_one_wave_with_identical_results() {
    let cods = platform_with("R", 2_000);
    for i in 0..4 {
        cods.execute(Smo::CopyTable {
            from: "R".into(),
            to: format!("c{i}"),
        })
        .unwrap();
    }
    // Four independent decompositions: one wave, four concurrent nodes.
    let script = (0..4)
        .map(|i| format!("DECOMPOSE TABLE c{i} INTO s{i} (entity, attr), t{i} (entity, detail)\n"))
        .collect::<String>();
    let plan = cods.plan_script(&script).unwrap();
    assert_eq!(plan.waves().len(), 1);
    assert_eq!(plan.waves()[0].len(), 4);
    plan.execute().unwrap();
    let s0 = cods.table("s0").unwrap();
    for i in 1..4 {
        let si = cods.table(&format!("s{i}")).unwrap();
        assert_eq!(s0.to_rows(), si.to_rows());
        let ti = cods.table(&format!("t{i}")).unwrap();
        ti.verify_key().unwrap();
    }
}

#[test]
fn fused_chain_preserves_column_encodings() {
    let cods = platform_with("R", 1_000);
    let recoded = cods.table("R").unwrap().recoded(Encoding::Rle).unwrap();
    cods.catalog().put(recoded);
    cods.plan_script(
        "ADD COLUMN flag int DEFAULT 1 TO R\n\
         RENAME COLUMN flag TO mark IN R\n\
         DROP COLUMN attr FROM R\n",
    )
    .unwrap()
    .execute()
    .unwrap();
    let t = cods.table("R").unwrap();
    // Carried columns keep their RLE encoding (shared by reference); the
    // added column is bitmap-built like ADD COLUMN always builds it.
    assert!(t
        .column_by_name("entity")
        .unwrap()
        .is_uniform(Encoding::Rle));
    assert!(t
        .column_by_name("detail")
        .unwrap()
        .is_uniform(Encoding::Rle));
    assert!(t
        .column_by_name("mark")
        .unwrap()
        .is_uniform(Encoding::Bitmap));
    assert!(!t.schema().contains("attr"));
}

#[test]
fn mid_script_data_failure_aborts_atomically() {
    // attr does not functionally depend on entity, so the second
    // decompose fails *at run time*, after wave 0 already produced tables
    // in the workspace — none of which may reach the catalog.
    let cods = platform_with("R", 2_000);
    let before = cods.catalog().version();
    let plan = cods
        .plan_script(
            "COPY TABLE R TO KEEP\n\
             DECOMPOSE TABLE R INTO S (entity, detail), T (entity, attr)\n",
        )
        .unwrap();
    let err = plan.execute().unwrap_err();
    assert!(matches!(err, EvolutionError::FdViolation(_)));
    assert_eq!(cods.catalog().table_names(), vec!["R"]);
    assert_eq!(cods.catalog().version(), before);
    assert!(cods.history().is_empty());
}

#[test]
fn execute_all_documents_partial_mutation() {
    // The compatibility path commits operator by operator: when the third
    // statement fails, the first two stay — exactly what the plan path
    // exists to avoid. This test locks the documented behavior.
    let cods = platform_with("R", 500);
    let smos = cods::parse_script(
        "COPY TABLE R TO A\nCOPY TABLE R TO B\nDROP TABLE missing\nCOPY TABLE R TO C\n",
    )
    .unwrap();
    let err = cods.execute_all(smos).unwrap_err();
    assert!(matches!(
        err,
        EvolutionError::Storage(StorageError::UnknownTable(_))
    ));
    assert_eq!(cods.catalog().table_names(), vec!["A", "B", "R"]);
    assert!(!cods.catalog().contains("C"));
}

#[test]
fn stale_plan_conflicts_instead_of_clobbering() {
    let cods = platform_with("R", 500);
    let plan = cods.plan_script("COPY TABLE R TO A\n").unwrap();
    // A writer sneaks in between plan and execute.
    cods.execute(Smo::CopyTable {
        from: "R".into(),
        to: "Z".into(),
    })
    .unwrap();
    let err = plan.execute().unwrap_err();
    assert!(matches!(
        err,
        EvolutionError::Storage(StorageError::Conflict(_))
    ));
    assert!(!cods.catalog().contains("A"));
    // Re-planning against the fresh catalog succeeds.
    cods.plan_script("COPY TABLE R TO A\n")
        .unwrap()
        .execute()
        .unwrap();
    assert!(cods.catalog().contains("A"));
}

#[test]
fn plan_describe_names_waves_and_elisions() {
    let cods = platform_with("R", 500);
    let plan = cods
        .plan_script(
            "PARTITION TABLE R WHERE entity < 10 INTO lo, hi\n\
             UNION TABLES lo, hi INTO R\n\
             DROP TABLE lo\n\
             DROP TABLE hi\n",
        )
        .unwrap();
    let text = plan.describe();
    assert!(text.contains("wave 0"), "{text}");
    assert!(text.contains("PARTITION TABLE R"), "{text}");
    assert!(
        text.contains("elided intermediates (never enter the catalog): hi, lo"),
        "{text}"
    );
}
