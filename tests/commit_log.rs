//! Integration tests of the SMO commit log: group commit batching,
//! end-to-end durability through the platform's script path, and the
//! vacuum interaction (a heap rewrite must never strand a pending,
//! un-checkpointed commit record).

use cods::Cods;
use cods_storage::commitlog::spill_dir;
use cods_storage::persist::encode_table;
use cods_storage::{
    clog_path, log_status, open_durable, open_durable_with, Catalog, DurabilitySink, Schema,
    StorageError, Table, Value, ValueType,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cods_clog_it_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("t.catalog")
}

fn cleanup(path: &Path) {
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

fn tiny(name: &str, rows: i64) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "x" } else { "y" }),
            ]
        })
        .collect();
    Table::from_rows(name, schema, &data).unwrap()
}

fn durable_put(cat: &Catalog, t: Table) -> Result<(), StorageError> {
    let (base, _) = cat.begin_evolution();
    cat.commit_evolution(base, &[], vec![Arc::new(t)])?;
    Ok(())
}

/// The group-commit contract, deterministically: records staged while no
/// leader is writing ride the *same* fsync. Three staged commits, one
/// wait — one fsync covers all three.
#[test]
fn staged_commits_share_one_group_fsync() {
    let path = scratch("group");
    let (_cat, log, _r) = open_durable(&path).unwrap();

    let _t1 = log.stage(1, &[], &[Arc::new(tiny("a", 8))]).unwrap();
    let _t2 = log.stage(2, &[], &[Arc::new(tiny("b", 8))]).unwrap();
    let t3 = log.stage(3, &[], &[Arc::new(tiny("c", 8))]).unwrap();
    log.wait(t3).unwrap();

    let stats = log.stats();
    assert_eq!(stats.commits, 3);
    assert_eq!(stats.fsyncs, 1, "one group fsync must cover the batch");
    assert_eq!(stats.max_batch, 3);
    assert_eq!(stats.pending_records, 3);

    // All three are sealed records: a reopen replays every one.
    let (cat2, _log2, replay) = open_durable(&path).unwrap();
    assert_eq!(replay.replayed, 3);
    assert_eq!(cat2.table_names(), vec!["a", "b", "c"]);
    cleanup(&path);
}

/// Concurrent committers through the real optimistic-commit path: every
/// commit lands durably, order is version order, and the fsync count
/// never exceeds the commit count (group commit can only batch, never
/// add syncs).
#[test]
fn concurrent_commits_are_all_durable_and_batched() {
    let path = scratch("concurrent");
    let (cat, log, _r) = open_durable(&path).unwrap();
    let cat = Arc::new(cat);

    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;
    let mut handles = Vec::new();
    for th in 0..THREADS {
        let cat = Arc::clone(&cat);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let name = format!("t{th}_{i}");
                // Optimistic retry loop: concurrent commits conflict.
                loop {
                    let (base, _) = cat.begin_evolution();
                    match cat.commit_evolution(base, &[], vec![Arc::new(tiny(&name, 8))]) {
                        Ok(receipt) => {
                            assert!(receipt.durable);
                            break;
                        }
                        Err(StorageError::Conflict(_)) => continue,
                        Err(e) => panic!("commit failed: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = log.stats();
    assert_eq!(stats.commits, (THREADS * PER_THREAD) as u64);
    assert!(
        stats.fsyncs <= stats.commits,
        "group commit must never add fsyncs: {stats:?}"
    );
    assert!(stats.fsyncs >= 1);

    // Every acknowledged commit survives a reopen.
    let (cat2, _log2, replay) = open_durable(&path).unwrap();
    assert_eq!(replay.replayed, (THREADS * PER_THREAD) as u64);
    for th in 0..THREADS {
        for i in 0..PER_THREAD {
            assert!(cat2.contains(&format!("t{th}_{i}")));
        }
    }
    cleanup(&path);
}

/// The platform end-to-end: a `Cods` built on a durably opened catalog
/// reports its script commits as durable, and a reopen replays them.
#[test]
fn platform_scripts_commit_durably_and_replay() {
    let path = scratch("platform");
    let (catalog, log, _r) = open_durable(&path).unwrap();
    let cods = Cods::with_catalog(catalog);
    cods.catalog().create(tiny("r", 16)).unwrap();

    let report = cods
        .run_script_with_retry(
            "COPY TABLE r TO r2\nADD COLUMN note str DEFAULT 'n/a' TO r2",
            &cods_storage::RetryPolicy::default(),
        )
        .unwrap();
    assert!(report.log.durable, "commit must be acknowledged durable");
    assert!(report.log.render().contains("(durable)"));
    assert!(log.stats().commits >= 1);

    let (cat2, _log2, replay) = open_durable(&path).unwrap();
    assert!(replay.replayed >= 1);
    // `r` was created outside the evolution path (not logged); `r2` came
    // from the logged commit and must replay with its evolved schema.
    let r2 = cat2.get("r2").unwrap();
    assert_eq!(r2.rows(), 16);
    assert!(r2.schema().index_of("note").is_ok());
    cleanup(&path);
}

/// Regression: a vacuum racing an un-checkpointed commit log. The pending
/// record carries a self-contained image, so compacting (and rebinding)
/// the catalog heap must neither strand nor corrupt it — replay after the
/// vacuum reproduces the exact acknowledged state.
#[test]
fn vacuum_with_pending_commit_log_preserves_replay() {
    let path = scratch("vacuum");
    let (cat, log, _r) = open_durable(&path).unwrap();

    // Checkpointed base: table `a` lives in the catalog file's heap.
    durable_put(&cat, tiny("a", 64)).unwrap();
    log.checkpoint(&cat).unwrap();

    // Pending, un-checkpointed commits: a new table and a replacement of
    // `a` (which turns the checkpointed `a` payloads into dead heap bytes
    // at the *next* checkpoint — and gives the vacuum live bytes to move).
    durable_put(&cat, tiny("b", 32)).unwrap();
    let (base, snap) = cat.begin_evolution();
    let evolved = snap.get("a").unwrap().renamed("a2");
    cat.commit_evolution(base, &["a".to_string()], vec![Arc::new(evolved)])
        .unwrap();
    let oracle_a2 = encode_table(&cat.get("a2").unwrap());
    let oracle_b = encode_table(&cat.get("b").unwrap());
    assert_eq!(log.stats().pending_records, 2);
    drop((cat, log));

    // Vacuum the catalog file while both records are still pending.
    cods_storage::vacuum_file(&path).unwrap();

    // Replay over the compacted heap must reproduce the acknowledged
    // state byte-for-byte (per-table images).
    let (cat2, log2, replay) = open_durable(&path).unwrap();
    assert_eq!(replay.replayed, 2);
    assert_eq!(cat2.table_names(), vec!["a2", "b"]);
    assert_eq!(
        encode_table(&cat2.get("a2").unwrap()).as_slice(),
        oracle_a2.as_slice()
    );
    assert_eq!(
        encode_table(&cat2.get("b").unwrap()).as_slice(),
        oracle_b.as_slice()
    );

    // And the log is still fully functional: checkpoint folds the
    // replayed records into the compacted file.
    assert_eq!(log2.checkpoint(&cat2).unwrap(), 2);
    assert_eq!(log_status(&path).unwrap().records, 0);
    cleanup(&path);
}

/// Commits with images above the spill threshold survive a full
/// open → commit → reopen cycle, and checkpointing reclaims the spills.
#[test]
fn spilled_commits_round_trip_through_reopen() {
    let path = scratch("spill");
    let (cat, _log, _r) = open_durable_with(&path, 128).unwrap();
    durable_put(&cat, tiny("wide", 512)).unwrap();
    let oracle = encode_table(&cat.get("wide").unwrap());
    assert!(spill_dir(&path).is_dir(), "image must have spilled");
    drop(cat);

    let (cat2, log2, replay) = open_durable_with(&path, 128).unwrap();
    assert_eq!(replay.replayed, 1);
    assert_eq!(
        encode_table(&cat2.get("wide").unwrap()).as_slice(),
        oracle.as_slice()
    );
    log2.checkpoint(&cat2).unwrap();
    let status = log_status(&path).unwrap();
    assert_eq!((status.records, status.spill_files), (0, 0));
    assert!(clog_path(&path).exists());
    cleanup(&path);
}
