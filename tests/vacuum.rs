//! Heap compaction (vacuum): append-save churn accretes dead payload bytes,
//! an explicit or automatic vacuum reclaims them, and the compacted file is
//! observationally identical — same tuples, same invariants, still
//! append-saveable afterwards.

use cods_storage::persist::{read_catalog, save_catalog};
use cods_storage::{
    heap_stats, set_auto_vacuum, vacuum_catalog, vacuum_file, wait_for_auto_vacuum, AutoVacuum,
    Catalog, Encoding, Schema, Table, Value, ValueType,
};
use std::path::PathBuf;
use std::sync::Mutex;

/// The auto-vacuum policy is process-global, and every test here reasons
/// about dead-heap bytes that a concurrently loosened policy could reclaim
/// from under it — so the whole file runs serialized.
static CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cods_it_vacuum_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn table(name: &str, rows: i64) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::str(["red", "red", "blue", "green"][(i % 4) as usize]),
            ]
        })
        .collect();
    Table::from_rows_with_segment_rows(name, schema, &data, 64).unwrap()
}

/// Recode-and-save churn: every round transcodes the `v` column (fresh
/// payloads for all its segments), so each append-save strands the previous
/// round's payloads as dead heap.
fn churn(cat: &Catalog, path: &std::path::Path, rounds: usize) {
    for round in 0..rounds {
        let enc = if round.is_multiple_of(2) {
            Encoding::Rle
        } else {
            Encoding::Bitmap
        };
        let t = cat.get("a").unwrap();
        cat.put(t.with_column_encoding("v", enc).unwrap());
        save_catalog(cat, path).unwrap();
    }
}

#[test]
fn explicit_vacuum_reclaims_dead_heap_and_keeps_data() {
    let _serial = CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = dir("explicit");
    let path = dir.join("churned.catalog");

    let cat = Catalog::new();
    cat.create(table("a", 512)).unwrap();
    save_catalog(&cat, &path).unwrap();
    let want = cat.get("a").unwrap().tuple_multiset();

    churn(&cat, &path, 4);
    let before = heap_stats(&path).unwrap();
    assert!(before.dead_bytes > 0, "churn left no dead heap: {before:?}");
    assert_eq!(before.live_bytes + before.dead_bytes, before.heap_bytes);

    let report = vacuum_catalog(&cat, &path).unwrap();
    assert!(
        report.reclaimed_bytes() >= before.dead_bytes,
        "reclaimed {} < dead {}",
        report.reclaimed_bytes(),
        before.dead_bytes
    );
    assert!(report.segments > 0);

    // The compacted heap is exactly the live bytes — nothing dead remains.
    let after = heap_stats(&path).unwrap();
    assert_eq!(after.dead_bytes, 0, "{after:?}");
    assert_eq!(after.live_bytes, after.heap_bytes);
    assert_eq!(after.live_bytes, report.live_payload_bytes);
    assert!(after.file_bytes < before.file_bytes);

    // Data intact, from the rebound in-memory catalog and from a cold read.
    assert_eq!(cat.get("a").unwrap().tuple_multiset(), want);
    let cold = read_catalog(&path).unwrap();
    assert_eq!(cold.get("a").unwrap().tuple_multiset(), want);
    cold.get("a").unwrap().check_invariants().unwrap();

    // The rebound slots keep append-saves working at full reuse.
    churn(&cat, &path, 1);
    let again = read_catalog(&path).unwrap();
    assert_eq!(again.get("a").unwrap().tuple_multiset(), want);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn offline_vacuum_file_compacts_without_an_open_catalog() {
    let _serial = CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = dir("offline");
    let path = dir.join("cold.catalog");

    let cat = Catalog::new();
    cat.create(table("a", 512)).unwrap();
    save_catalog(&cat, &path).unwrap();
    churn(&cat, &path, 3);
    let want = cat.get("a").unwrap().tuple_multiset();
    drop(cat); // nothing in memory references the file any more

    let before = heap_stats(&path).unwrap();
    assert!(before.dead_bytes > 0);
    let report = vacuum_file(&path).unwrap();
    assert!(report.reclaimed_bytes() >= before.dead_bytes);
    assert_eq!(heap_stats(&path).unwrap().dead_bytes, 0);
    assert_eq!(
        read_catalog(&path)
            .unwrap()
            .get("a")
            .unwrap()
            .tuple_multiset(),
        want
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heap_stats_starts_fully_live_and_tracks_churn() {
    let _serial = CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = dir("stats");
    let path = dir.join("fresh.catalog");

    let cat = Catalog::new();
    cat.create(table("a", 256)).unwrap();
    save_catalog(&cat, &path).unwrap();
    let fresh = heap_stats(&path).unwrap();
    assert_eq!(fresh.dead_bytes, 0, "{fresh:?}");
    assert_eq!(fresh.live_bytes, fresh.heap_bytes);
    assert!(fresh.live_segments > 0);
    assert!(fresh.meta_bytes > 0);

    churn(&cat, &path, 1);
    let churned = heap_stats(&path).unwrap();
    assert!(churned.dead_bytes > 0);
    assert!(churned.heap_bytes > fresh.heap_bytes);
    // Only `v`'s payloads were superseded; `k`'s are still the originals.
    assert!(churned.dead_bytes < churned.heap_bytes);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_vacuum_compacts_in_the_background() {
    let _serial = CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = dir("auto");
    let path = dir.join("auto.catalog");

    // Hair-trigger policy: any dead byte schedules a background compaction.
    set_auto_vacuum(Some(AutoVacuum {
        dead_ratio: 0.01,
        min_dead_bytes: 1,
    }));
    let result = std::panic::catch_unwind(|| {
        let cat = Catalog::new();
        cat.create(table("a", 512)).unwrap();
        save_catalog(&cat, &path).unwrap();
        let want = cat.get("a").unwrap().tuple_multiset();
        // Wait out each round's background compaction before the next save:
        // an inflight vacuum for the path dedupes later triggers, and this
        // test wants to observe every one of them landing.
        for enc in [Encoding::Rle, Encoding::Bitmap] {
            let t = cat.get("a").unwrap();
            cat.put(t.with_column_encoding("v", enc).unwrap());
            save_catalog(&cat, &path).unwrap();
            wait_for_auto_vacuum();
        }

        let stats = heap_stats(&path).unwrap();
        assert_eq!(
            stats.dead_bytes, 0,
            "background vacuum did not run: {stats:?}"
        );
        assert_eq!(cat.get("a").unwrap().tuple_multiset(), want);
        assert_eq!(
            read_catalog(&path)
                .unwrap()
                .get("a")
                .unwrap()
                .tuple_multiset(),
            want
        );
    });
    set_auto_vacuum(Some(AutoVacuum::default()));
    result.unwrap();

    std::fs::remove_dir_all(&dir).ok();
}
